//! Crash-test results: per-mutant records, the per-class catch-rate matrix,
//! and JSON rendering (hand-rolled; the repo builds offline, no serde).

use crate::mutate::FaultClass;

/// How one mutant fared under the cured interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// A CCured run-time check failed — the fault was caught before any
    /// memory was harmed. The desired outcome.
    Caught,
    /// The cured run produced a ground-truth memory error: a **soundness
    /// bug** in the cure. Any escape fails the harness.
    Escaped,
    /// The cured run finished with defined behaviour — either the fault
    /// never triggered, or the cured semantics neutralized it (GC-backed
    /// `free`, zeroing allocator).
    Masked,
    /// A sandbox limit (fuel, stack, heap, deadline) stopped the run before
    /// the fault resolved.
    ResourceExhausted,
    /// The mutant could not be assessed: the cure or a run failed with an
    /// internal/unsupported error (a harness problem, not a verdict).
    Invalid,
}

impl Outcome {
    /// Stable snake_case name (matrix columns, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Caught => "caught",
            Outcome::Escaped => "escaped",
            Outcome::Masked => "masked",
            Outcome::ResourceExhausted => "resource_exhausted",
            Outcome::Invalid => "invalid",
        }
    }

    const ALL: [Outcome; 5] = [
        Outcome::Caught,
        Outcome::Escaped,
        Outcome::Masked,
        Outcome::ResourceExhausted,
        Outcome::Invalid,
    ];
}

/// The full record of one mutant: what was seeded, what plain C semantics
/// did with it, and what the cured program did.
#[derive(Debug, Clone)]
pub struct MutantRun {
    /// Mutant index within the batch (reproduce with the batch seed).
    pub id: usize,
    /// Name of the workload the fault was seeded into.
    pub workload: String,
    /// The seeded fault class.
    pub class: FaultClass,
    /// What the mutation changed.
    pub description: String,
    /// The classification.
    pub outcome: Outcome,
    /// Rendering of the original (uncured) run's result — the ground truth.
    pub ground_truth: String,
    /// Whether the ground-truth run hit a real memory error.
    pub gt_memory_error: bool,
    /// Rendering of the cured run's result.
    pub cured: String,
    /// Ground-truth dead-memory traps the abstract machine counted during
    /// the *cured* run. Under `--temporal` this must be zero on every
    /// mutant: the emitted check fires before the machine would trap.
    pub uaf_traps: u64,
}

/// Results of a whole crash-test batch.
#[derive(Debug, Clone)]
pub struct CrashTestReport {
    /// The batch seed (reproduces every mutant).
    pub seed: u64,
    /// One record per mutant, in generation order.
    pub runs: Vec<MutantRun>,
}

impl CrashTestReport {
    /// Mutants of `class` that ended in `outcome`.
    pub fn count(&self, class: FaultClass, outcome: Outcome) -> usize {
        self.runs
            .iter()
            .filter(|r| r.class == class && r.outcome == outcome)
            .count()
    }

    /// Every escaped mutant — each one is a soundness bug to investigate.
    pub fn escaped(&self) -> Vec<&MutantRun> {
        self.runs
            .iter()
            .filter(|r| r.outcome == Outcome::Escaped)
            .collect()
    }

    /// Fault classes that actually appear in the batch.
    pub fn classes_present(&self) -> Vec<FaultClass> {
        FaultClass::ALL
            .into_iter()
            .filter(|c| self.runs.iter().any(|r| r.class == *c))
            .collect()
    }

    /// Catch rate for a class: caught / (caught + escaped), or `None` when
    /// no mutant of the class reached a verdict on that axis.
    pub fn catch_rate(&self, class: FaultClass) -> Option<f64> {
        let caught = self.count(class, Outcome::Caught);
        let escaped = self.count(class, Outcome::Escaped);
        if caught + escaped == 0 {
            None
        } else {
            Some(caught as f64 / (caught + escaped) as f64)
        }
    }

    /// The human-readable catch-rate matrix.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "crash-test: {} mutants (seed {})\n\n",
            self.runs.len(),
            self.seed
        ));
        out.push_str(&format!(
            "{:<16} {:>6} {:>7} {:>7} {:>7} {:>8} {:>8}  {}\n",
            "fault class", "total", "caught", "masked", "limit", "invalid", "ESCAPED", "catch-rate"
        ));
        let mut totals = [0usize; 5];
        for class in self.classes_present() {
            let n: Vec<usize> = Outcome::ALL.iter().map(|o| self.count(class, *o)).collect();
            for (t, v) in totals.iter_mut().zip(&n) {
                *t += v;
            }
            let rate = match self.catch_rate(class) {
                Some(r) => format!("{:.1}%", r * 100.0),
                None => "n/a".to_string(),
            };
            out.push_str(&format!(
                "{:<16} {:>6} {:>7} {:>7} {:>7} {:>8} {:>8}  {}\n",
                class.name(),
                n.iter().sum::<usize>(),
                n[0],
                n[2],
                n[3],
                n[4],
                n[1],
                rate
            ));
        }
        out.push_str(&format!(
            "{:<16} {:>6} {:>7} {:>7} {:>7} {:>8} {:>8}\n",
            "TOTAL",
            totals.iter().sum::<usize>(),
            totals[0],
            totals[2],
            totals[3],
            totals[4],
            totals[1]
        ));
        let escapes = self.escaped();
        if escapes.is_empty() {
            out.push_str("\nno escapes: every seeded fault was caught, neutralized, or masked\n");
        } else {
            out.push_str(&format!(
                "\n{} ESCAPED mutant(s) — soundness bugs:\n",
                escapes.len()
            ));
            for r in escapes {
                out.push_str(&format!(
                    "  #{} [{}] {} in `{}`\n    ground truth: {}\n    cured:        {}\n",
                    r.id, r.class, r.description, r.workload, r.ground_truth, r.cured
                ));
            }
        }
        out
    }

    /// Machine-readable summary: seed, per-class outcome counts, and the
    /// details of any escaped mutants.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"seed\":{},\"mutants\":{},\"classes\":{{",
            self.seed,
            self.runs.len()
        ));
        let classes = self.classes_present();
        for (i, class) in classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{{", class.name()));
            for (j, o) in Outcome::ALL.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", o.name(), self.count(*class, *o)));
            }
            s.push('}');
        }
        s.push_str("},\"escaped\":[");
        for (i, r) in self.escaped().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"id\":{},\"workload\":{},\"class\":\"{}\",\"description\":{},\"ground_truth\":{},\"cured\":{}}}",
                r.id,
                json_str(&r.workload),
                r.class.name(),
                json_str(&r.description),
                json_str(&r.ground_truth),
                json_str(&r.cured)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(class: FaultClass, outcome: Outcome) -> MutantRun {
        MutantRun {
            id: 0,
            workload: "w".into(),
            class,
            description: "d".into(),
            outcome,
            ground_truth: "gt".into(),
            gt_memory_error: outcome == Outcome::Caught,
            cured: "c".into(),
            uaf_traps: 0,
        }
    }

    #[test]
    fn matrix_counts_and_catch_rate() {
        let rep = CrashTestReport {
            seed: 9,
            runs: vec![
                run(FaultClass::OffByOne, Outcome::Caught),
                run(FaultClass::OffByOne, Outcome::Caught),
                run(FaultClass::OffByOne, Outcome::Masked),
                run(FaultClass::PtrSmuggle, Outcome::Escaped),
            ],
        };
        assert_eq!(rep.count(FaultClass::OffByOne, Outcome::Caught), 2);
        assert_eq!(rep.catch_rate(FaultClass::OffByOne), Some(1.0));
        assert_eq!(rep.catch_rate(FaultClass::PtrSmuggle), Some(0.0));
        assert_eq!(rep.catch_rate(FaultClass::UninitRead), None);
        assert_eq!(rep.escaped().len(), 1);
        let text = rep.render();
        assert!(text.contains("off_by_one"), "{text}");
        assert!(text.contains("ESCAPED mutant"), "{text}");
    }

    #[test]
    fn json_is_wellformed_enough() {
        let rep = CrashTestReport {
            seed: 1,
            runs: vec![run(FaultClass::NullGuard, Outcome::Caught)],
        };
        let j = rep.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"null_guard\""), "{j}");
        assert!(j.contains("\"caught\":1"), "{j}");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
