//! The solved pointer-kind assignment.

use ccured_cil::types::QualId;

/// The base pointer-kind lattice: `SAFE < SEQ < WILD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PtrKind {
    /// Null or a valid reference; only a null check on dereference.
    Safe,
    /// Carries array bounds; pointer arithmetic allowed.
    Seq,
    /// Untyped; carries a base pointer, with tags in the referenced area.
    Wild,
}

impl PtrKind {
    /// Lattice join.
    pub fn join(self, other: PtrKind) -> PtrKind {
        self.max(other)
    }
}

/// The effective kind of a qualifier after RTTI resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectiveKind {
    /// Thin checked reference.
    Safe,
    /// Fat pointer with bounds.
    Seq,
    /// Tagged untyped pointer.
    Wild,
    /// Two-word pointer carrying run-time type information (Section 3.2).
    Rtti,
}

/// Counts of qualifier variables per effective kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindCounts {
    /// Number of SAFE qualifiers.
    pub safe: usize,
    /// Number of SEQ qualifiers.
    pub seq: usize,
    /// Number of WILD qualifiers.
    pub wild: usize,
    /// Number of RTTI qualifiers.
    pub rtti: usize,
}

impl KindCounts {
    /// Total number of qualifiers.
    pub fn total(&self) -> usize {
        self.safe + self.seq + self.wild + self.rtti
    }

    /// Percentages `(safe, seq, wild, rtti)` rounded to whole percent, as in
    /// the paper's `sf/sq/w/rt` columns.
    pub fn percentages(&self) -> (u32, u32, u32, u32) {
        let t = self.total().max(1) as f64;
        let pct = |n: usize| ((n as f64) * 100.0 / t).round() as u32;
        (
            pct(self.safe),
            pct(self.seq),
            pct(self.wild),
            pct(self.rtti),
        )
    }
}

/// The inference result for every qualifier variable.
#[derive(Debug, Clone)]
pub struct Solution {
    kinds: Vec<PtrKind>,
    rtti: Vec<bool>,
    split: Vec<bool>,
}

impl Solution {
    /// Creates an all-SAFE, no-RTTI, no-SPLIT solution over `n` qualifiers.
    pub fn new(n: usize) -> Self {
        Solution {
            kinds: vec![PtrKind::Safe; n],
            rtti: vec![false; n],
            split: vec![false; n],
        }
    }

    /// Number of qualifier variables covered.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the solution covers no qualifiers.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The base kind of a qualifier.
    pub fn kind(&self, q: QualId) -> PtrKind {
        self.kinds[q.0 as usize]
    }

    pub(crate) fn set_kind(&mut self, q: QualId, k: PtrKind) {
        self.kinds[q.0 as usize] = k;
    }

    /// Whether the qualifier carries run-time type information.
    pub fn is_rtti(&self, q: QualId) -> bool {
        self.rtti[q.0 as usize]
    }

    pub(crate) fn set_rtti(&mut self, q: QualId, v: bool) {
        self.rtti[q.0 as usize] = v;
    }

    /// Whether the qualifier uses the compatible (split) representation.
    pub fn is_split(&self, q: QualId) -> bool {
        self.split[q.0 as usize]
    }

    pub(crate) fn set_split(&mut self, q: QualId, v: bool) {
        self.split[q.0 as usize] = v;
    }

    /// The effective kind: RTTI overrides SAFE when flagged.
    pub fn effective(&self, q: QualId) -> EffectiveKind {
        match self.kind(q) {
            PtrKind::Safe if self.is_rtti(q) => EffectiveKind::Rtti,
            PtrKind::Safe => EffectiveKind::Safe,
            PtrKind::Seq => EffectiveKind::Seq,
            PtrKind::Wild => EffectiveKind::Wild,
        }
    }

    /// Counts qualifiers by effective kind.
    pub fn kind_counts(&self) -> KindCounts {
        let mut c = KindCounts::default();
        for i in 0..self.kinds.len() {
            match self.effective(QualId(i as u32)) {
                EffectiveKind::Safe => c.safe += 1,
                EffectiveKind::Seq => c.seq += 1,
                EffectiveKind::Wild => c.wild += 1,
                EffectiveKind::Rtti => c.rtti += 1,
            }
        }
        c
    }

    /// Number of SPLIT qualifiers.
    pub fn split_count(&self) -> usize {
        self.split.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_join() {
        assert_eq!(PtrKind::Safe.join(PtrKind::Seq), PtrKind::Seq);
        assert_eq!(PtrKind::Seq.join(PtrKind::Wild), PtrKind::Wild);
        assert_eq!(PtrKind::Safe.join(PtrKind::Safe), PtrKind::Safe);
    }

    #[test]
    fn effective_kind_resolution() {
        let mut s = Solution::new(3);
        s.set_rtti(QualId(0), true);
        s.set_kind(QualId(1), PtrKind::Seq);
        assert_eq!(s.effective(QualId(0)), EffectiveKind::Rtti);
        assert_eq!(s.effective(QualId(1)), EffectiveKind::Seq);
        assert_eq!(s.effective(QualId(2)), EffectiveKind::Safe);
    }

    #[test]
    fn counts_and_percentages() {
        let mut s = Solution::new(4);
        s.set_kind(QualId(0), PtrKind::Wild);
        s.set_kind(QualId(1), PtrKind::Seq);
        s.set_rtti(QualId(2), true);
        let c = s.kind_counts();
        assert_eq!(c.safe, 1);
        assert_eq!(c.seq, 1);
        assert_eq!(c.wild, 1);
        assert_eq!(c.rtti, 1);
        assert_eq!(c.percentages(), (25, 25, 25, 25));
    }
}
