//! Cast classification census — the statistics the paper reports in
//! Sections 3 and 5 (e.g. "63% of casts are between identical types; of the
//! rest, 93% are upcasts and 6% are downcasts").

use crate::kinds::Solution;
use ccured_cil::ir::Program;
use ccured_cil::phys::{CastClass, PhysCtx};

/// Classification of one cast site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Pointer cast between physically equal pointees.
    Identical,
    /// Statically verified upcast (physical subtyping).
    Upcast,
    /// Run-time-checked downcast (RTTI).
    Downcast,
    /// Truly bad pointer cast.
    Bad,
    /// Bad cast the programmer marked `__TRUSTED`.
    Trusted,
    /// Arithmetic conversion.
    Scalar,
    /// Null-pointer constant.
    NullPtr,
    /// Non-null integer to pointer.
    IntToPtr,
    /// Pointer to integer.
    PtrToInt,
    /// Allocator-result cast (`(T *)malloc(n)`): types fresh memory.
    Alloc,
}

/// Aggregate cast counts over a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CastCensus {
    /// Pointer-to-pointer casts between physically equal types.
    pub identical: usize,
    /// Upcasts verified by physical subtyping.
    pub upcast: usize,
    /// Downcasts checkable with RTTI.
    pub downcast: usize,
    /// Bad casts (WILD-forcing).
    pub bad: usize,
    /// Trusted (programmer-asserted) casts.
    pub trusted: usize,
    /// Arithmetic conversions.
    pub scalar: usize,
    /// Null-pointer constants.
    pub null_ptr: usize,
    /// Non-null integer-to-pointer casts.
    pub int_to_ptr: usize,
    /// Pointer-to-integer casts.
    pub ptr_to_int: usize,
    /// Allocator-result casts.
    pub alloc: usize,
}

impl CastCensus {
    /// Total pointer-to-pointer casts (the paper's denominators).
    pub fn ptr_casts(&self) -> usize {
        self.identical + self.upcast + self.downcast + self.bad + self.trusted
    }

    /// Percentage of pointer casts between identical types.
    pub fn pct_identical(&self) -> f64 {
        percentage(self.identical, self.ptr_casts())
    }

    /// Of the casts that were bad in the original CCured (everything
    /// non-identical), the percentage that physical subtyping verifies.
    pub fn pct_upcasts_of_nonidentical(&self) -> f64 {
        let non = self.ptr_casts() - self.identical;
        percentage(self.upcast, non)
    }

    /// Of the non-identical casts, the percentage handled by RTTI downcasts.
    pub fn pct_downcasts_of_nonidentical(&self) -> f64 {
        let non = self.ptr_casts() - self.identical;
        percentage(self.downcast, non)
    }

    /// Of the non-identical casts, the residue that stays bad (or trusted).
    pub fn pct_bad_of_nonidentical(&self) -> f64 {
        let non = self.ptr_casts() - self.identical;
        percentage(self.bad + self.trusted, non)
    }

    /// Percentage of all pointer casts verifiable without WILD pointers
    /// (identical + upcast + downcast), the paper's ">99%" headline.
    pub fn pct_verified(&self) -> f64 {
        percentage(
            self.identical + self.upcast + self.downcast,
            self.ptr_casts(),
        )
    }
}

fn percentage(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 * 100.0 / d as f64
    }
}

/// Classifies one cast site.
pub fn classify(prog: &Program, phys: &mut PhysCtx<'_>, idx: usize) -> CastKind {
    let site = &prog.casts[idx];
    if site.alloc {
        return CastKind::Alloc;
    }
    match phys.classify_cast(site.from, site.to) {
        CastClass::Identical => CastKind::Identical,
        CastClass::Upcast => CastKind::Upcast,
        CastClass::Downcast => CastKind::Downcast,
        CastClass::Bad => {
            if site.trusted {
                CastKind::Trusted
            } else {
                CastKind::Bad
            }
        }
        CastClass::Scalar => CastKind::Scalar,
        CastClass::IntToPtr => {
            if site.from_zero {
                CastKind::NullPtr
            } else {
                CastKind::IntToPtr
            }
        }
        CastClass::PtrToInt => CastKind::PtrToInt,
    }
}

/// Builds the cast census for a program.
///
/// The solution is currently unused but kept in the signature so kind-aware
/// statistics can be added without an API break.
pub fn census(prog: &Program, _solution: &Solution) -> CastCensus {
    let mut phys = PhysCtx::new(&prog.types);
    let mut c = CastCensus::default();
    for i in 0..prog.casts.len() {
        match classify(prog, &mut phys, i) {
            CastKind::Identical => c.identical += 1,
            CastKind::Upcast => c.upcast += 1,
            CastKind::Downcast => c.downcast += 1,
            CastKind::Bad => c.bad += 1,
            CastKind::Trusted => c.trusted += 1,
            CastKind::Scalar => c.scalar += 1,
            CastKind::NullPtr => c.null_ptr += 1,
            CastKind::IntToPtr => c.int_to_ptr += 1,
            CastKind::PtrToInt => c.ptr_to_int += 1,
            CastKind::Alloc => c.alloc += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{infer, InferOptions};

    fn run(src: &str) -> CastCensus {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        infer(&prog, &InferOptions::default()).census
    }

    #[test]
    fn census_counts_upcast_downcast() {
        let c = run("struct F { void *vt; } gf;\n\
             struct C { void *vt; int r; } gc;\n\
             int g(struct C *c) {\n\
               struct F *f; struct C *c2;\n\
               f = (struct F *)c;\n\
               c2 = (struct C *)f;\n\
               return c2->r;\n\
             }");
        assert_eq!(c.upcast, 1);
        assert_eq!(c.downcast, 1);
        assert_eq!(c.bad, 0);
    }

    #[test]
    fn census_counts_bad_and_trusted() {
        let c = run("int f(double *d) {\n\
               int *a; long *b;\n\
               a = (int *)d;\n\
               b = (long * __TRUSTED)d;\n\
               return *a + (int)*b;\n\
             }");
        assert_eq!(c.bad, 1);
        // (long*)d is layout-compatible? double vs long: different atoms, so
        // it would be bad — but it is trusted.
        assert_eq!(c.trusted, 1);
    }

    #[test]
    fn census_null_vs_int_casts() {
        let c = run("int *f(long x) { int *p = 0; p = (int *)x; return p; }");
        assert!(c.null_ptr >= 1);
        assert_eq!(c.int_to_ptr, 1);
    }

    #[test]
    fn percentages_are_sane() {
        let c = run("struct F { void *vt; } gf;\n\
             struct C { void *vt; int r; } gc;\n\
             void take(struct F *f) { }\n\
             void g(struct C *a, struct C *b, struct C *d) {\n\
               struct C *x;\n\
               x = a; x = b; x = d;\n\
               take((struct F *)a);\n\
             }");
        assert!(c.pct_verified() > 99.0);
        let sum = c.pct_upcasts_of_nonidentical()
            + c.pct_downcasts_of_nonidentical()
            + c.pct_bad_of_nonidentical();
        assert!(c.ptr_casts() == c.identical || (sum - 100.0).abs() < 1e-6);
    }
}
