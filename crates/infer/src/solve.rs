//! The constraint solver: union-find kind unification, WILD poisoning
//! closure, the RTTI pass, and the validate-and-retry outer loop.
//!
//! Solving is a monotone fixpoint on the `SAFE < SEQ < WILD` lattice:
//!
//! 1. unify all `Eq` pairs (union-find, joining kinds),
//! 2. apply lower bounds and propagate,
//! 3. WILD poisoning: a WILD pointer contaminates every qualifier in its
//!    base type, and `wild_eq` partners of WILD qualifiers become WILD,
//! 4. the RTTI pass marks downcast sources and propagates RTTI against the
//!    data flow (Section 3.2),
//! 5. validation re-checks every cast site against the final kinds (e.g. the
//!    SEQ tiling side condition); violations add WILD bounds and the solver
//!    re-runs. The loop terminates because kinds only ever increase.

use crate::gen::{generate, Constraints};
use crate::kinds::{PtrKind, Solution};
use crate::provenance::{EdgeWhy, Origin, Provenance};
use crate::split;
use crate::stats::{self, CastCensus};
use ccured_cil::ir::{KindAnnot, Program};
use ccured_cil::phys::{CastClass, PhysCtx};
use ccured_cil::types::{QualId, Type, TypeId};
use std::collections::HashMap;

/// Options controlling the inference.
#[derive(Debug, Clone)]
pub struct InferOptions {
    /// Enable the RTTI pointer kind (Section 3.2). Disabling reproduces the
    /// original-CCured behaviour where downcasts are bad casts.
    pub rtti: bool,
    /// Enable physical subtyping for upcasts (Section 3.1). Disabling makes
    /// every non-identical cast bad, as in the original CCured.
    pub physical_subtyping: bool,
    /// Seed SPLIT at external-call boundaries automatically (Section 4.2).
    pub split_at_boundaries: bool,
    /// Force the SPLIT representation on every qualifier (the paper's
    /// all-split overhead experiment).
    pub split_everything: bool,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            rtti: true,
            physical_subtyping: true,
            split_at_boundaries: false,
            split_everything: false,
        }
    }
}

impl InferOptions {
    /// The original-CCured configuration (no physical subtyping, no RTTI).
    pub fn original_ccured() -> Self {
        InferOptions {
            rtti: false,
            physical_subtyping: false,
            split_at_boundaries: false,
            split_everything: false,
        }
    }
}

/// A source-annotation assertion that the solution violates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationViolation {
    /// The annotated qualifier.
    pub qual: QualId,
    /// What the source asserted.
    pub annotated: KindAnnot,
    /// What inference produced.
    pub inferred: String,
}

/// The complete output of [`infer`].
#[derive(Debug, Clone)]
pub struct InferResult {
    /// Kind/RTTI/SPLIT assignment per qualifier.
    pub solution: Solution,
    /// Cast classification census (paper Section 3 statistics).
    pub census: CastCensus,
    /// `__SAFE`-style assertions that failed.
    pub annotation_violations: Vec<AnnotationViolation>,
    /// Outer validate-and-retry iterations used.
    pub iterations: usize,
    /// Why each qualifier's kind rose: blame roots and flow edges.
    pub provenance: Provenance,
}

/// Runs whole-program pointer-kind inference.
pub fn infer(prog: &Program, opts: &InferOptions) -> InferResult {
    let constraints = generate(prog, opts.rtti);
    let n = prog.types.qual_count() as usize;
    let mut solver = Solver::new(n, &constraints);
    let mut phys = PhysCtx::new(&prog.types);

    // In original-CCured mode, physical subtyping is off: treat every
    // non-identical pointer cast as bad by adding WILD bounds up front.
    let mut extra_wild: Vec<(QualId, Origin)> = Vec::new();
    if !opts.physical_subtyping {
        for site in &prog.casts {
            // Allocator casts were special-cased by the original CCured's
            // malloc wrappers too; trusted casts are exempt by definition.
            if site.trusted || site.alloc {
                continue;
            }
            if let (Some((fb, fq)), Some((tb, tq))) = (
                prog.types.ptr_parts(site.from),
                prog.types.ptr_parts(site.to),
            ) {
                if !phys.phys_eq(fb, tb) {
                    extra_wild.push((fq, Origin::NonPhysEq(site.span)));
                    extra_wild.push((tq, Origin::NonPhysEq(site.span)));
                }
            }
        }
    }

    // The candidate set for "has subtypes in the program".
    let mut subtype_census = SubtypeCensus::new(prog);

    // The pointee map depends only on the (immutable) program; compute it
    // once rather than per validate-and-retry iteration.
    let pointee_map = pointee_quals(prog);

    let mut iterations = 0;
    let solution = loop {
        iterations += 1;
        solver.solve(&pointee_map, &extra_wild);
        let mut sol = solver.snapshot(n);
        if opts.rtti {
            run_rtti_pass(prog, &constraints, &solver, &mut sol, &mut subtype_census);
        }
        let violations = validate(prog, &mut phys, &sol, opts);
        if violations.is_empty() || iterations > 64 {
            break sol;
        }
        extra_wild.extend(violations);
    };

    let mut solution = solution;
    split::infer_split(prog, &constraints, &mut solution, opts);

    let census = stats::census(prog, &solution);
    let annotation_violations = check_annotations(prog, &solution);
    let provenance = std::mem::take(&mut solver.prov);

    InferResult {
        solution,
        census,
        annotation_violations,
        iterations,
        provenance,
    }
}

// ------------------------------------------------------------------ solver

struct Solver<'c> {
    parent: Vec<u32>,
    rank: Vec<u8>,
    kind: Vec<PtrKind>,
    constraints: &'c Constraints,
    /// Blame roots and flow edges recorded while solving.
    prov: Provenance,
}

impl<'c> Solver<'c> {
    fn new(n: usize, constraints: &'c Constraints) -> Self {
        Solver {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            kind: vec![PtrKind::Safe; n],
            constraints,
            prov: Provenance::new(n),
        }
    }

    fn find(&mut self, q: u32) -> u32 {
        let mut root = q;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = q;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // First actual merge of these classes: keep a provenance edge
        // between the syntactic quals so blame paths can cross it. Repeat
        // eq pairs (later solve iterations) hit `ra == rb` and record
        // nothing, so the edge set is a spanning forest per class.
        self.prov
            .record_edge(QualId(a), QualId(b), EdgeWhy::Unified);
        let joined = self.kind[ra as usize].join(self.kind[rb as usize]);
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.kind[hi as usize] = joined;
    }

    fn raise(&mut self, q: QualId, k: PtrKind) -> bool {
        let r = self.find(q.0) as usize;
        if self.kind[r] < k {
            self.kind[r] = k;
            true
        } else {
            false
        }
    }

    fn kind_of(&mut self, q: QualId) -> PtrKind {
        let r = self.find(q.0) as usize;
        self.kind[r]
    }

    /// Runs the kind fixpoint, including the WILD poisoning closure.
    fn solve(
        &mut self,
        pointee_map: &[(QualId, std::rc::Rc<Vec<QualId>>)],
        extra_wild: &[(QualId, Origin)],
    ) {
        for (a, b) in &self.constraints.eq {
            self.union(a.0, b.0);
        }
        for (i, (q, k)) in self.constraints.at_least.iter().enumerate() {
            if self.raise(*q, *k) {
                let origin = self.constraints.at_least_origin[i];
                self.prov.record_root(*q, *k, origin);
            }
        }
        for (q, origin) in extra_wild {
            if self.raise(*q, PtrKind::Wild) {
                self.prov.record_root(*q, PtrKind::Wild, *origin);
            }
        }
        // Fixpoint: WILD spreads through wild_eq pairs and poisons pointee
        // types. Base-type poisoning needs the pointee map.
        let mut changed = true;
        while changed {
            changed = false;
            for (i, (a, b)) in self.constraints.wild_eq.iter().enumerate() {
                let ka = self.kind_of(*a);
                let kb = self.kind_of(*b);
                if ka == PtrKind::Wild && kb != PtrKind::Wild {
                    self.raise(*b, PtrKind::Wild);
                    let span = self.constraints.wild_eq_span[i];
                    self.prov.record_edge(*a, *b, EdgeWhy::CastWild(span));
                    changed = true;
                }
                if kb == PtrKind::Wild && ka != PtrKind::Wild {
                    self.raise(*a, PtrKind::Wild);
                    let span = self.constraints.wild_eq_span[i];
                    self.prov.record_edge(*a, *b, EdgeWhy::CastWild(span));
                    changed = true;
                }
            }
            for (q, inner) in pointee_map {
                if self.kind_of(*q) == PtrKind::Wild {
                    for iq in inner.iter() {
                        if self.raise(*iq, PtrKind::Wild) {
                            self.prov.record_edge(*q, *iq, EdgeWhy::Pointee);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    fn snapshot(&mut self, n: usize) -> Solution {
        let mut sol = Solution::new(n);
        for i in 0..n {
            let k = self.kind_of(QualId(i as u32));
            sol.set_kind(QualId(i as u32), k);
        }
        sol
    }

    fn rep(&mut self, q: QualId) -> u32 {
        self.find(q.0)
    }
}

/// Maps every pointer qualifier to the qualifiers inside its pointee type
/// (for WILD poisoning: a WILD pointer's base type goes entirely WILD).
fn pointee_quals(prog: &Program) -> Vec<(QualId, std::rc::Rc<Vec<QualId>>)> {
    let mut phys = PhysCtx::new(&prog.types);
    let mut out = Vec::new();
    for i in 0..prog.types.len() {
        let t = TypeId(i as u32);
        if let Type::Ptr(base, q) = prog.types.get(t) {
            let inner = phys.quals_in_type(*base);
            if !inner.is_empty() {
                out.push((*q, inner));
            }
        }
    }
    out
}

// --------------------------------------------------------------- RTTI pass

/// Lazily answers "does this type have proper physical subtypes among the
/// program's pointer pointee types?" (the gate of inference rule 3).
struct SubtypeCensus<'a> {
    prog: &'a Program,
    /// Representative pointee types, deduplicated structurally.
    reps: Vec<TypeId>,
    cache: HashMap<TypeId, bool>,
}

impl<'a> SubtypeCensus<'a> {
    fn new(prog: &'a Program) -> Self {
        let mut reps: Vec<TypeId> = Vec::new();
        for i in 0..prog.types.len() {
            if let Type::Ptr(base, _) = prog.types.get(TypeId(i as u32)) {
                if !reps.iter().any(|r| prog.types.same_type(*r, *base)) {
                    reps.push(*base);
                }
            }
        }
        SubtypeCensus {
            prog,
            reps,
            cache: HashMap::new(),
        }
    }

    fn has_proper_subtype(&mut self, t: TypeId, phys: &mut PhysCtx<'_>) -> bool {
        if let Some(&v) = self.cache.get(&t) {
            return v;
        }
        let v = self
            .reps
            .clone()
            .iter()
            .any(|r| phys.is_proper_subtype(*r, t) && !self.prog.types.same_type(*r, t));
        self.cache.insert(t, v);
        v
    }
}

fn run_rtti_pass(
    prog: &Program,
    constraints: &Constraints,
    solver_src: &Solver<'_>,
    sol: &mut Solution,
    census: &mut SubtypeCensus<'_>,
) {
    // Work on ECR representatives so unified qualifiers share flags.
    let n = sol.len();
    let mut solver = Solver::new(n, constraints);
    // Rebuild the same unions (cheap) to query representatives.
    for (a, b) in &constraints.eq {
        solver.union(a.0, b.0);
    }
    let _ = solver_src; // representative structure is rebuilt locally
    let mut phys = PhysCtx::new(&prog.types);

    let mut rtti_rep: Vec<bool> = vec![false; n];
    let mut worklist: Vec<u32> = Vec::new();
    for q in &constraints.rtti_sources {
        if sol.kind(*q) == PtrKind::Safe {
            let r = solver.rep(*q) as usize;
            if !rtti_rep[r] {
                rtti_rep[r] = true;
                worklist.push(r as u32);
            }
        }
    }
    // Propagate to fixpoint over the backward and deep-equality edges.
    let mut changed = true;
    while changed {
        changed = false;
        for e in &constraints.rtti_back {
            let rd = solver.rep(e.dst) as usize;
            let rs = solver.rep(e.src) as usize;
            if rtti_rep[rd] && !rtti_rep[rs] && sol.kind(e.src) == PtrKind::Safe {
                let fire = match e.gate {
                    None => true,
                    Some(t) => census.has_proper_subtype(t, &mut phys),
                };
                if fire {
                    rtti_rep[rs] = true;
                    changed = true;
                }
            }
        }
        for (a, b) in &constraints.rtti_eq {
            let ra = solver.rep(*a) as usize;
            let rb = solver.rep(*b) as usize;
            if rtti_rep[ra] != rtti_rep[rb] {
                if sol.kind(*a) == PtrKind::Safe && sol.kind(*b) == PtrKind::Safe {
                    rtti_rep[ra] = true;
                    rtti_rep[rb] = true;
                    changed = true;
                } else {
                    // Mixed-kind alias: drop RTTI (validation may widen).
                    rtti_rep[ra] = false;
                    rtti_rep[rb] = false;
                }
            }
        }
    }
    for i in 0..n {
        let q = QualId(i as u32);
        let r = solver.rep(q) as usize;
        if rtti_rep[r] && sol.kind(q) == PtrKind::Safe {
            sol.set_rtti(q, true);
        }
    }
}

// -------------------------------------------------------------- validation

/// Re-checks every cast site against the solved kinds; returns qualifiers
/// that must be widened to WILD, each with the rule that fired.
fn validate(
    prog: &Program,
    phys: &mut PhysCtx<'_>,
    sol: &Solution,
    opts: &InferOptions,
) -> Vec<(QualId, Origin)> {
    let mut widen = Vec::new();
    for site in &prog.casts {
        if site.trusted || site.alloc {
            continue;
        }
        let (fp, tp) = (
            prog.types.ptr_parts(site.from),
            prog.types.ptr_parts(site.to),
        );
        let ((fb, fq), (tb, tq)) = match (fp, tp) {
            (Some(f), Some(t)) => (f, t),
            _ => continue,
        };
        let (kf, kt) = (sol.kind(fq), sol.kind(tq));
        if kf == PtrKind::Wild && kt == PtrKind::Wild {
            continue; // WILD-to-WILD casts are always permitted
        }
        if kf == PtrKind::Wild || kt == PtrKind::Wild {
            if std::env::var("CCURED_DEBUG_WIDEN").is_ok() {
                eprintln!(
                    "widen mixed-wild: {} -> {}",
                    prog.types.display(site.from),
                    prog.types.display(site.to)
                );
            }
            // wild_eq should have caught this; widen the other side.
            widen.push((fq, Origin::Validation("mixed-wild cast", site.span)));
            widen.push((tq, Origin::Validation("mixed-wild cast", site.span)));
            continue;
        }
        match phys.classify_cast(site.from, site.to) {
            CastClass::Identical => {
                // Kinds are unified; if SEQ, tiling holds trivially.
            }
            CastClass::Upcast
                if (kf == PtrKind::Seq || kt == PtrKind::Seq) && !phys.seq_cast_ok(fb, tb) =>
            {
                if std::env::var("CCURED_DEBUG_WIDEN").is_ok() {
                    eprintln!(
                        "widen upcast: {} -> {} (kf={kf:?} kt={kt:?})",
                        prog.types.display(site.from),
                        prog.types.display(site.to)
                    );
                }
                widen.push((fq, Origin::Validation("SEQ upcast tiling", site.span)));
                widen.push((tq, Origin::Validation("SEQ upcast tiling", site.span)));
            }
            CastClass::Downcast => {
                if !opts.rtti {
                    widen.push((fq, Origin::Downcast(site.span)));
                    widen.push((tq, Origin::Downcast(site.span)));
                    continue;
                }
                // The source must be a SAFE pointer carrying RTTI; the
                // target must be SAFE (possibly itself RTTI).
                let src_ok = kf == PtrKind::Safe && sol.is_rtti(fq);
                let dst_ok = kt == PtrKind::Safe;
                if !src_ok || !dst_ok {
                    widen.push((
                        fq,
                        Origin::Validation("downcast needs SAFE+RTTI", site.span),
                    ));
                    widen.push((
                        tq,
                        Origin::Validation("downcast needs SAFE+RTTI", site.span),
                    ));
                }
            }
            CastClass::Bad => {
                widen.push((fq, Origin::BadCast(site.span)));
                widen.push((tq, Origin::BadCast(site.span)));
            }
            _ => {}
        }
    }
    // Only report qualifiers that are not already WILD (guarantees that the
    // outer loop strictly increases and thus terminates).
    widen.retain(|(q, _)| sol.kind(*q) != PtrKind::Wild);
    widen.sort_by_key(|(q, _)| *q);
    widen.dedup_by_key(|(q, _)| *q);
    widen
}

fn check_annotations(prog: &Program, sol: &Solution) -> Vec<AnnotationViolation> {
    let mut out = Vec::new();
    for (q, annot) in &prog.annots.qual_kinds {
        let eff = sol.effective(*q);
        let ok = match annot {
            KindAnnot::Safe => eff == crate::kinds::EffectiveKind::Safe,
            KindAnnot::Seq => eff == crate::kinds::EffectiveKind::Seq,
            KindAnnot::Wild => eff == crate::kinds::EffectiveKind::Wild,
            KindAnnot::Rtti => eff == crate::kinds::EffectiveKind::Rtti,
        };
        if !ok {
            out.push(AnnotationViolation {
                qual: *q,
                annotated: *annot,
                inferred: format!("{eff:?}"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::EffectiveKind;

    fn run(src: &str) -> (Program, InferResult) {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let res = infer(&prog, &InferOptions::default());
        (prog, res)
    }

    fn local_kind(prog: &Program, res: &InferResult, func: &str, local: &str) -> EffectiveKind {
        let f = prog.find_function(func).expect("function");
        let f = &prog.functions[f.idx()];
        let l = f
            .locals
            .iter()
            .find(|l| l.name == local)
            .unwrap_or_else(|| panic!("local {local}"));
        let (_, q) = prog.types.ptr_parts(l.ty).expect("pointer local");
        res.solution.effective(q)
    }

    #[test]
    fn plain_pointer_is_safe() {
        let (p, r) = run("int f(int *p) { return *p; }");
        assert_eq!(local_kind(&p, &r, "f", "p"), EffectiveKind::Safe);
    }

    #[test]
    fn arithmetic_makes_seq() {
        let (p, r) = run("int f(int *p) { return *(p + 3); }");
        assert_eq!(local_kind(&p, &r, "f", "p"), EffectiveKind::Seq);
    }

    #[test]
    fn indexing_makes_seq() {
        let (p, r) = run("int f(int *p) { return p[3]; }");
        assert_eq!(local_kind(&p, &r, "f", "p"), EffectiveKind::Seq);
    }

    #[test]
    fn seq_spreads_through_assignment() {
        let (p, r) = run("int f(int *p) { int *q; q = p; return q[1]; }");
        assert_eq!(local_kind(&p, &r, "f", "p"), EffectiveKind::Seq);
        assert_eq!(local_kind(&p, &r, "f", "q"), EffectiveKind::Seq);
    }

    #[test]
    fn bad_cast_makes_wild_both() {
        let (p, r) = run("int f(double *d) { int *q; q = (int *)d; return *q; }");
        assert_eq!(local_kind(&p, &r, "f", "d"), EffectiveKind::Wild);
        assert_eq!(local_kind(&p, &r, "f", "q"), EffectiveKind::Wild);
    }

    #[test]
    fn wild_poisons_base_type() {
        // pp is WILD, so the pointers stored through it must be WILD too.
        let (p, r) = run(
            "int f(double *d) { int **pp; pp = (int **)d; int *inner; inner = *pp; return *inner; }",
        );
        assert_eq!(local_kind(&p, &r, "f", "pp"), EffectiveKind::Wild);
        assert_eq!(local_kind(&p, &r, "f", "inner"), EffectiveKind::Wild);
    }

    #[test]
    fn upcast_stays_safe() {
        let (p, r) = run("struct F { void *vt; } gf;\n\
             struct C { void *vt; int radius; } gc;\n\
             void use_f(struct F *f) { }\n\
             void g(struct C *c) { use_f((struct F *)c); }");
        assert_eq!(local_kind(&p, &r, "g", "c"), EffectiveKind::Safe);
        assert_eq!(local_kind(&p, &r, "use_f", "f"), EffectiveKind::Safe);
    }

    #[test]
    fn downcast_makes_source_rtti() {
        let (p, r) = run("struct F { void *vt; } gf;\n\
             struct C { void *vt; int radius; } gc;\n\
             int g(struct F *f) { struct C *c; c = (struct C *)f; return c->radius; }");
        assert_eq!(local_kind(&p, &r, "g", "f"), EffectiveKind::Rtti);
        assert_eq!(local_kind(&p, &r, "g", "c"), EffectiveKind::Safe);
    }

    #[test]
    fn paper_circle_chain_example() {
        // Circle* q1 -> Figure* q2 -> void* q3 -> Circle* q4 (paper §3.2):
        // q3 RTTI (downcast source), q2 RTTI (upcast backprop, Figure has
        // subtypes), q1 SAFE (Circle has no subtypes), q4 SAFE.
        let (p, r) = run("struct Figure { void *vt; } gf;\n\
             struct Circle { void *vt; int radius; } gc;\n\
             int g(struct Circle *q1) {\n\
               struct Figure *q2; void *q3; struct Circle *q4;\n\
               q2 = (struct Figure *)q1;\n\
               q3 = (void *)q2;\n\
               q4 = (struct Circle *)q3;\n\
               return q4->radius;\n\
             }");
        assert_eq!(local_kind(&p, &r, "g", "q1"), EffectiveKind::Safe);
        assert_eq!(local_kind(&p, &r, "g", "q2"), EffectiveKind::Rtti);
        assert_eq!(local_kind(&p, &r, "g", "q3"), EffectiveKind::Rtti);
        assert_eq!(local_kind(&p, &r, "g", "q4"), EffectiveKind::Safe);
    }

    #[test]
    fn original_ccured_mode_downcast_is_wild() {
        let tu = ccured_ast::parse_translation_unit(
            "struct F { void *vt; } gf;\n\
             struct C { void *vt; int radius; } gc;\n\
             int g(struct F *f) { struct C *c; c = (struct C *)f; return c->radius; }",
        )
        .unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let r = infer(&prog, &InferOptions::original_ccured());
        let f = prog.find_function("g").unwrap();
        let f = &prog.functions[f.idx()];
        let q = prog.types.ptr_parts(f.locals[0].ty).unwrap().1;
        assert_eq!(r.solution.effective(q), EffectiveKind::Wild);
    }

    #[test]
    fn trusted_cast_keeps_safe() {
        let (p, r) = run("int f(double *d) { int *q; q = (int * __TRUSTED)d; return *q; }");
        assert_eq!(local_kind(&p, &r, "f", "d"), EffectiveKind::Safe);
        assert_eq!(local_kind(&p, &r, "f", "q"), EffectiveKind::Safe);
    }

    #[test]
    fn seq_downcast_is_widened_to_wild() {
        // A downcast whose source also does arithmetic cannot be RTTI
        // (RTTI requires SAFE); validation widens it to WILD.
        let (p, r) = run("struct F { void *vt; } gf;\n\
             struct C { void *vt; int radius; } gc;\n\
             int g(struct F *f) {\n\
               struct C *c; f = f + 1; c = (struct C *)f; return c->radius;\n\
             }");
        assert_eq!(local_kind(&p, &r, "g", "f"), EffectiveKind::Wild);
    }

    #[test]
    fn annotations_checked() {
        let (_, r) = run("int * __SAFE f(int * __SEQ p) { return p + 1; }");
        // p is SEQ as annotated; return type qual stays SAFE? The returned
        // p+1 flows to the return qual, unifying them: the __SAFE assertion
        // must then be reported as violated.
        assert!(
            !r.annotation_violations.is_empty(),
            "returning a SEQ pointer from a __SAFE-annotated return type must be flagged"
        );
    }

    #[test]
    fn annotations_ok_when_matching() {
        let (_, r) = run("int f(int * __SEQ p, int n) { return p[n]; }");
        assert!(r.annotation_violations.is_empty());
    }

    #[test]
    fn iterations_terminate() {
        let (_, r) = run("struct F { void *vt; } gf;\n\
             struct C { void *vt; int radius; } gc;\n\
             int g(struct F *f) {\n\
               struct C *c; f = f + 1; c = (struct C *)f; return c->radius;\n\
             }");
        assert!(r.iterations <= 64);
    }

    #[test]
    fn kind_counts_reported() {
        let (_, r) = run("int f(int *p, char *s) { return p[1] + *s; }");
        let c = r.solution.kind_counts();
        assert!(c.seq >= 1);
        assert!(c.safe >= 1);
        assert_eq!(c.wild, 0);
    }
}
