//! # ccured-infer
//!
//! CCured's whole-program pointer-kind inference, extended with physical
//! subtyping, run-time type information (RTTI), and the SPLIT compatible-
//! representation inference — the algorithms of Sections 2.1, 3 and 4.2 of
//! *CCured in the Real World* (PLDI 2003).
//!
//! The entry point is [`infer`], which takes a lowered [`ccured_cil::Program`]
//! and produces a [`Solution`] assigning every qualifier variable a
//! [`PtrKind`], an RTTI flag and a SPLIT flag, together with the cast census
//! used throughout the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use ccured_infer::{infer, InferOptions};
//!
//! let tu = ccured_ast::parse_translation_unit(
//!     "int f(int *p, int n) { int *q = p; return q[n]; }",
//! ).unwrap();
//! let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
//! let result = infer(&prog, &InferOptions::default());
//! // `q` is indexed, so `q` (and by unification `p`) become SEQ.
//! assert!(result.solution.kind_counts().seq >= 1);
//! ```

pub mod gen;
pub mod kinds;
pub mod provenance;
pub mod solve;
pub mod split;
pub mod stats;

pub use gen::Constraints;
pub use kinds::{EffectiveKind, KindCounts, PtrKind, Solution};
pub use provenance::{BlameEdge, EdgeWhy, Origin, Provenance};
pub use solve::{infer, InferOptions, InferResult};
pub use stats::{CastCensus, CastKind};
