//! SPLIT / NOSPLIT inference for the compatible metadata representation
//! (paper Section 4.2).
//!
//! Starting from programmer annotations (and, optionally, automatic seeds at
//! external-call boundaries), SPLIT qualifiers flow:
//!
//! * down from a pointer to its base type and from a structure to its
//!   fields (SPLIT types never contain NOSPLIT types),
//! * across assignments and physically-equal casts (aliases must agree on
//!   representation).
//!
//! WILD pointers do not support the compatible representation (the paper's
//! stated limitation); splitness is cleared on WILD qualifiers.

use crate::gen::Constraints;
use crate::kinds::{PtrKind, Solution};
use crate::solve::InferOptions;
use ccured_cil::ir::{Callee, CcuredPragma, Instr, Program, SplitSeed, Stmt};
use ccured_cil::phys::PhysCtx;
use ccured_cil::types::{QualId, Type, TypeId};

/// Runs SPLIT inference, updating `solution` in place.
pub fn infer_split(
    prog: &Program,
    constraints: &Constraints,
    solution: &mut Solution,
    opts: &InferOptions,
) {
    let n = solution.len();
    let mut split = vec![false; n];
    let mut phys = PhysCtx::new(&prog.types);

    if opts.split_everything {
        split.fill(true);
    } else {
        // Seeds: explicit pointer-level annotations.
        for (q, s) in &prog.annots.qual_splits {
            if *s {
                split[q.0 as usize] = true;
            }
        }
        // Seeds: base-type annotations on variables.
        for (seed, s) in &prog.annots.split_seeds {
            if !*s {
                continue;
            }
            let ty = match seed {
                SplitSeed::Global(g) => prog.globals[g.idx()].ty,
                SplitSeed::Local(f, l) => prog.functions[f.idx()].locals[l.idx()].ty,
            };
            for q in phys.quals_in_type(ty).iter().copied() {
                split[q.0 as usize] = true;
            }
        }
        // Seeds: `#pragma ccured_split(name)` on globals.
        for p in &prog.pragmas {
            if let CcuredPragma::SplitVar(name) = p {
                if let Some(g) = prog.find_global(name) {
                    for q in phys.quals_in_type(prog.globals[g.idx()].ty).iter().copied() {
                        split[q.0 as usize] = true;
                    }
                }
            }
        }
        // Seeds: external-call boundaries (pointer arguments whose pointee
        // carries metadata would otherwise need deep-copying wrappers).
        if opts.split_at_boundaries {
            let meta = compute_meta_types(prog, solution);
            for f in &prog.functions {
                for s in &f.body {
                    seed_stmt_boundaries(prog, s, &meta, &mut split, &mut phys);
                }
            }
        }
    }

    // Propagation to fixpoint.
    let pointee: Vec<(QualId, TypeId)> = (0..prog.types.len())
        .filter_map(|i| match prog.types.get(TypeId(i as u32)) {
            Type::Ptr(base, q) => Some((*q, *base)),
            _ => None,
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        // Down: pointer split => everything in its base type split.
        for (q, base) in &pointee {
            if split[q.0 as usize] {
                for iq in phys.quals_in_type(*base).iter().copied() {
                    if !split[iq.0 as usize] {
                        split[iq.0 as usize] = true;
                        changed = true;
                    }
                }
            }
        }
        // Across: unified representations agree.
        for (a, b) in &constraints.eq {
            let (sa, sb) = (split[a.0 as usize], split[b.0 as usize]);
            if sa != sb {
                split[a.0 as usize] = true;
                split[b.0 as usize] = true;
                changed = true;
            }
        }
    }

    // WILD does not support the compatible representation.
    for (i, s) in split.iter_mut().enumerate() {
        if *s && solution.kind(QualId(i as u32)) == PtrKind::Wild {
            *s = false;
        }
    }

    for (i, s) in split.iter().enumerate() {
        solution.set_split(QualId(i as u32), *s);
    }
}

fn seed_stmt_boundaries(
    prog: &Program,
    s: &Stmt,
    meta: &[bool],
    split: &mut [bool],
    phys: &mut PhysCtx<'_>,
) {
    match s {
        Stmt::Instr(is) => {
            for i in is {
                if let Instr::Call(ret, Callee::Extern(x), args, _) = i {
                    let name = &prog.externals[x.idx()].name;
                    if name.starts_with("__") {
                        continue;
                    }
                    for a in args {
                        if let Some((base, q)) = prog.types.ptr_parts(a.ty()) {
                            // Only pointees that carry metadata need the
                            // compatible representation.
                            if meta[base.0 as usize] {
                                split[q.0 as usize] = true;
                                for iq in phys.quals_in_type(base).iter().copied() {
                                    split[iq.0 as usize] = true;
                                }
                            }
                        }
                    }
                    // Library-returned pointers to metadata-carrying data
                    // (the gethostbyname case of Section 4.2).
                    if ret.is_some() {
                        if let ccured_cil::types::Type::Func(sig) =
                            prog.types.get(prog.externals[x.idx()].ty)
                        {
                            if let Some((base, q)) = prog.types.ptr_parts(sig.ret) {
                                if meta[base.0 as usize] {
                                    split[q.0 as usize] = true;
                                    for iq in phys.quals_in_type(base).iter().copied() {
                                        split[iq.0 as usize] = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Stmt::If(_, t, e) => {
            for s in t.iter().chain(e.iter()) {
                seed_stmt_boundaries(prog, s, meta, split, phys);
            }
        }
        Stmt::Loop(b) | Stmt::Block(b) => {
            for s in b {
                seed_stmt_boundaries(prog, s, meta, split, phys);
            }
        }
        Stmt::Switch(_, arms) => {
            for arm in arms {
                for s in &arm.body {
                    seed_stmt_boundaries(prog, s, meta, split, phys);
                }
            }
        }
        _ => {}
    }
}

/// Computes, for every type, whether its metadata type `Meta(t)` is
/// non-void (paper Figure 6): SEQ pointers carry bounds, RTTI pointers carry
/// a type word, and any type containing such a pointer carries metadata.
///
/// Returns a vector indexed by [`TypeId`].
pub fn compute_meta_types(prog: &Program, sol: &Solution) -> Vec<bool> {
    let n = prog.types.len();
    let mut meta = vec![false; n];
    // Iterate to fixpoint (types form a finite graph; monotone).
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if meta[i] {
                continue;
            }
            let t = TypeId(i as u32);
            let m = match prog.types.get(t) {
                Type::Ptr(base, q) => {
                    sol.kind(*q) == PtrKind::Seq
                        || sol.kind(*q) == PtrKind::Wild
                        || sol.is_rtti(*q)
                        || meta[base.0 as usize]
                }
                Type::Array(elem, _) => meta[elem.0 as usize],
                Type::Comp(cid) => prog
                    .types
                    .comp(*cid)
                    .fields
                    .iter()
                    .any(|f| meta[f.ty.0 as usize]),
                Type::Func(_) | Type::Void | Type::Int(_) | Type::Float(_) => false,
            };
            if m {
                meta[i] = true;
                changed = true;
            }
        }
    }
    meta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{infer, InferOptions};

    fn run(src: &str, opts: &InferOptions) -> (Program, crate::solve::InferResult) {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let res = infer(&prog, opts);
        (prog, res)
    }

    #[test]
    fn no_seeds_no_split() {
        let (_, r) = run("int f(int *p) { return *p; }", &InferOptions::default());
        assert_eq!(r.solution.split_count(), 0);
    }

    #[test]
    fn annotation_seeds_split() {
        let (p, r) = run(
            "struct H { char *name; };\n\
             struct H __SPLIT *h1;\n\
             int f(void) { return 0; }",
            &InferOptions::default(),
        );
        let g = p.find_global("h1").unwrap();
        let (base, q) = p.types.ptr_parts(p.globals[g.idx()].ty).unwrap();
        assert!(r.solution.is_split(q), "h1's own pointer splits");
        // The base type's field pointer splits too (flows down).
        let mut phys = PhysCtx::new(&p.types);
        for iq in phys.quals_in_type(base).iter().copied() {
            assert!(r.solution.is_split(iq), "field quals split");
        }
    }

    #[test]
    fn split_spreads_through_assignment() {
        let (p, r) = run(
            "char * __SPLIT a;\n\
             char *b;\n\
             void f(void) { b = a; }",
            &InferOptions::default(),
        );
        let gb = p.find_global("b").unwrap();
        let (_, qb) = p.types.ptr_parts(p.globals[gb.idx()].ty).unwrap();
        assert!(r.solution.is_split(qb));
    }

    #[test]
    fn wild_cannot_split() {
        let (p, r) = run(
            "double *d;\n\
             int * __SPLIT w;\n\
             void f(void) { w = (int *)d; }",
            &InferOptions::default(),
        );
        let gw = p.find_global("w").unwrap();
        let (_, qw) = p.types.ptr_parts(p.globals[gw.idx()].ty).unwrap();
        assert_eq!(r.solution.kind(qw), PtrKind::Wild);
        assert!(!r.solution.is_split(qw));
    }

    #[test]
    fn split_everything_mode() {
        let opts = InferOptions {
            split_everything: true,
            ..InferOptions::default()
        };
        let (_, r) = run("int f(int *p, char **q) { return *p + (*q != 0); }", &opts);
        assert!(r.solution.split_count() >= 3);
    }

    #[test]
    fn boundary_seeding_splits_nested_pointer_args() {
        let opts = InferOptions {
            split_at_boundaries: true,
            ..InferOptions::default()
        };
        // sendmsg-like: the extern takes a struct containing a SEQ pointer.
        let (p, r) = run(
            "struct msg { char *buf; };\n\
             extern void sendmsg_like(struct msg *m);\n\
             void f(struct msg *m, int i) { m->buf = m->buf + i; sendmsg_like(m); }",
            &opts,
        );
        let f = p.find_function("f").unwrap();
        let (_, qm) = p
            .types
            .ptr_parts(p.functions[f.idx()].locals[0].ty)
            .unwrap();
        assert!(r.solution.is_split(qm), "argument pointer must split");
    }

    #[test]
    fn boundary_seeding_skips_meta_free_args() {
        let opts = InferOptions {
            split_at_boundaries: true,
            ..InferOptions::default()
        };
        // recvmsg-like case from the paper: a plain character buffer has no
        // metadata, so no split is needed.
        let (p, r) = run(
            "extern void fill(char *buf);\n\
             void f(char *b) { fill(b); }",
            &opts,
        );
        let f = p.find_function("f").unwrap();
        let (_, qb) = p
            .types
            .ptr_parts(p.functions[f.idx()].locals[0].ty)
            .unwrap();
        assert!(!r.solution.is_split(qb));
    }

    #[test]
    fn meta_types_computed() {
        let (p, r) = run(
            "struct hostent { char *h_name; char **h_aliases; int h_addrtype; };\n\
             int f(struct hostent *h, int i) { return h->h_aliases[i] != 0; }",
            &InferOptions::default(),
        );
        let meta = compute_meta_types(&p, &r.solution);
        // h_aliases is indexed => SEQ => hostent carries metadata.
        let cid = p.types.find_comp("hostent", false).unwrap();
        let t = (0..p.types.len())
            .map(|i| TypeId(i as u32))
            .find(|t| matches!(p.types.get(*t), Type::Comp(c) if *c == cid))
            .unwrap();
        assert!(meta[t.0 as usize]);
        // A plain int type never carries metadata.
        let int_t = (0..p.types.len())
            .map(|i| TypeId(i as u32))
            .find(|t| matches!(p.types.get(*t), Type::Int(_)))
            .unwrap();
        assert!(!meta[int_t.0 as usize]);
    }
}
