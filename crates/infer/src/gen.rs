//! Constraint generation (paper Sections 2.1, 3.1, 3.2).
//!
//! Walks the lowered program once and emits:
//!
//! * `AtLeast(q, SEQ)` for every pointer-arithmetic occurrence and every
//!   non-null integer-to-pointer cast,
//! * `AtLeast(q, WILD)` for both sides of every untrusted bad cast (the
//!   poisoning closure in the solver spreads WILD into base types),
//! * `Eq(q1, q2)` kind/representation unification for assignments, calls,
//!   physically-equal casts, and the overlapping prefixes of upcasts,
//! * RTTI edges: downcast sources, and the backward propagation edges of
//!   Section 3.2 (against the data flow, gated on "the source type has
//!   subtypes in the program" for upcasts).

use crate::kinds::PtrKind;
use crate::provenance::Origin;
use ccured_ast::Span;
use ccured_cil::ir::*;
use ccured_cil::phys::{CastClass, PhysCtx};
use ccured_cil::types::{QualId, Type, TypeId};

/// A backward RTTI propagation edge: `rtti(dst) ⇒ rtti(src)`, optionally
/// gated on `gate` having proper physical subtypes in the program.
#[derive(Debug, Clone, Copy)]
pub struct RttiBack {
    /// Qualifier at the source of the data flow.
    pub src: QualId,
    /// Qualifier at the destination of the data flow.
    pub dst: QualId,
    /// When `Some(t)`, the edge fires only if `t` has proper subtypes.
    pub gate: Option<TypeId>,
}

/// The generated constraint set.
#[derive(Debug, Default)]
pub struct Constraints {
    /// Lower bounds on qualifier kinds.
    pub at_least: Vec<(QualId, PtrKind)>,
    /// Provenance of each lower bound, parallel to `at_least`.
    pub at_least_origin: Vec<Origin>,
    /// Kind (and representation) unification pairs.
    pub eq: Vec<(QualId, QualId)>,
    /// "WILD on either side implies WILD on both" pairs (casts whose kinds
    /// need not otherwise unify, i.e. upcasts and downcasts).
    pub wild_eq: Vec<(QualId, QualId)>,
    /// Source span of each `wild_eq` cast site, parallel to `wild_eq`.
    pub wild_eq_span: Vec<Span>,
    /// Qualifiers that must carry RTTI (downcast sources).
    pub rtti_sources: Vec<QualId>,
    /// Backward RTTI propagation edges.
    pub rtti_back: Vec<RttiBack>,
    /// Deep-aliased pairs whose RTTI flags must match in both directions.
    pub rtti_eq: Vec<(QualId, QualId)>,
    /// Pointee types of every pointer cast, for the subtype census.
    pub cast_pointees: Vec<TypeId>,
}

/// Generates all constraints for `prog`.
///
/// `rtti_enabled` mirrors the paper's original-CCured comparison: when
/// false, downcasts are treated as bad casts (both sides WILD).
pub fn generate(prog: &Program, rtti_enabled: bool) -> Constraints {
    let mut g = Gen {
        prog,
        phys: PhysCtx::new(&prog.types),
        out: Constraints::default(),
        cur: None,
        span: Span::DUMMY,
        rtti_enabled,
    };
    g.run();
    g.out
}

/// The type of an lvalue occurring in `func`.
pub fn lval_type(prog: &Program, func: &Function, lv: &Lval) -> TypeId {
    let mut ty = match &lv.base {
        LvBase::Local(l) => func.locals[l.idx()].ty,
        LvBase::Global(g) => prog.globals[g.idx()].ty,
        LvBase::Deref(e) => match prog.types.ptr_parts(e.ty()) {
            Some((base, _)) => base,
            None => unreachable!("deref of non-pointer in typed IR"),
        },
    };
    for off in &lv.offsets {
        ty = match off {
            Offset::Field(cid, idx) => prog.types.comp(*cid).fields[*idx].ty,
            Offset::Index(_) => match prog.types.get(ty) {
                Type::Array(elem, _) => *elem,
                _ => unreachable!("index into non-array in typed IR"),
            },
        };
    }
    ty
}

struct Gen<'a> {
    prog: &'a Program,
    phys: PhysCtx<'a>,
    out: Constraints,
    cur: Option<FuncId>,
    /// Span of the instruction being walked, for constraint provenance.
    span: Span,
    rtti_enabled: bool,
}

impl<'a> Gen<'a> {
    fn at_least(&mut self, q: QualId, k: PtrKind, origin: Origin) {
        self.out.at_least.push((q, k));
        self.out.at_least_origin.push(origin);
    }

    fn wild_eq(&mut self, a: QualId, b: QualId, span: Span) {
        self.out.wild_eq.push((a, b));
        self.out.wild_eq_span.push(span);
    }

    fn run(&mut self) {
        // 1. Cast sites.
        for site in &self.prog.casts {
            self.cast_site(site);
        }
        // 2. Explicit WILD annotations force WILD; the rest are checked
        //    after solving.
        for (q, k) in self.prog.annots.qual_kinds.clone() {
            if k == KindAnnot::Wild {
                self.at_least(q, PtrKind::Wild, Origin::Annotation);
            }
        }
        // 3. Function bodies.
        for (i, f) in self.prog.functions.iter().enumerate() {
            self.cur = Some(FuncId(i as u32));
            for s in &f.body {
                self.stmt(f, s);
            }
        }
        self.cur = None;
        // 4. Global initializers.
        for g in &self.prog.globals {
            if let Some(init) = &g.init {
                self.init(g.ty, init);
            }
        }
    }

    fn cast_site(&mut self, site: &CastSite) {
        if site.trusted || site.alloc {
            // Trusted casts are the programmer's escape hatch; allocator
            // casts type fresh memory (handled by the allocator wrappers).
            return;
        }
        let class = self.phys.classify_cast(site.from, site.to);
        match class {
            CastClass::Scalar | CastClass::PtrToInt => {}
            CastClass::IntToPtr => {
                if !site.from_zero {
                    if let Some((_, q)) = self.prog.types.ptr_parts(site.to) {
                        self.at_least(q, PtrKind::Seq, Origin::IntToPtr(site.span));
                    }
                }
            }
            CastClass::Identical => {
                let (fb, fq) = self.prog.types.ptr_parts(site.from).expect("ptr cast");
                let (tb, tq) = self.prog.types.ptr_parts(site.to).expect("ptr cast");
                self.out.cast_pointees.push(fb);
                self.out.cast_pointees.push(tb);
                self.unify_flow(site.from, site.to);
                self.out.rtti_back.push(RttiBack {
                    src: fq,
                    dst: tq,
                    gate: None,
                });
            }
            CastClass::Upcast => {
                let (fb, fq) = self.prog.types.ptr_parts(site.from).expect("ptr cast");
                let (tb, tq) = self.prog.types.ptr_parts(site.to).expect("ptr cast");
                self.out.cast_pointees.push(fb);
                self.out.cast_pointees.push(tb);
                self.wild_eq(fq, tq, site.span);
                if let Some(pairs) = self.phys.prefix_qual_pairs(tb, fb) {
                    for (a, b) in pairs {
                        self.out.eq.push((a, b));
                        self.out.rtti_eq.push((a, b));
                    }
                }
                self.out.rtti_back.push(RttiBack {
                    src: fq,
                    dst: tq,
                    gate: Some(fb),
                });
            }
            CastClass::Downcast => {
                let (fb, fq) = self.prog.types.ptr_parts(site.from).expect("ptr cast");
                let (tb, tq) = self.prog.types.ptr_parts(site.to).expect("ptr cast");
                self.out.cast_pointees.push(fb);
                self.out.cast_pointees.push(tb);
                if self.rtti_enabled {
                    self.wild_eq(fq, tq, site.span);
                    self.out.rtti_sources.push(fq);
                    // The overlapping prefix (all of `from`'s layout) aliases.
                    if let Some(pairs) = self.phys.prefix_qual_pairs(fb, tb) {
                        for (a, b) in pairs {
                            self.out.eq.push((a, b));
                            self.out.rtti_eq.push((a, b));
                        }
                    }
                } else {
                    // Original CCured: downcasts are bad casts.
                    self.at_least(fq, PtrKind::Wild, Origin::Downcast(site.span));
                    self.at_least(tq, PtrKind::Wild, Origin::Downcast(site.span));
                }
            }
            CastClass::Bad => {
                let (fb, fq) = self.prog.types.ptr_parts(site.from).expect("ptr cast");
                let (tb, tq) = self.prog.types.ptr_parts(site.to).expect("ptr cast");
                self.out.cast_pointees.push(fb);
                self.out.cast_pointees.push(tb);
                self.at_least(fq, PtrKind::Wild, Origin::BadCast(site.span));
                self.at_least(tq, PtrKind::Wild, Origin::BadCast(site.span));
            }
        }
    }

    /// Unifies the representations of two physically equal types that flow
    /// into one another (assignment or identical cast): the top-level pair
    /// gets kind unification; deep pairs additionally share RTTI both ways.
    fn unify_flow(&mut self, from: TypeId, to: TypeId) {
        if let Some(pairs) = self.phys.eq_qual_pairs(from, to) {
            let mut first = true;
            for (a, b) in pairs {
                self.out.eq.push((a, b));
                if first {
                    // Top-level value flow: RTTI propagates against the flow
                    // only (handled by rtti_back added by callers when
                    // relevant).
                    first = false;
                } else {
                    self.out.rtti_eq.push((a, b));
                }
            }
        }
    }

    fn stmt(&mut self, f: &Function, s: &Stmt) {
        match s {
            Stmt::Instr(is) => {
                for i in is {
                    self.instr(f, i);
                }
            }
            Stmt::If(c, t, e) => {
                self.exp(c);
                for s in t.iter().chain(e.iter()) {
                    self.stmt(f, s);
                }
            }
            Stmt::Loop(b) | Stmt::Block(b) => {
                for s in b {
                    self.stmt(f, s);
                }
            }
            Stmt::Return(Some(e)) => {
                self.exp(e);
                let ret = f.ret_type(&self.prog.types);
                self.flow(e.ty(), ret);
            }
            Stmt::Switch(e, arms) => {
                self.exp(e);
                for arm in arms {
                    for s in &arm.body {
                        self.stmt(f, s);
                    }
                }
            }
            _ => {}
        }
    }

    fn instr(&mut self, f: &Function, i: &Instr) {
        match i {
            Instr::Set(_, _, s) | Instr::Call(_, _, _, s) => self.span = *s,
            Instr::Check(..) => {}
        }
        match i {
            Instr::Check(..) => {}
            Instr::Set(lv, e, _) => {
                self.lval(lv);
                self.exp(e);
                let lt = lval_type(self.prog, f, lv);
                self.flow_with_rtti(e.ty(), lt);
            }
            Instr::Call(ret, callee, args, _) => {
                if let Some(lv) = ret {
                    self.lval(lv);
                }
                for a in args {
                    self.exp(a);
                }
                let sig = match callee {
                    Callee::Func(fid) => {
                        match self.prog.types.get(self.prog.functions[fid.idx()].ty) {
                            Type::Func(s) => Some(s.clone()),
                            _ => None,
                        }
                    }
                    Callee::Extern(x) => {
                        let ext = &self.prog.externals[x.idx()];
                        if is_helper(&ext.name) {
                            self.helper_call(f, &ext.name, ret, args);
                            None
                        } else {
                            match self.prog.types.get(ext.ty) {
                                Type::Func(s) => Some(s.clone()),
                                _ => None,
                            }
                        }
                    }
                    Callee::Ptr(e) => {
                        self.exp(e);
                        self.prog.types.ptr_parts(e.ty()).and_then(|(base, _)| {
                            match self.prog.types.get(base) {
                                Type::Func(s) => Some(s.clone()),
                                _ => None,
                            }
                        })
                    }
                };
                if let Some(sig) = sig {
                    for (a, p) in args.iter().zip(sig.params.iter()) {
                        self.flow_with_rtti(a.ty(), *p);
                    }
                    if let Some(lv) = ret {
                        let lt = lval_type(self.prog, f, lv);
                        self.flow_with_rtti(sig.ret, lt);
                    }
                }
            }
        }
    }

    /// The CCured helper externals used inside wrapper bodies get
    /// specialized, not unified, treatment (Section 4.1).
    fn helper_call(&mut self, f: &Function, name: &str, ret: &Option<Lval>, args: &[Exp]) {
        // Helpers that consult bounds metadata require fat (SEQ) arguments:
        // a wrapper using them declares that it needs the caller's bounds.
        let here = self.span;
        if name.starts_with("__verify_nul") || name.starts_with("__bounds_check_n") {
            if let Some(a) = args.first() {
                if let Some((_, q)) = self.prog.types.ptr_parts(a.ty()) {
                    self.at_least(q, PtrKind::Seq, Origin::HelperBounds(here));
                }
            }
        }
        if name.starts_with("__mkptr") {
            // The donor must carry bounds too.
            if let Some(within) = args.get(1) {
                if let Some((_, q)) = self.prog.types.ptr_parts(within.ty()) {
                    self.at_least(q, PtrKind::Seq, Origin::HelperBounds(here));
                }
            }
        }
        if name.starts_with("__mkptr") {
            // The result pointer shares kind/metadata with the second
            // argument (it inherits its bounds).
            if let (Some(lv), Some(within)) = (ret, args.get(1)) {
                let lt = lval_type(self.prog, f, lv);
                if let (Some((_, ql)), Some((_, qw))) = (
                    self.prog.types.ptr_parts(lt),
                    self.prog.types.ptr_parts(within.ty()),
                ) {
                    self.out.eq.push((ql, qw));
                }
            }
        }
        // __ptrof / __verify_nul: no constraints; the runtime handles any
        // representation and __ptrof always returns a thin SAFE pointer.
    }

    /// Value flow between two (same-shaped) types: unify representations.
    fn flow(&mut self, from: TypeId, to: TypeId) {
        self.unify_flow(from, to);
    }

    /// Value flow with top-level backward RTTI propagation (assignment of
    /// physically equal pointers).
    fn flow_with_rtti(&mut self, from: TypeId, to: TypeId) {
        self.unify_flow(from, to);
        if let (Some((_, fq)), Some((_, tq))) = (
            self.prog.types.ptr_parts(from),
            self.prog.types.ptr_parts(to),
        ) {
            self.out.rtti_back.push(RttiBack {
                src: fq,
                dst: tq,
                gate: None,
            });
        }
    }

    fn lval(&mut self, lv: &Lval) {
        if let LvBase::Deref(e) = &lv.base {
            self.exp(e);
        }
        for off in &lv.offsets {
            if let Offset::Index(e) = off {
                self.exp(e);
            }
        }
    }

    fn exp(&mut self, e: &Exp) {
        match e {
            Exp::Binop(op, a, b, _) => {
                self.exp(a);
                self.exp(b);
                if op.is_pointer_arith() {
                    if let Some((_, q)) = self.prog.types.ptr_parts(a.ty()) {
                        let here = self.span;
                        self.at_least(q, PtrKind::Seq, Origin::PtrArith(here));
                    }
                }
            }
            Exp::Unop(_, x, _) => self.exp(x),
            Exp::Cast(_, x, _) => self.exp(x),
            Exp::Load(lv, _) | Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => self.lval(lv),
            _ => {}
        }
    }

    /// Walks a global initializer against the shape of its type.
    fn init(&mut self, ty: TypeId, init: &Init) {
        match init {
            Init::Scalar(e) => {
                self.exp(e);
                self.flow_with_rtti(e.ty(), ty);
            }
            Init::Compound(items) => match self.prog.types.get(ty).clone() {
                Type::Array(elem, _) => {
                    for i in items {
                        self.init(elem, i);
                    }
                }
                Type::Comp(cid) => {
                    let fields: Vec<TypeId> = self
                        .prog
                        .types
                        .comp(cid)
                        .fields
                        .iter()
                        .map(|f| f.ty)
                        .collect();
                    for (i, item) in items.iter().enumerate() {
                        if let Some(ft) = fields.get(i) {
                            self.init(*ft, item);
                        }
                    }
                }
                _ => {
                    if let Some(first) = items.first() {
                        self.init(ty, first);
                    }
                }
            },
            Init::String(_) => {}
        }
    }
}

fn is_helper(name: &str) -> bool {
    name.starts_with("__")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraints(src: &str) -> (Program, Constraints) {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let c = generate(&prog, true);
        (prog, c)
    }

    #[test]
    fn pointer_arith_generates_seq() {
        let (_, c) = constraints("int f(int *p) { return *(p + 1); }");
        assert!(c.at_least.iter().any(|(_, k)| *k == PtrKind::Seq));
    }

    #[test]
    fn plain_deref_generates_nothing_wild() {
        let (_, c) = constraints("int f(int *p) { return *p; }");
        assert!(c.at_least.iter().all(|(_, k)| *k != PtrKind::Wild));
    }

    #[test]
    fn bad_cast_generates_wild() {
        let (_, c) = constraints("int f(double *d) { return *((int *)d); }");
        let wilds = c
            .at_least
            .iter()
            .filter(|(_, k)| *k == PtrKind::Wild)
            .count();
        assert_eq!(wilds, 2, "both sides of a bad cast go WILD");
    }

    #[test]
    fn trusted_cast_generates_nothing() {
        let (_, c) = constraints("int f(double *d) { return *((int * __TRUSTED)d); }");
        assert!(c.at_least.iter().all(|(_, k)| *k != PtrKind::Wild));
    }

    #[test]
    fn downcast_generates_rtti_source() {
        let (_, c) = constraints(
            "struct F { void *vt; } gf;\n\
             struct C { void *vt; int r; } gc;\n\
             int f(struct F *p) { struct C *c = (struct C *)p; return c->r; }",
        );
        assert_eq!(c.rtti_sources.len(), 1);
    }

    #[test]
    fn downcast_without_rtti_goes_wild() {
        let tu = ccured_ast::parse_translation_unit(
            "struct F { void *vt; } gf;\n\
             struct C { void *vt; int r; } gc;\n\
             int f(struct F *p) { struct C *c = (struct C *)p; return c->r; }",
        )
        .unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let c = generate(&prog, false);
        assert!(c.rtti_sources.is_empty());
        assert!(
            c.at_least
                .iter()
                .filter(|(_, k)| *k == PtrKind::Wild)
                .count()
                >= 2
        );
    }

    #[test]
    fn upcast_generates_gated_backedge() {
        let (_, c) = constraints(
            "struct F { void *vt; } gf;\n\
             struct C { void *vt; int r; } gc;\n\
             void g(struct F *f) { }\n\
             void h(struct C *c) { g((struct F *)c); }",
        );
        assert!(c.rtti_back.iter().any(|e| e.gate.is_some()));
    }

    #[test]
    fn null_cast_generates_nothing() {
        let (_, c) = constraints("int *f(void) { return 0; }");
        assert!(c.at_least.is_empty());
    }

    #[test]
    fn nonzero_int_to_ptr_needs_seq() {
        let (_, c) = constraints("int *f(long a) { return (int *)a; }");
        assert!(c.at_least.iter().any(|(_, k)| *k == PtrKind::Seq));
    }

    #[test]
    fn assignment_unifies_quals() {
        let (prog, c) = constraints("int f(int *p) { int *q; q = p; return *q; }");
        // p's and q's quals must appear in an eq pair (directly or via the
        // coercion-free same-type flow).
        let func = &prog.functions[0];
        let qp = prog.types.ptr_parts(func.locals[0].ty).unwrap().1;
        let qq = prog.types.ptr_parts(func.locals[1].ty).unwrap().1;
        assert!(
            c.eq.iter()
                .any(|(a, b)| (*a == qp && *b == qq) || (*a == qq && *b == qp)),
            "assignment must unify p and q"
        );
    }

    #[test]
    fn call_unifies_args_with_params() {
        let (prog, c) = constraints(
            "void g(char *s) { }\n\
             void f(char *t) { g(t); }",
        );
        let g = &prog.functions[0];
        let f = &prog.functions[1];
        let qs = prog.types.ptr_parts(g.locals[0].ty).unwrap().1;
        let qt = prog.types.ptr_parts(f.locals[0].ty).unwrap().1;
        assert!(c
            .eq
            .iter()
            .any(|(a, b)| (*a == qs && *b == qt) || (*a == qt && *b == qs)));
    }

    #[test]
    fn helper_calls_do_not_unify_params() {
        let (_, c) = constraints(
            "extern char *__ptrof(char *p);\n\
             void f(char *a, char *b) { __ptrof(a); __ptrof(b); }",
        );
        // a and b must not be unified through __ptrof's parameter.
        assert!(c.eq.is_empty());
    }
}
