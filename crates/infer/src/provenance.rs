//! Provenance recording for the solver: why did a qualifier's kind rise?
//!
//! Every direct kind promotion keeps its originating constraint and source
//! span ([`Origin`]); every flow that can carry a promotion between
//! qualifiers (unification, WILD spreading across a cast, pointee
//! poisoning) is kept as an undirected [`BlameEdge`]. The blame analysis in
//! `ccured-analysis` runs a breadth-first search over this graph to produce
//! the shortest explanation path from any WILD or SEQ pointer back to the
//! root cause — typically the one bad cast that poisoned a whole data
//! structure.

use crate::kinds::PtrKind;
use ccured_ast::Span;
use ccured_cil::types::QualId;

/// The constraint that directly forced a kind promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Pointer arithmetic on the qualifier's pointer.
    PtrArith(Span),
    /// A non-null integer-to-pointer cast.
    IntToPtr(Span),
    /// A bad cast (incompatible pointer types).
    BadCast(Span),
    /// A downcast with RTTI disabled (original-CCured mode).
    Downcast(Span),
    /// A `__WILD`/`__SEQ` source annotation.
    Annotation,
    /// A wrapper helper (`__bounds_check_n`, `__mkptr`, ...) that requires
    /// the argument to carry bounds.
    HelperBounds(Span),
    /// Physical subtyping disabled: any non-identical cast is bad.
    NonPhysEq(Span),
    /// The validate-and-retry loop widened this qualifier (the named rule
    /// failed at the cast site).
    Validation(&'static str, Span),
}

impl Origin {
    /// The source span of the originating constraint (`Span::DUMMY` when
    /// the constraint has no source location).
    pub fn span(&self) -> Span {
        match self {
            Origin::PtrArith(s)
            | Origin::IntToPtr(s)
            | Origin::BadCast(s)
            | Origin::Downcast(s)
            | Origin::HelperBounds(s)
            | Origin::NonPhysEq(s)
            | Origin::Validation(_, s) => *s,
            Origin::Annotation => Span::DUMMY,
        }
    }

    /// A short human-readable description (without the location).
    pub fn describe(&self) -> String {
        match self {
            Origin::PtrArith(_) => "pointer arithmetic".into(),
            Origin::IntToPtr(_) => "cast of a non-null integer to a pointer".into(),
            Origin::BadCast(_) => "bad cast between incompatible pointer types".into(),
            Origin::Downcast(_) => "downcast (RTTI disabled: treated as a bad cast)".into(),
            Origin::Annotation => "explicit source annotation".into(),
            Origin::HelperBounds(_) => "wrapper helper requiring bounds metadata".into(),
            Origin::NonPhysEq(_) => {
                "cast between non-identical types (physical subtyping disabled)".into()
            }
            Origin::Validation(rule, _) => format!("cast validation failed ({rule})"),
        }
    }
}

/// Why a promotion can flow between two qualifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWhy {
    /// The two qualifiers were unified (assignment, call, return, or
    /// physical-prefix aliasing): they share one kind.
    Unified,
    /// A cast at `Span` whose sides need not share a kind, except that WILD
    /// on either side spreads to the other.
    CastWild(Span),
    /// `b` lives inside the base type of WILD pointer `a` (poisoning).
    Pointee,
}

/// One undirected provenance edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlameEdge {
    /// One endpoint.
    pub a: QualId,
    /// The other endpoint.
    pub b: QualId,
    /// Why a promotion crosses this edge.
    pub why: EdgeWhy,
}

impl EdgeWhy {
    /// Whether a promotion to `kind` flows across this edge. Unification
    /// shares every kind; WILD spreading and pointee poisoning carry only
    /// WILD.
    pub fn carries(&self, kind: PtrKind) -> bool {
        match self {
            EdgeWhy::Unified => true,
            EdgeWhy::CastWild(_) | EdgeWhy::Pointee => kind == PtrKind::Wild,
        }
    }
}

/// The complete provenance record of one inference run.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    /// Per qualifier: the first direct constraint that promoted its
    /// equivalence class, with the kind it forced.
    roots: Vec<Option<(PtrKind, Origin)>>,
    /// All recorded flow edges.
    pub edges: Vec<BlameEdge>,
}

impl Provenance {
    /// An empty record over `n` qualifiers.
    pub fn new(n: usize) -> Self {
        Provenance {
            roots: vec![None; n],
            edges: Vec::new(),
        }
    }

    /// Records a direct promotion of `q` to `kind`; the first cause per
    /// qualifier wins (later, weaker constraints never overwrite it).
    pub fn record_root(&mut self, q: QualId, kind: PtrKind, origin: Origin) {
        let slot = &mut self.roots[q.0 as usize];
        match slot {
            Some((k, _)) if *k >= kind => {}
            _ => *slot = Some((kind, origin)),
        }
    }

    /// Records a flow edge.
    pub fn record_edge(&mut self, a: QualId, b: QualId, why: EdgeWhy) {
        self.edges.push(BlameEdge { a, b, why });
    }

    /// The direct cause recorded for `q`, if any, provided it forced a kind
    /// of at least `kind`.
    pub fn root_for(&self, q: QualId, kind: PtrKind) -> Option<(PtrKind, Origin)> {
        match self.roots.get(q.0 as usize)? {
            Some((k, o)) if *k >= kind => Some((*k, *o)),
            _ => None,
        }
    }

    /// Number of qualifiers covered.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// Whether no qualifiers are covered.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_stronger_cause_wins() {
        let mut p = Provenance::new(4);
        p.record_root(QualId(1), PtrKind::Seq, Origin::PtrArith(Span::new(1, 2)));
        p.record_root(QualId(1), PtrKind::Seq, Origin::PtrArith(Span::new(9, 10)));
        let (k, o) = p.root_for(QualId(1), PtrKind::Seq).unwrap();
        assert_eq!(k, PtrKind::Seq);
        assert_eq!(o.span(), Span::new(1, 2), "first cause is kept");
        // A WILD promotion outranks the SEQ record.
        p.record_root(QualId(1), PtrKind::Wild, Origin::BadCast(Span::new(5, 6)));
        let (k, _) = p.root_for(QualId(1), PtrKind::Wild).unwrap();
        assert_eq!(k, PtrKind::Wild);
    }

    #[test]
    fn root_for_respects_requested_kind() {
        let mut p = Provenance::new(2);
        p.record_root(QualId(0), PtrKind::Seq, Origin::Annotation);
        assert!(p.root_for(QualId(0), PtrKind::Seq).is_some());
        assert!(p.root_for(QualId(0), PtrKind::Wild).is_none());
    }

    #[test]
    fn edge_kind_filtering() {
        assert!(EdgeWhy::Unified.carries(PtrKind::Seq));
        assert!(EdgeWhy::Unified.carries(PtrKind::Wild));
        assert!(!EdgeWhy::CastWild(Span::DUMMY).carries(PtrKind::Seq));
        assert!(EdgeWhy::CastWild(Span::DUMMY).carries(PtrKind::Wild));
        assert!(!EdgeWhy::Pointee.carries(PtrKind::Seq));
    }
}
