//! `ccured` — cure a C file and optionally run it (see crate docs).

use ccured_cli::{drive, parse_args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // The daemon and its client address a socket, not a source file.
    #[cfg(unix)]
    if opts.serve {
        return match ccured_cli::drive_serve(&opts) {
            Ok(outcome) => {
                print!("{}", outcome.stdout);
                ExitCode::from((outcome.exit & 0xff) as u8)
            }
            Err(e) => {
                eprintln!("ccured: {e}");
                ExitCode::from(4)
            }
        };
    }
    #[cfg(unix)]
    if opts.client {
        let outcome = ccured_cli::drive_client(&opts);
        print!("{}", outcome.stdout);
        return ExitCode::from((outcome.exit & 0xff) as u8);
    }
    // Batch, synth, and campaign generate or read their own inputs (the
    // positional arg is a directory or manifest, not a single source file).
    if opts.batch || opts.synth || opts.campaign {
        let result = if opts.batch {
            ccured_cli::drive_batch(&opts)
        } else if opts.synth {
            ccured_cli::drive_synth(&opts)
        } else {
            ccured_cli::drive_campaign(&opts)
        };
        return match result {
            Ok(outcome) => {
                print!("{}", outcome.stdout);
                ExitCode::from((outcome.exit & 0xff) as u8)
            }
            Err(e) => {
                eprintln!("ccured: {e}");
                ExitCode::from(1)
            }
        };
    }
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccured: cannot read `{}`: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let input = match &opts.input {
        Some(path) => match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ccured: cannot read input `{path}`: {e}");
                return ExitCode::from(2);
            }
        },
        None => Vec::new(),
    };
    match drive(&opts, &source, &input) {
        Ok(outcome) => {
            print!("{}", outcome.stdout);
            // POSIX semantics: the shell sees the low byte of the status.
            ExitCode::from((outcome.exit & 0xff) as u8)
        }
        Err(e) => {
            // Render frontend errors with file/line/column. Spans are
            // relative to the parsed text (prelude + source); shift the
            // line number back into the user's file.
            if let ccured::CureError::Frontend(d) = &e {
                let full = ccured_cli::with_prelude(&opts, &source);
                let shift = ccured_cli::prelude_lines(&opts);
                let map = ccured_ast::SourceMap::new(&opts.file, full);
                let pos = map.lookup(d.span.lo);
                if pos.line > shift {
                    eprintln!(
                        "{}:{}:{}: error: {}",
                        opts.file,
                        pos.line - shift,
                        pos.col,
                        d.msg
                    );
                } else {
                    eprintln!("<wrappers>:{}:{}: error: {}", pos.line, pos.col, d.msg);
                }
            } else {
                eprintln!("ccured: {e}");
            }
            ExitCode::from(1)
        }
    }
}
