//! # ccured-cli
//!
//! The command-line driver: cure a C file, inspect the inference results,
//! and run the program on the ccured-rs abstract machine in any
//! instrumentation mode.
//!
//! ```text
//! ccured <file.c> [options]
//! ccured explain <file.c> [--sym name] [options]
//! ccured crash-test <file.c> [--mutants N] [--seed S] [--json]
//! ccured batch <dir|manifest> [--jobs N] [--cache-dir D] [--no-cache] [--profile] [--json]
//!                             [--deadline-ms N]
//! ccured profile <file.c> [--top N] [--json] [--engine vm|tree]
//! ccured serve <socket> [--workers N] [--cache-dir D] [--no-cache] [--deadline-ms N]
//!                       [--queue-cap N] [--fault-poison SUBSTR]
//! ccured client <socket> <request...>
//! ccured synth <out-dir> [--profile P] [--units N] [--seed S]
//! ccured campaign [out-dir] [--profile P] [--units N] [--seed S] [--mutants-per-unit K]
//!                 [--jobs N] [--cache-dir D] [--no-cache] [--json]
//!
//!   --run                 execute after curing (default mode: cured)
//!   --mode <m>            original | cured | purify | valgrind | joneskelly
//!   --input <file>        bytes for the input builtins (getchar/net_recv)
//!   --report              print the cure report (kinds, casts, checks)
//!   --review              print the code-review surface (trusted/bad casts
//!                         plus WILD blame paths)
//!   --sym <name>          `explain`: only this symbol (local as `f::p`
//!                         or plain `p`, global by name)
//!   --counters            print event counters after --run
//!   --emit-ir             dump the (instrumented) CIL
//!   --wrappers            prepend the stdlib wrapper prelude
//!   --strict-link         fail on link-audit findings
//!   --original-ccured     disable physical subtyping and RTTI
//!   --no-rtti             disable RTTI only
//!   --no-opt              disable redundant-check elimination (ablation)
//!   --split-everything    force the SPLIT representation everywhere
//!   --split-at-boundaries seed SPLIT at external-call boundaries
//!   --fuel <n>            instruction budget for --run
//!   --pgo <file>          seed VM tiering from a saved `ccured profile
//!                         --json` report (hot functions compile optimized
//!                         from their first call)
//!   --no-tier             disable profile-guided tiering in the VM
//!   --top <n>             `profile`: rows in the hot-site table (default 10)
//!   --mutants <n>         `crash-test`: number of mutants (default 60)
//!   --seed <s>            `crash-test`/`synth`/`campaign`: batch seed (default 1)
//!   --json                `crash-test`/`batch`/`campaign`: machine-readable report
//!   --jobs <n>            `batch`: worker threads (default: one per core)
//!   --cache-dir <d>       `batch`: cache directory (default .ccured-cache)
//!   --no-cache            `batch`: disable the content-addressed cache
//!   --profile             `batch`: execute every cured unit and aggregate
//!                         the hottest check sites across the batch
//!   --profile <p>         `synth`/`campaign`: generation profile
//!                         (mixed|openssl|bind|openssh; campaign default: all)
//!   --units <n>           `synth`/`campaign`: units to generate
//!   --mutants-per-unit <k> `campaign`: seeded faults per unit (default 2)
//! ```
//!
//! `ccured explain` prints, for every WILD pointer (or the one named by
//! `--sym`), the shortest chain of value flows from that pointer back to
//! the cast or operation that poisoned it — the paper's "browser" workflow
//! for auditing why inference made a pointer WILD.
//!
//! `ccured crash-test` seeds memory-safety faults into the program with the
//! deterministic mutation engine (`ccured-faultinject`), cures each mutant,
//! runs it in the sandbox, and prints a per-class catch-rate matrix. Exit is
//! 5 when any mutant **escapes** (a ground-truth memory error survives the
//! cure — a soundness bug), 0 otherwise.
//!
//! `ccured profile` cures the file, runs it with per-site profiling
//! enabled, and prints a ranked hot-site table: for every check site the
//! dynamic hit/fail counts, the abstract cost attributed to it, a
//! blame-style source excerpt, and — when the optimizer kept it — why it
//! could not be elided. Rankings are deterministic and identical across
//! `--engine vm` and `--engine tree`; `--json` emits the machine-readable
//! form consumed by the `tables` bench binary.
//!
//! `ccured batch` cures every `.c` file under a directory (or listed in a
//! manifest file) on a work-stealing thread pool, serving unchanged units
//! from the content-addressed cache (`ccured-batch`). Cure flags
//! (`--wrappers`, `--no-opt`, `--original-ccured`, …) apply to every unit
//! and participate in the cache key. `--deadline-ms` bounds each unit's
//! cure wall-clock; a unit that blows its budget gets the terminal
//! `resource-exhausted` verdict. Exit is 7 when any unit exhausted its
//! budget, 1 when any other unit failed, 0 otherwise.
//!
//! `ccured synth` writes a deterministic, seedable corpus of generated C
//! units to a directory (`ccured-synth`); `ccured campaign` generates a
//! corpus, batch-cures it, runs every unit differentially on both engines,
//! and crash-tests every unit with seeded faults. Exit is 5 when any
//! mutant escapes the cure, 8 when the engines diverge (or a generated
//! unit fails to cure), 0 otherwise — so an overnight campaign is a
//! one-flag CI gate.
//!
//! `ccured serve` starts the long-lived cure daemon (`ccured-batch`'s
//! `serve` module) on a unix socket: a resident worker pool, the
//! content-addressed whole-unit cache, and a shared function-level cache
//! so a warm server re-cures only the functions an edit touched. `ccured
//! client <socket> <request...>` sends one request line and prints the
//! one-line JSON reply; its exit code is 0 for `ok`, 1 for `error`, 6 for
//! `busy`, and 4 when the daemon cannot be reached.
//!
//! The library half exists so the argument parser and driver can be unit
//! tested; `main.rs` is a thin wrapper.

use ccured::{CureError, Cured, Curer};
use ccured_rt::{Engine, ExecMode, Interp};
use std::fmt;

/// Execution mode selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Cured execution (default).
    #[default]
    Cured,
    /// Plain C semantics.
    Original,
    /// Purify-style baseline.
    Purify,
    /// Valgrind-style baseline.
    Valgrind,
    /// Jones–Kelly-style baseline.
    JonesKelly,
}

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// The C source file.
    pub file: String,
    /// `explain` subcommand: print blame paths for WILD pointers.
    pub explain: bool,
    /// `crash-test` subcommand: run the fault-injection harness.
    pub crash_test: bool,
    /// `batch` subcommand: cure a directory/manifest of units in parallel.
    pub batch: bool,
    /// `profile` subcommand: run with per-site check profiling and print
    /// the ranked hot-site table.
    pub profile: bool,
    /// `serve` subcommand: start the long-lived cure daemon.
    pub serve: bool,
    /// `client` subcommand: send one request line to a running daemon.
    pub client: bool,
    /// `synth` subcommand: write a generated corpus to a directory.
    pub synth: bool,
    /// `campaign` subcommand: generate + cure + differential + crash-test.
    pub campaign: bool,
    /// `--units`: synth/campaign corpus size.
    pub units: Option<usize>,
    /// `--mutants-per-unit`: campaign seeded faults per unit.
    pub mutants_per_unit: Option<usize>,
    /// `--profile <name>` (synth/campaign): generation profile.
    pub profile_name: Option<String>,
    /// `client`: the request line (remaining positional words, joined).
    pub request: Option<String>,
    /// `--workers`: serve worker threads (None: daemon default).
    pub workers: Option<usize>,
    /// `--queue-cap`: serve request-queue capacity before `busy` shedding.
    pub queue_cap: Option<usize>,
    /// `--deadline-ms`: per-unit cure wall-clock budget (`batch`/`serve`).
    pub deadline_ms: Option<u64>,
    /// `--fault-poison`: serve fault injection — a worker panics when a
    /// requested unit's source contains this substring (tests/CI only).
    pub fault_poison: Option<String>,
    /// `--top`: rows in the profile table (default 10).
    pub top: Option<usize>,
    /// `--jobs`: batch worker threads (None: one per core).
    pub jobs: Option<usize>,
    /// `--cache-dir`: batch cache directory.
    pub cache_dir: Option<String>,
    /// `--no-cache`: disable the batch cache.
    pub no_cache: bool,
    /// `--mutants`: crash-test batch size.
    pub mutants: Option<usize>,
    /// `--seed`: crash-test batch seed.
    pub seed: Option<u64>,
    /// `--json`: machine-readable crash-test report.
    pub json: bool,
    /// `--sym`: restrict `explain` to one symbol.
    pub sym: Option<String>,
    /// Execute after curing.
    pub run: bool,
    /// Execution mode.
    pub mode: Mode,
    /// Input file for the input builtins.
    pub input: Option<String>,
    /// Print the cure report.
    pub report: bool,
    /// Print the code-review surface (trusted and bad casts).
    pub review: bool,
    /// Print counters after a run.
    pub counters: bool,
    /// Dump the instrumented IR.
    pub emit_ir: bool,
    /// Prepend the stdlib wrappers.
    pub wrappers: bool,
    /// Fail on link-audit findings.
    pub strict_link: bool,
    /// Original-CCured configuration.
    pub original_ccured: bool,
    /// Disable RTTI only.
    pub no_rtti: bool,
    /// Disable redundant-check elimination.
    pub no_opt: bool,
    /// Disable only the loop optimizer (hoisting + widening), keeping the
    /// flow-sensitive eliminator on — the ablation between PR-5 and PR-6
    /// optimization levels.
    pub no_loop_opt: bool,
    /// Force SPLIT everywhere.
    pub split_everything: bool,
    /// Seed SPLIT at boundaries.
    pub split_at_boundaries: bool,
    /// Instruction budget.
    pub fuel: Option<u64>,
    /// Execution engine (`vm` is the default; `tree` is the reference
    /// tree-walking oracle).
    pub engine: Engine,
    /// `--pgo FILE`: seed the VM's tiering decisions from a saved
    /// `ccured profile --json` report, so functions and check sites that
    /// were hot in the recorded run compile straight to the optimized
    /// tier on their first call.
    pub pgo: Option<String>,
    /// `--no-tier`: disable profile-guided tiering in the bytecode VM
    /// (every function gets the single-tier fused compile).
    pub no_tier: bool,
    /// `--temporal`: emit lock-and-key temporal checks (use-after-free and
    /// double-free become ordinary check failures with blame, instead of
    /// being silently neutralized by the GC-backed `free`).
    pub temporal: bool,
    /// `--emit-pgo FILE` (profile subcommand): also write the machine-
    /// readable profile to FILE, ready to feed back via `--pgo`.
    pub emit_pgo: Option<String>,
}

/// A usage/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parses argv (without the program name).
///
/// # Errors
///
/// [`UsageError`] for unknown flags, missing values, or a missing file.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, UsageError> {
    let mut o = Options::default();
    let mut it = args.into_iter();
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .ok_or_else(|| UsageError(format!("{flag} requires a value")))
    };
    let mut first_positional = true;
    let mut profile_flag = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            // Subcommand form: `ccured explain <file.c> [--sym name]`.
            "explain" if first_positional => {
                first_positional = false;
                o.explain = true;
            }
            // `ccured crash-test <file.c> [--mutants N] [--seed S] [--json]`.
            "crash-test" if first_positional => {
                first_positional = false;
                o.crash_test = true;
            }
            // `ccured batch <dir|manifest> [--jobs N] [--cache-dir D] ...`.
            "batch" if first_positional => {
                first_positional = false;
                o.batch = true;
            }
            // `ccured profile <file.c> [--top N] [--json] [--engine vm|tree]`.
            "profile" if first_positional => {
                first_positional = false;
                o.profile = true;
            }
            // `ccured serve <socket> [--workers N] [--deadline-ms N] ...`.
            "serve" if first_positional => {
                first_positional = false;
                o.serve = true;
            }
            // `ccured client <socket> <request...>`.
            "client" if first_positional => {
                first_positional = false;
                o.client = true;
            }
            // `ccured synth <out-dir> [--profile P] [--units N] [--seed S]`.
            "synth" if first_positional => {
                first_positional = false;
                o.synth = true;
            }
            // `ccured campaign [out-dir] [--profile P] [--units N] ...`.
            "campaign" if first_positional => {
                first_positional = false;
                o.campaign = true;
            }
            // `--profile` is overloaded: for `synth`/`campaign` it names a
            // generation profile and consumes a value; elsewhere it is the
            // batch site-profiling flag. The subcommand word always comes
            // first positionally, so the meaning is settled by now.
            "--profile" if o.synth || o.campaign => {
                o.profile_name = Some(need(&mut it, "--profile")?);
            }
            // `--profile` (flag form): profile every unit of a batch.
            "--profile" => {
                profile_flag = true;
                o.profile = true;
            }
            "--units" => {
                let v = need(&mut it, "--units")?;
                o.units = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("--units: `{v}` is not a number")))?,
                );
            }
            "--mutants-per-unit" => {
                let v = need(&mut it, "--mutants-per-unit")?;
                o.mutants_per_unit = Some(v.parse().map_err(|_| {
                    UsageError(format!("--mutants-per-unit: `{v}` is not a number"))
                })?);
            }
            "--top" => {
                let v = need(&mut it, "--top")?;
                o.top = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("--top: `{v}` is not a number")))?,
                );
            }
            "--no-cache" => o.no_cache = true,
            "--cache-dir" => o.cache_dir = Some(need(&mut it, "--cache-dir")?),
            "--workers" => {
                let v = need(&mut it, "--workers")?;
                o.workers = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("--workers: `{v}` is not a number")))?,
                );
            }
            "--queue-cap" => {
                let v = need(&mut it, "--queue-cap")?;
                o.queue_cap = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("--queue-cap: `{v}` is not a number")))?,
                );
            }
            "--deadline-ms" => {
                let v = need(&mut it, "--deadline-ms")?;
                o.deadline_ms =
                    Some(v.parse().map_err(|_| {
                        UsageError(format!("--deadline-ms: `{v}` is not a number"))
                    })?);
            }
            "--fault-poison" => o.fault_poison = Some(need(&mut it, "--fault-poison")?),
            "--jobs" => {
                let v = need(&mut it, "--jobs")?;
                o.jobs = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("--jobs: `{v}` is not a number")))?,
                );
            }
            "--run" => o.run = true,
            "--report" => o.report = true,
            "--review" => o.review = true,
            "--counters" => o.counters = true,
            "--emit-ir" => o.emit_ir = true,
            "--wrappers" => o.wrappers = true,
            "--strict-link" => o.strict_link = true,
            "--original-ccured" => o.original_ccured = true,
            "--no-rtti" => o.no_rtti = true,
            "--no-opt" => o.no_opt = true,
            "--no-loop-opt" => o.no_loop_opt = true,
            "--sym" => o.sym = Some(need(&mut it, "--sym")?),
            "--json" => o.json = true,
            "--mutants" => {
                let v = need(&mut it, "--mutants")?;
                o.mutants = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("--mutants: `{v}` is not a number")))?,
                );
            }
            "--seed" => {
                let v = need(&mut it, "--seed")?;
                o.seed = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("--seed: `{v}` is not a number")))?,
                );
            }
            "--split-everything" => o.split_everything = true,
            "--split-at-boundaries" => o.split_at_boundaries = true,
            "--mode" => {
                let v = need(&mut it, "--mode")?;
                o.mode = match v.as_str() {
                    "cured" => Mode::Cured,
                    "original" => Mode::Original,
                    "purify" => Mode::Purify,
                    "valgrind" => Mode::Valgrind,
                    "joneskelly" => Mode::JonesKelly,
                    other => {
                        return Err(UsageError(format!(
                            "unknown mode `{other}` (expected cured|original|purify|valgrind|joneskelly)"
                        )))
                    }
                };
            }
            "--engine" => {
                let v = need(&mut it, "--engine")?;
                o.engine = v.parse().map_err(|e: String| UsageError(e))?;
            }
            "--input" => o.input = Some(need(&mut it, "--input")?),
            "--pgo" => o.pgo = Some(need(&mut it, "--pgo")?),
            "--no-tier" => o.no_tier = true,
            "--temporal" => o.temporal = true,
            "--emit-pgo" => o.emit_pgo = Some(need(&mut it, "--emit-pgo")?),
            "--fuel" => {
                let v = need(&mut it, "--fuel")?;
                o.fuel = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("--fuel: `{v}` is not a number")))?,
                );
            }
            "--help" | "-h" => return Err(UsageError(USAGE.to_string())),
            flag if flag.starts_with('-') => {
                return Err(UsageError(format!("unknown flag `{flag}`\n{USAGE}")))
            }
            file => {
                first_positional = false;
                if o.file.is_empty() {
                    o.file = file.to_string();
                } else if o.client {
                    // `client <socket> <request...>`: everything after the
                    // socket path is the request line.
                    match &mut o.request {
                        Some(r) => {
                            r.push(' ');
                            r.push_str(file);
                        }
                        None => o.request = Some(file.to_string()),
                    }
                } else {
                    return Err(UsageError(format!("unexpected extra argument `{file}`")));
                }
            }
        }
    }
    if o.file.is_empty() && !o.campaign {
        // `campaign` may omit the out-dir (a scratch directory is used);
        // everything else, including `synth`, needs its positional.
        return Err(UsageError(format!("no input file\n{USAGE}")));
    }
    if o.sym.is_some() && !o.explain {
        return Err(UsageError(
            "--sym only applies to the `explain` subcommand".into(),
        ));
    }
    if o.mutants.is_some() && !o.crash_test {
        return Err(UsageError(
            "--mutants only applies to the `crash-test` subcommand".into(),
        ));
    }
    if o.seed.is_some() && !(o.crash_test || o.synth || o.campaign) {
        return Err(UsageError(
            "--seed only applies to the `crash-test`, `synth` and `campaign` subcommands".into(),
        ));
    }
    if o.units.is_some() && !(o.synth || o.campaign) {
        return Err(UsageError(
            "--units only applies to the `synth` and `campaign` subcommands".into(),
        ));
    }
    if o.mutants_per_unit.is_some() && !o.campaign {
        return Err(UsageError(
            "--mutants-per-unit only applies to the `campaign` subcommand".into(),
        ));
    }
    if o.json && !(o.crash_test || o.batch || o.profile || o.campaign) {
        return Err(UsageError(
            "--json only applies to the `crash-test`, `batch`, `profile` and `campaign` subcommands".into(),
        ));
    }
    if o.top.is_some() && !o.profile {
        return Err(UsageError(
            "--top only applies to the `profile` subcommand".into(),
        ));
    }
    if profile_flag && !o.batch {
        return Err(UsageError(
            "--profile only applies to the `batch` subcommand (use `ccured profile <file.c>` for one unit)".into(),
        ));
    }
    if o.profile && o.mode != Mode::Cured {
        return Err(UsageError(
            "`profile` runs in cured mode (the checks being profiled only exist there)".into(),
        ));
    }
    if (o.jobs.is_some() || o.cache_dir.is_some() || o.no_cache)
        && !(o.batch || o.serve || o.campaign)
    {
        return Err(UsageError(
            "--jobs/--cache-dir/--no-cache only apply to the `batch`, `serve` and `campaign` subcommands"
                .into(),
        ));
    }
    if o.deadline_ms.is_some() && !(o.batch || o.serve) {
        return Err(UsageError(
            "--deadline-ms only applies to the `batch` and `serve` subcommands".into(),
        ));
    }
    if (o.workers.is_some() || o.queue_cap.is_some() || o.fault_poison.is_some()) && !o.serve {
        return Err(UsageError(
            "--workers/--queue-cap/--fault-poison only apply to the `serve` subcommand".into(),
        ));
    }
    if (o.pgo.is_some() || o.no_tier) && !(o.run || o.profile) {
        return Err(UsageError(
            "--pgo/--no-tier only apply when executing (--run or the `profile` subcommand)".into(),
        ));
    }
    if o.pgo.is_some() && o.mode != Mode::Cured {
        return Err(UsageError(
            "--pgo only applies to cured mode (the tier plan names check sites)".into(),
        ));
    }
    if o.temporal && o.mode != Mode::Cured {
        return Err(UsageError(
            "--temporal only applies to cured mode (the temporal checks are cure-inserted)".into(),
        ));
    }
    if o.emit_pgo.is_some() && !o.profile {
        return Err(UsageError(
            "--emit-pgo only applies to the `profile` subcommand".into(),
        ));
    }
    if o.client && o.request.is_none() {
        return Err(UsageError(
            "client needs a request, e.g. `ccured client /tmp/cc.sock status`".into(),
        ));
    }
    Ok(o)
}

/// The usage string.
pub const USAGE: &str =
    "usage: ccured <file.c> [--run] [--mode cured|original|purify|valgrind|joneskelly]
              [--input FILE] [--report] [--review] [--counters] [--emit-ir] [--wrappers]
              [--strict-link] [--original-ccured] [--no-rtti] [--no-opt]
              [--split-everything] [--split-at-boundaries] [--fuel N] [--engine vm|tree]
              [--pgo FILE] [--no-tier] [--temporal]
       ccured explain <file.c> [--sym NAME] [other options]
       ccured crash-test <file.c> [--mutants N] [--seed S] [--json] [--temporal]
       ccured batch <dir|manifest> [--jobs N] [--cache-dir D] [--no-cache] [--profile] [--json]
                   [--deadline-ms N]
       ccured profile <file.c> [--top N] [--json] [--engine vm|tree] [--pgo FILE] [--no-tier]
                   [--emit-pgo FILE] [--temporal]
       ccured serve <socket> [--workers N] [--cache-dir D] [--no-cache] [--deadline-ms N]
                   [--queue-cap N] [--fault-poison SUBSTR]
       ccured client <socket> <request...>   (cure|profile|explain <path> | status|reset|shutdown)
       ccured synth <out-dir> [--profile mixed|openssl|bind|openssh] [--units N] [--seed S]
       ccured campaign [out-dir] [--profile P] [--units N] [--seed S] [--mutants-per-unit K]
                   [--jobs N] [--cache-dir D] [--no-cache] [--json]";

/// What a driver invocation produced (for testing and for `main`).
#[derive(Debug)]
pub struct Outcome {
    /// Exit code to report.
    pub exit: i32,
    /// Everything that should go to stdout.
    pub stdout: String,
}

/// Runs the driver on the given source text.
///
/// # Errors
///
/// Cure errors are returned; run-time errors become part of the outcome
/// (non-zero exit with a message), matching what a compiler driver does.
pub fn drive(o: &Options, source: &str, input: &[u8]) -> Result<Outcome, CureError> {
    let mut out = String::new();

    if o.crash_test {
        let mut cfg =
            ccured_faultinject::CrashTest::new(o.mutants.unwrap_or(60), o.seed.unwrap_or(1))
                .with_engine(o.engine)
                .with_temporal(o.temporal);
        if let Some(f) = o.fuel {
            cfg.limits.fuel = f;
        }
        let rep = ccured_faultinject::harness::crash_test_source(&o.file, source, input, &cfg)?;
        if o.json {
            out.push_str(&rep.to_json());
            out.push('\n');
        } else {
            out.push_str(&rep.render());
        }
        // Any escape is a soundness bug: distinct exit code so CI trips.
        let exit = if rep.escaped().is_empty() { 0 } else { 5 };
        return Ok(Outcome { exit, stdout: out });
    }

    // Baseline/original modes skip the cure (they run the plain program).
    if o.run && o.mode != Mode::Cured {
        if o.report || o.emit_ir {
            out.push_str(
                "ccured: note: --report/--emit-ir apply to cured mode only and are ignored here
",
            );
        }
        let full = with_prelude(o, source);
        let tu = ccured_ast::parse_translation_unit(&full)?;
        let prog = ccured_cil::lower_translation_unit(&tu)?;
        let mode = match o.mode {
            Mode::Original => ExecMode::Original,
            Mode::Purify => ExecMode::Purify,
            Mode::Valgrind => ExecMode::Valgrind,
            Mode::JonesKelly => ExecMode::JonesKelly,
            Mode::Cured => unreachable!(),
        };
        return Ok(execute(&prog, mode, o, None, input, out));
    }

    let cured = curer(o).cure_source(source)?;
    // Static failure diagnostics are warnings: the check provably fails on
    // every execution that reaches it (the run still aborts safely).
    for sf in &cured.report.static_failures {
        let pos = if sf.span == ccured_ast::Span::DUMMY {
            String::new()
        } else {
            let full = with_prelude(o, source);
            let map = ccured_ast::SourceMap::new(&o.file, full);
            let lc = map.lookup(sf.span.lo);
            format!("{}:{lc}: ", o.file)
        };
        out.push_str(&format!(
            "{pos}warning: in `{}`: {} ({} check always fails)\n",
            sf.func, sf.message, sf.check
        ));
    }
    if o.report {
        render_report(&cured, &mut out);
    }
    if o.review {
        // Build the map over the parsed text but attribute positions to the
        // user's file, shifting out the wrapper prelude's lines.
        let full = with_prelude(o, source);
        let shift = prelude_lines(o);
        let map = ccured_ast::SourceMap::new(&o.file, full);
        let surface = cured.review_surface_shifted(&map, shift);
        if surface.is_empty() {
            out.push_str("review surface: empty (no trusted or bad casts)\n");
        } else {
            out.push_str(&format!(
                "review surface ({} casts to audit):\n",
                surface.len()
            ));
            for line in surface {
                out.push_str(&format!("  {line}\n"));
            }
        }
    }
    if o.explain || o.review {
        let full = with_prelude(o, source);
        let map = ccured_ast::SourceMap::new(&o.file, full);
        render_explanations(&cured, o, &map, &mut out);
        if o.explain && o.sym.is_none() {
            render_opt_actions(&cured, o, &map, &mut out);
        }
    }
    if o.emit_ir {
        out.push_str(&ccured_cil::pretty::dump_program(&cured.program));
    }
    if o.profile || o.run {
        let plan = load_tier_plan(o, &cured, &mut out)?;
        if o.profile {
            return Ok(run_profile(&cured, o, plan, source, input, out));
        }
        return Ok(execute(
            &cured.program,
            ExecMode::cured(&cured),
            o,
            plan,
            input,
            out,
        ));
    }
    Ok(Outcome {
        exit: 0,
        stdout: out,
    })
}

/// Runs the `batch` subcommand: cure every unit under `o.file` (a
/// directory of `.c` files or a manifest) on the parallel engine. Unlike
/// [`drive`], this reads sources itself — a batch has many inputs.
///
/// # Errors
///
/// [`CureError::Internal`] for infrastructure failures (unreadable input
/// path, cache directory creation); per-unit cure failures are verdicts in
/// the rendered report and exit code 1.
pub fn drive_batch(o: &Options) -> Result<Outcome, CureError> {
    let mut cfg = ccured_batch::BatchConfig::new(curer(o));
    if let Some(j) = o.jobs {
        cfg.jobs = j;
    }
    if let Some(d) = &o.cache_dir {
        cfg.cache_dir = d.into();
    }
    cfg.use_cache = !o.no_cache;
    cfg.profile = o.profile;
    if let Some(f) = o.fuel {
        cfg.limits.fuel = f;
    }
    if let Some(ms) = o.deadline_ms {
        cfg.limits = cfg.limits.with_deadline_ms(ms);
    }
    let report = ccured_batch::run_path(&cfg, std::path::Path::new(&o.file))
        .map_err(|e| CureError::Internal(format!("batch: {e}")))?;
    let stdout = if o.json {
        let mut j = report.to_json();
        j.push('\n');
        j
    } else {
        report.render()
    };
    // Deadline overruns get their own exit code so CI can distinguish "this
    // unit is broken" (1) from "this unit got slower than the budget" (7).
    let exhausted = report
        .units
        .iter()
        .any(|u| matches!(u.verdict, ccured_batch::Verdict::ResourceExhausted(_)));
    Ok(Outcome {
        exit: if exhausted {
            7
        } else if report.failed() == 0 {
            0
        } else {
            1
        },
        stdout,
    })
}

/// Runs the `serve` subcommand: starts the cure daemon on the socket named
/// by `o.file` and blocks until a `shutdown` request arrives.
///
/// # Errors
///
/// [`CureError::Internal`] when the socket cannot be bound or the cache
/// directory cannot be created.
#[cfg(unix)]
pub fn drive_serve(o: &Options) -> Result<Outcome, CureError> {
    let mut cfg = ccured_batch::ServeConfig::new(std::path::PathBuf::from(&o.file));
    cfg.curer = curer(o);
    if let Some(w) = o.workers {
        cfg.workers = w;
    }
    if let Some(c) = o.queue_cap {
        cfg.queue_cap = c;
    }
    if let Some(f) = o.fuel {
        cfg.limits.fuel = f;
    }
    if let Some(ms) = o.deadline_ms {
        cfg.limits = cfg.limits.with_deadline_ms(ms);
    }
    cfg.cache_dir = if o.no_cache {
        None
    } else {
        Some(std::path::PathBuf::from(
            o.cache_dir.as_deref().unwrap_or(".ccured-cache"),
        ))
    };
    cfg.fault_poison = o.fault_poison.clone();
    let mut server =
        ccured_batch::Server::start(cfg).map_err(|e| CureError::Internal(format!("serve: {e}")))?;
    // Announce readiness immediately (stderr, like a status line): the
    // Outcome's stdout would only appear after shutdown.
    eprintln!("ccured serve: listening on {}", o.file);
    server.wait();
    Ok(Outcome {
        exit: 0,
        stdout: String::new(),
    })
}

/// Runs the `client` subcommand: sends the request line to the daemon and
/// prints the one-line JSON reply. Exit codes: 0 `ok`, 1 `error`, 6
/// `busy`, 4 connection failure.
#[cfg(unix)]
pub fn drive_client(o: &Options) -> Outcome {
    let line = o.request.as_deref().unwrap_or("status");
    match ccured_batch::request(std::path::Path::new(&o.file), line) {
        Ok(reply) => {
            let exit = if reply.contains(r#""status":"ok""#) {
                0
            } else if reply.contains(r#""status":"busy""#) {
                6
            } else {
                1
            };
            Outcome {
                exit,
                stdout: format!("{reply}\n"),
            }
        }
        Err(e) => Outcome {
            exit: 4,
            stdout: format!("ccured client: cannot reach `{}`: {e}\n", o.file),
        },
    }
}

/// Runs the `synth` subcommand: writes a generated corpus of `.c` units
/// under `o.file` (the out-dir), one file per unit, reproducible from
/// `--seed`.
///
/// # Errors
///
/// [`CureError::Internal`] for an unknown profile name or filesystem
/// failures.
pub fn drive_synth(o: &Options) -> Result<Outcome, CureError> {
    let profile = match o.profile_name.as_deref() {
        Some(name) => ccured_synth::Profile::named(name).ok_or_else(|| {
            CureError::Internal(format!(
                "synth: unknown profile `{name}` (expected mixed|openssl|bind|openssh)"
            ))
        })?,
        None => ccured_synth::profiles::mixed(),
    };
    let units = o.units.unwrap_or(50);
    let seed = o.seed.unwrap_or(1);
    let dir = std::path::Path::new(&o.file);
    std::fs::create_dir_all(dir)
        .map_err(|e| CureError::Internal(format!("synth: cannot create `{}`: {e}", o.file)))?;
    let workloads = ccured_synth::generate(&profile, units, seed);
    for w in &workloads {
        let path = dir.join(format!("{}.c", w.name));
        std::fs::write(&path, &w.source).map_err(|e| {
            CureError::Internal(format!("synth: cannot write `{}`: {e}", path.display()))
        })?;
    }
    Ok(Outcome {
        exit: 0,
        stdout: format!(
            "synth: wrote {} units (profile {}, seed {seed}) to {}\n",
            workloads.len(),
            profile.name,
            o.file
        ),
    })
}

/// Runs the `campaign` subcommand: generates a corpus, batch-cures it,
/// differentially runs every unit on both engines, and crash-tests every
/// unit with seeded faults. Exit codes: 5 when any mutant escaped the cure
/// (soundness bug), 8 when the engines diverged or a generated unit failed
/// to cure, 0 when the campaign is sound.
///
/// # Errors
///
/// [`CureError::Internal`] for an unknown profile name or infrastructure
/// failures (the out-dir cannot be created, units cannot be written).
pub fn drive_campaign(o: &Options) -> Result<Outcome, CureError> {
    let out_dir = if o.file.is_empty() {
        std::env::temp_dir().join(format!("ccured-campaign-{}", std::process::id()))
    } else {
        std::path::PathBuf::from(&o.file)
    };
    let mut cfg = ccured_synth::CampaignConfig::new(out_dir);
    if let Some(name) = o.profile_name.as_deref() {
        let profile = ccured_synth::Profile::named(name).ok_or_else(|| {
            CureError::Internal(format!(
                "campaign: unknown profile `{name}` (expected mixed|openssl|bind|openssh)"
            ))
        })?;
        cfg.profiles = vec![profile];
    }
    if let Some(u) = o.units {
        cfg.units = u;
    }
    if let Some(k) = o.mutants_per_unit {
        cfg.mutants_per_unit = k;
    }
    if let Some(s) = o.seed {
        cfg.seed = s;
    }
    if let Some(j) = o.jobs {
        cfg.jobs = j;
    }
    if let Some(d) = &o.cache_dir {
        cfg.cache_dir = d.into();
    }
    cfg.use_cache = !o.no_cache;
    if let Some(f) = o.fuel {
        cfg.limits.fuel = f;
    }
    let rep = ccured_synth::run_campaign(&cfg)
        .map_err(|e| CureError::Internal(format!("campaign: {e}")))?;
    let stdout = if o.json {
        let mut j = rep.to_json();
        j.push('\n');
        j
    } else {
        rep.render()
    };
    // Escapes are soundness bugs (same code as crash-test); divergences and
    // cure failures get their own code so CI can tell the failure apart.
    let exit = if !rep.escapes.is_empty() {
        5
    } else if !rep.divergences.is_empty() || !rep.cure_failures.is_empty() {
        8
    } else {
        0
    };
    Ok(Outcome { exit, stdout })
}

/// The exact text the pipeline parses: the wrapper prelude (when enabled)
/// followed by the user's source. Diagnostics and review positions are
/// relative to this text; [`prelude_lines`] lets callers re-map them.
pub fn with_prelude(o: &Options, source: &str) -> String {
    if o.wrappers {
        format!("{}\n{source}", ccured::wrappers::stdlib_wrapper_source())
    } else {
        source.to_string()
    }
}

/// Number of lines the prelude contributes before the user's first line.
pub fn prelude_lines(o: &Options) -> u32 {
    if o.wrappers {
        ccured::wrappers::stdlib_wrapper_source().lines().count() as u32 + 1
    } else {
        0
    }
}

fn curer(o: &Options) -> Curer {
    let mut c = if o.original_ccured {
        Curer::original_ccured()
    } else {
        Curer::new()
    };
    if o.no_rtti {
        c.rtti(false);
    }
    c.optimize(!o.no_opt);
    c.loop_optimize(!o.no_loop_opt);
    c.split_everything(o.split_everything);
    c.split_at_boundaries(o.split_at_boundaries);
    c.strict_link(o.strict_link);
    c.engine(o.engine);
    if o.wrappers {
        c.with_stdlib_wrappers();
    }
    c.temporal(o.temporal);
    c
}

/// Prints blame paths: every WILD pointer in `explain` mode (and appended
/// to `--review` output), or just the `--sym` symbol when given.
fn render_explanations(cured: &Cured, o: &Options, map: &ccured_ast::SourceMap, out: &mut String) {
    use ccured_analysis::{blame_path, qual_names, render_blame};
    use ccured_cil::types::QualId;
    use ccured_infer::PtrKind;
    let names = qual_names(&cured.program);
    let quals = (0..cured.program.types.qual_count()).map(QualId);
    let mut explained = 0usize;
    match &o.sym {
        Some(sym) => {
            let suffix = format!("::{sym}");
            let matching: Vec<QualId> = quals
                .filter(|q| {
                    names
                        .get(q)
                        .is_some_and(|n| n == sym || n.ends_with(&suffix))
                })
                .collect();
            if matching.is_empty() {
                out.push_str(&format!("explain: no pointer named `{sym}`\n"));
                return;
            }
            for q in matching {
                let kind = cured.solution.kind(q);
                match kind {
                    PtrKind::Safe => {
                        out.push_str(&format!("`{}` is Safe — nothing to explain\n", names[&q]))
                    }
                    PtrKind::Seq | PtrKind::Wild => match blame_path(&cured.provenance, q, kind) {
                        Some(b) => out.push_str(&render_blame(&names, Some(map), &b)),
                        None => out.push_str(&format!(
                            "`{}` is {kind:?} (no recorded provenance)\n",
                            names[&q]
                        )),
                    },
                }
            }
        }
        None => {
            for q in quals {
                if cured.solution.kind(q) != PtrKind::Wild || !names.contains_key(&q) {
                    continue;
                }
                explained += 1;
                match blame_path(&cured.provenance, q, PtrKind::Wild) {
                    Some(b) => out.push_str(&render_blame(&names, Some(map), &b)),
                    None => out.push_str(&format!(
                        "`{}` is Wild (no recorded provenance)\n",
                        names[&q]
                    )),
                }
            }
            if explained == 0 && o.explain {
                out.push_str("explain: no WILD pointers — nothing to explain\n");
            }
        }
    }
}

/// Lists the check sites the loop optimizer rewrote (hoisted/widened),
/// with their final keep-reasons — the `ccured explain` view of the
/// second-generation optimizer's work.
fn render_opt_actions(cured: &Cured, o: &Options, map: &ccured_ast::SourceMap, out: &mut String) {
    let shift = prelude_lines(o);
    let acted: Vec<&ccured::instrument::CheckSite> = cured
        .sites
        .iter()
        .filter(|s| s.opt_action.is_some())
        .collect();
    if acted.is_empty() {
        return;
    }
    out.push_str(&format!(
        "\ncheck optimization ({} sites rewritten by the loop optimizer):\n",
        acted.len()
    ));
    for s in acted {
        let (loc, _) = site_location(o, map, shift, s);
        // The keep-reason of a rewritten site is "<action>: <how>"; the
        // action is already printed, so show only the how.
        let reason = s.keep_reason.as_deref().unwrap_or("");
        let how = reason.split_once(": ").map_or(reason, |(_, r)| r);
        out.push_str(&format!(
            "  {loc}: {} check {} — {how}\n",
            s.check,
            s.opt_action.unwrap_or("?"),
        ));
    }
}

/// Loads `--pgo FILE` and distills it into a [`ccured_rt::TierPlan`]:
/// functions and check sites that were hot in the saved run compile
/// straight to the VM's optimized tier on their first call.
///
/// A profile that parses but no longer matches this unit's site table
/// (the source was edited since it was recorded) is *stale*: a warning is
/// appended to `out` and the run falls back to online heat detection, as
/// if `--pgo` had not been given.
///
/// # Errors
///
/// [`CureError::Internal`] when the file is unreadable or is not a
/// profile this build can read (missing or mismatched `schema` tag).
fn load_tier_plan(
    o: &Options,
    cured: &Cured,
    out: &mut String,
) -> Result<Option<ccured_rt::TierPlan>, CureError> {
    let Some(path) = &o.pgo else { return Ok(None) };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CureError::Internal(format!("--pgo: cannot read `{path}`: {e}")))?;
    let prof = ccured_rt::Profile::from_pgo_json(&text)
        .map_err(|e| CureError::Internal(format!("--pgo `{path}`: {e}")))?;
    if let Err(why) = ccured_rt::profile::validate_pgo_against_sites(&text, &cured.sites) {
        out.push_str(&format!(
            "ccured: warning: --pgo `{path}` is stale and was ignored ({why}); \
             falling back to online heat detection\n"
        ));
        return Ok(None);
    }
    Ok(Some(ccured_rt::tier_plan(&cured.sites, &prof)))
}

/// Applies the tiering flags to a fresh interpreter. Observation-only
/// with respect to program semantics: output, exit code, counters and
/// verdicts are byte-identical whatever the tier schedule.
fn apply_tiering(interp: &mut Interp<'_>, o: &Options, plan: Option<ccured_rt::TierPlan>) {
    if o.no_tier {
        interp.set_tiering(ccured_rt::TierMode::Off);
    }
    if let Some(p) = plan {
        interp.set_tier_plan(p);
    }
}

fn execute(
    prog: &ccured_cil::Program,
    mode: ExecMode<'_>,
    o: &Options,
    plan: Option<ccured_rt::TierPlan>,
    input: &[u8],
    mut out: String,
) -> Outcome {
    let mut interp = Interp::new(prog, mode);
    interp.set_engine(o.engine);
    interp.set_temporal(o.temporal);
    apply_tiering(&mut interp, o, plan);
    interp.set_input(input.to_vec());
    if let Some(f) = o.fuel {
        interp.set_fuel(f);
    }
    let result = interp.run();
    out.push_str(&String::from_utf8_lossy(interp.output()));
    let exit = match result {
        Ok(code) => code as i32,
        Err(e) => {
            out.push_str(&format!("ccured: runtime error: {e}\n"));
            if e.is_check_failure() {
                3
            } else {
                4
            }
        }
    };
    if o.counters {
        let c = &interp.counters;
        out.push_str(&format!(
            "-- counters: instrs={} loads={} stores={} checks={} (null={} seq={} wild={} rtti={} index={} temporal={}) meta_ops={}\n",
            c.instrs,
            c.loads,
            c.stores,
            c.total_checks(),
            c.null_checks,
            c.seq_bounds_checks,
            c.wild_bounds_checks + c.wild_tag_checks,
            c.rtti_checks,
            c.index_checks,
            c.temporal_checks,
            c.meta_ops,
        ));
    }
    Outcome { exit, stdout: out }
}

/// Runs `cured` with per-site profiling enabled and appends the ranked
/// hot-site report (or its `--json` form) to the program's own output.
/// Profiling is observation-only, so exit code and program output are
/// identical to a plain `--run`.
fn run_profile(
    cured: &Cured,
    o: &Options,
    plan: Option<ccured_rt::TierPlan>,
    source: &str,
    input: &[u8],
    mut out: String,
) -> Outcome {
    let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
    interp.set_engine(o.engine);
    interp.set_temporal(o.temporal);
    apply_tiering(&mut interp, o, plan);
    interp.set_input(input.to_vec());
    if let Some(f) = o.fuel {
        interp.set_fuel(f);
    }
    interp.enable_profile(cured.sites.len());
    let result = interp.run();
    out.push_str(&String::from_utf8_lossy(interp.output()));
    let exit = match result {
        Ok(code) => code as i32,
        Err(e) => {
            out.push_str(&format!("ccured: runtime error: {e}\n"));
            if e.is_check_failure() {
                3
            } else {
                4
            }
        }
    };
    let profile = interp.profile().cloned().unwrap_or_default();
    let rows =
        ccured_rt::profile::rank_sites(&cured.sites, &profile, &ccured_rt::CostModel::default());
    if o.json {
        out.push_str(&profile_json(o, &rows, &profile));
    } else {
        render_profile(o, source, &rows, &profile, &mut out);
    }
    if let Some(path) = &o.emit_pgo {
        // The emitted file is the full `--json` export (`ccured-profile/v1`):
        // all rows, so `--pgo` round-trips losslessly.
        let all = Options {
            top: None,
            ..o.clone()
        };
        match std::fs::write(path, profile_json(&all, &rows, &profile)) {
            Ok(()) => out.push_str(&format!(
                "profile written to `{path}` (feed back with --pgo)\n"
            )),
            Err(e) => {
                out.push_str(&format!("ccured: error: --emit-pgo `{path}`: {e}\n"));
                return Outcome {
                    exit: 4,
                    stdout: out,
                };
            }
        }
    }
    Outcome { exit, stdout: out }
}

/// `file:line:col in func` for a profile row, shifted out of the wrapper
/// prelude like the review surface.
fn site_location(
    o: &Options,
    map: &ccured_ast::SourceMap,
    shift: u32,
    site: &ccured::instrument::CheckSite,
) -> (String, u32) {
    if site.span == ccured_ast::Span::DUMMY {
        return (format!("<{}>", site.func), 0);
    }
    let pos = map.lookup(site.span.lo);
    if pos.line > shift {
        (
            format!(
                "{}:{}:{} in {}",
                o.file,
                pos.line - shift,
                pos.col,
                site.func
            ),
            pos.line,
        )
    } else {
        (format!("<wrappers> in {}", site.func), pos.line)
    }
}

fn render_profile(
    o: &Options,
    source: &str,
    rows: &[ccured_rt::SiteReport],
    profile: &ccured_rt::Profile,
    out: &mut String,
) {
    let full = with_prelude(o, source);
    let shift = prelude_lines(o);
    let map = ccured_ast::SourceMap::new(&o.file, full.clone());
    let lines: Vec<&str> = full.lines().collect();
    let top = o.top.unwrap_or(10);
    out.push_str(&format!(
        "check-site profile (engine={}): {} sites, {} dynamic checks\n",
        o.engine.name(),
        rows.len(),
        profile.total_hits()
    ));
    out.push_str("rank       cost       hits  fails  check            ptr   site\n");
    for (rank, r) in rows.iter().take(top).enumerate() {
        let (loc, line) = site_location(o, &map, shift, &r.site);
        out.push_str(&format!(
            "{:>4} {:>10.1} {:>10} {:>6}  {:<16} {:<5} {}\n",
            rank + 1,
            r.cost,
            r.hits,
            r.fails,
            r.site.check,
            r.site.ptr_kind,
            loc
        ));
        // Blame-style excerpt of the offending source line.
        if line > 0 {
            if let Some(text) = lines.get(line as usize - 1) {
                out.push_str(&format!("     | {}\n", text.trim_end()));
            }
        }
        if r.site.elided > 0 {
            out.push_str(&format!(
                "     = optimizer elided {} of {} static checks here\n",
                r.site.elided, r.site.static_count
            ));
        }
        if let Some(a) = r.site.opt_action {
            out.push_str(&format!("     = loop optimizer: {a}\n"));
        }
    }
    // The eliminator's side of the story: the hot sites it had to keep.
    let missed: Vec<&ccured_rt::SiteReport> = rows
        .iter()
        .filter(|r| r.hits > 0 && r.site.keep_reason.is_some())
        .take(top)
        .collect();
    if !missed.is_empty() {
        out.push_str("\nhot sites the optimizer could not elide, and why:\n");
        for r in missed {
            let (loc, _) = site_location(o, &map, shift, &r.site);
            out.push_str(&format!(
                "  {} ({}, {} hits): {}\n",
                loc,
                r.site.check,
                r.hits,
                r.site.keep_reason.as_deref().unwrap_or("")
            ));
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Machine-readable profile export (consumed by the `tables` bench binary).
fn profile_json(
    o: &Options,
    rows: &[ccured_rt::SiteReport],
    profile: &ccured_rt::Profile,
) -> String {
    let top = o.top.unwrap_or(usize::MAX);
    let mut s = format!(
        "{{\"schema\":\"{}\",\"file\":\"{}\",\"engine\":\"{}\",\"sites\":{},\"total_hits\":{},\"rows\":[",
        ccured_rt::PGO_SCHEMA,
        json_escape(&o.file),
        o.engine.name(),
        rows.len(),
        profile.total_hits()
    );
    for (rank, r) in rows.iter().take(top).enumerate() {
        if rank > 0 {
            s.push(',');
        }
        let reason = match &r.site.keep_reason {
            Some(why) => format!("\"{}\"", json_escape(why)),
            None => "null".into(),
        };
        let action = match r.site.opt_action {
            Some(a) => format!("\"{a}\""),
            None => "null".into(),
        };
        let site_id = match r.site.id.index() {
            Some(i) => i.to_string(),
            None => "null".into(),
        };
        s.push_str(&format!(
            "{{\"rank\":{},\"site\":{},\"func\":\"{}\",\"span_lo\":{},\"check\":\"{}\",\"ptr_kind\":\"{}\",\
             \"static_count\":{},\"elided\":{},\"hits\":{},\"fails\":{},\"walk_steps\":{},\
             \"cost\":{:.1},\"keep_reason\":{},\"opt_action\":{}}}",
            rank + 1,
            site_id,
            json_escape(&r.site.func),
            r.site.span.lo,
            r.site.check,
            r.site.ptr_kind,
            r.site.static_count,
            r.site.elided,
            r.hits,
            r.fails,
            r.walk_steps,
            r.cost,
            reason,
            action
        ));
    }
    s.push_str("]}\n");
    s
}

fn render_report(cured: &Cured, out: &mut String) {
    let r = &cured.report;
    let (sf, sq, w, rt) = r.kind_counts.percentages();
    out.push_str(&format!(
        "pointer kinds: {sf}% SAFE, {sq}% SEQ, {w}% WILD, {rt}% RTTI ({} declared pointers)\n",
        r.kind_counts.total()
    ));
    let c = &r.census;
    out.push_str(&format!(
        "casts: {} pointer casts ({} identical, {} upcast, {} downcast, {} bad, {} trusted, {} alloc)\n",
        c.ptr_casts(),
        c.identical,
        c.upcast,
        c.downcast,
        c.bad,
        c.trusted,
        c.alloc
    ));
    let k = &r.checks_inserted;
    out.push_str(&format!(
        "checks inserted: {} (null={} seq={} seq2safe={} wild={} tag={} rtti={} escape={} index={} temporal={})\n",
        k.total(),
        k.null,
        k.seq_bounds,
        k.seq_to_safe,
        k.wild_bounds,
        k.wild_tag,
        k.rtti,
        k.no_stack_escape,
        k.index_bound,
        k.temporal
    ));
    let e = &r.checks_elided;
    out.push_str(&format!(
        "checks elided: {} (null={} seq={} seq2safe={} wild={} tag={} rtti={} index={} temporal={})\n",
        e.total(),
        e.null,
        e.seq_bounds,
        e.seq_to_safe,
        e.wild_bounds,
        e.wild_tag,
        e.rtti,
        e.index_bound,
        e.temporal
    ));
    if r.checks_hoisted + r.checks_widened > 0 {
        out.push_str(&format!(
            "loop optimizer: {} checks hoisted (run once per loop entry), {} widened (whole-trip range probe)\n",
            r.checks_hoisted, r.checks_widened
        ));
    }
    if !r.wrappers_applied.is_empty() {
        out.push_str(&format!(
            "wrappers applied: {}\n",
            r.wrappers_applied
                .iter()
                .map(|(w, x)| format!("{x}->{w}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    for v in &r.annotation_violations {
        out.push_str(&format!(
            "warning: annotation violated: qualifier q{} asserted {:?} but inferred {}\n",
            v.qual.0, v.annotated, v.inferred
        ));
    }
    for i in &r.link_issues {
        out.push_str(&format!(
            "warning: link: {} -> {}: {}\n",
            i.caller, i.external, i.detail
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Result<Options, UsageError> {
        parse_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_typical_invocation() {
        let o = args("prog.c --run --report --mode cured --fuel 1000").unwrap();
        assert_eq!(o.file, "prog.c");
        assert!(o.run && o.report);
        assert_eq!(o.mode, Mode::Cured);
        assert_eq!(o.fuel, Some(1000));
    }

    #[test]
    fn parses_engine_selection() {
        // The bytecode VM is the default; `tree` selects the reference
        // tree-walking engine.
        assert_eq!(args("prog.c --run").unwrap().engine, Engine::Vm);
        assert_eq!(
            args("prog.c --run --engine tree").unwrap().engine,
            Engine::Tree
        );
        assert_eq!(args("prog.c --run --engine vm").unwrap().engine, Engine::Vm);
        let e = args("prog.c --run --engine jit").unwrap_err();
        assert!(
            e.0.contains("unknown engine `jit`"),
            "unexpected error: {}",
            e.0
        );
    }

    #[test]
    fn rejects_unknown_flag_and_mode() {
        assert!(args("prog.c --frobnicate").is_err());
        assert!(args("prog.c --mode turbo").is_err());
        assert!(args("--run").is_err(), "missing file");
        assert!(args("a.c b.c").is_err(), "two files");
        assert!(args("prog.c --fuel abc").is_err());
        assert!(args("prog.c --mode").is_err(), "missing value");
    }

    #[test]
    fn parses_explain_subcommand() {
        let o = args("explain prog.c --sym p").unwrap();
        assert!(o.explain);
        assert_eq!(o.sym.as_deref(), Some("p"));
        assert_eq!(o.file, "prog.c");
        assert!(args("prog.c --sym p").is_err(), "--sym requires explain");
        assert!(args("explain").is_err(), "explain still needs a file");
        let plain = args("prog.c --no-opt").unwrap();
        assert!(plain.no_opt && !plain.explain);
    }

    #[test]
    fn parses_crash_test_subcommand() {
        let o = args("crash-test prog.c --mutants 30 --seed 9 --json").unwrap();
        assert!(o.crash_test && o.json);
        assert_eq!(o.mutants, Some(30));
        assert_eq!(o.seed, Some(9));
        assert_eq!(o.file, "prog.c");
        assert!(args("prog.c --mutants 5").is_err(), "needs crash-test");
        assert!(args("prog.c --json").is_err(), "needs crash-test");
        assert!(args("crash-test prog.c --mutants x").is_err());
        assert!(args("crash-test").is_err(), "still needs a file");
    }

    #[test]
    fn parses_profile_subcommand() {
        let o = args("profile prog.c --top 5 --json --engine tree").unwrap();
        assert!(o.profile && o.json);
        assert_eq!(o.top, Some(5));
        assert_eq!(o.engine, Engine::Tree);
        assert_eq!(o.file, "prog.c");
        assert!(args("prog.c --top 5").is_err(), "--top needs profile");
        assert!(args("profile").is_err(), "profile still needs a file");
        assert!(args("profile prog.c --top x").is_err());
        assert!(
            args("profile prog.c --mode original").is_err(),
            "profile is cured-mode only"
        );
    }

    #[test]
    fn drive_profile_ranks_hot_sites_identically_on_both_engines() {
        let src = "int main(void) { int a[8]; int i; int s; s = 0;\n\
                   for (i = 0; i < 8; i++) a[i] = i;\n\
                   for (i = 0; i < 8; i++) s = s + a[i];\n\
                   return s; }";
        let vm = drive(&args("profile t.c --engine vm").unwrap(), src, b"").unwrap();
        let tree = drive(&args("profile t.c --engine tree").unwrap(), src, b"").unwrap();
        assert_eq!(vm.exit, 28);
        assert_eq!(tree.exit, 28);
        assert!(vm.stdout.contains("check-site profile"), "{}", vm.stdout);
        assert!(
            vm.stdout.contains("t.c:"),
            "source positions: {}",
            vm.stdout
        );
        // Identical rankings across engines: only the engine name differs.
        assert_eq!(
            vm.stdout.replace("engine=vm", "engine=?"),
            tree.stdout.replace("engine=tree", "engine=?")
        );
    }

    #[test]
    fn drive_profile_json_is_machine_readable() {
        let src = "int main(void) { int a[4]; int i;\n\
                   for (i = 0; i < 4; i++) a[i] = i;\n\
                   return a[3]; }";
        let r = drive(&args("profile t.c --json --top 3").unwrap(), src, b"").unwrap();
        assert_eq!(r.exit, 3);
        let json = r.stdout.lines().last().unwrap();
        assert!(json.starts_with('{'), "{}", r.stdout);
        assert!(json.contains("\"engine\":\"vm\""), "{json}");
        assert!(json.contains("\"rows\":["), "{json}");
        assert!(json.contains("\"hits\":"), "{json}");
        assert!(json.contains("\"keep_reason\":"), "{json}");
    }

    #[test]
    fn drive_profile_reports_unelidable_hot_sites() {
        // p[i] through a SEQ pointer inside a loop: the bounds check stays
        // (the pointer moves), so the report must explain why.
        let src = "int sum(int *p, int n) { int s; int i; s = 0;\n\
                   for (i = 0; i < n; i++) s = s + p[i];\n\
                   return s; }\n\
                   int main(void) { int a[6]; int i;\n\
                   for (i = 0; i < 6; i++) a[i] = i;\n\
                   return sum(a, 6); }";
        let r = drive(&args("profile t.c").unwrap(), src, b"").unwrap();
        assert_eq!(r.exit, 15);
        assert!(
            r.stdout.contains("could not elide"),
            "eliminator section present: {}",
            r.stdout
        );
    }

    #[test]
    fn parses_batch_subcommand() {
        let o = args("batch examples/c --jobs 4 --cache-dir /tmp/cc --no-cache --json").unwrap();
        assert!(o.batch && o.json && o.no_cache);
        assert_eq!(o.jobs, Some(4));
        assert_eq!(o.cache_dir.as_deref(), Some("/tmp/cc"));
        assert_eq!(o.file, "examples/c");
        assert!(args("prog.c --jobs 2").is_err(), "--jobs needs batch");
        assert!(args("prog.c --no-cache").is_err(), "--no-cache needs batch");
        assert!(args("batch").is_err(), "batch still needs a path");
        assert!(args("batch dir --jobs x").is_err());
        assert!(args("prog.c --json").is_err(), "--json needs a subcommand");
        assert!(args("batch dir --profile").unwrap().profile);
        assert!(args("prog.c --profile").is_err(), "--profile needs batch");
    }

    #[test]
    fn drive_batch_cures_directory_with_cache() {
        let dir = std::env::temp_dir().join(format!("ccured-cli-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.c"), "int main(void) { return 0; }").unwrap();
        std::fs::write(
            dir.join("b.c"),
            "int f(int *p) { return *p; }\nint main(void) { int x; x = 2; return f(&x); }",
        )
        .unwrap();
        let cache = dir.join("cache");
        let argv = format!(
            "batch {} --jobs 2 --cache-dir {}",
            dir.display(),
            cache.display()
        );
        let o = args(&argv).unwrap();
        let cold = drive_batch(&o).unwrap();
        assert_eq!(cold.exit, 0, "{}", cold.stdout);
        assert!(cold.stdout.contains("2 units"), "{}", cold.stdout);
        let jo = args(&format!("{argv} --json")).unwrap();
        let warm = drive_batch(&jo).unwrap();
        assert_eq!(warm.exit, 0);
        assert!(
            warm.stdout.contains("\"hit_rate\":1.000000"),
            "{}",
            warm.stdout
        );
        assert!(warm.stdout.contains("\"failed\":0"), "{}", warm.stdout);
        // Profiled batch: cure still served from cache, hot sites appended.
        let po = args(&format!("{argv} --profile")).unwrap();
        let prof = drive_batch(&po).unwrap();
        assert_eq!(prof.exit, 0, "{}", prof.stdout);
        assert!(
            prof.stdout.contains("hottest check sites across the batch"),
            "{}",
            prof.stdout
        );
        let pj = drive_batch(&args(&format!("{argv} --profile --json")).unwrap()).unwrap();
        assert!(pj.stdout.contains("\"hot_sites\":[{"), "{}", pj.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_serve_and_client_subcommands() {
        let o = args(
            "serve /tmp/cc.sock --workers 3 --queue-cap 64 --deadline-ms 500 --fault-poison BOOM",
        )
        .unwrap();
        assert!(o.serve);
        assert_eq!(o.file, "/tmp/cc.sock");
        assert_eq!(o.workers, Some(3));
        assert_eq!(o.queue_cap, Some(64));
        assert_eq!(o.deadline_ms, Some(500));
        assert_eq!(o.fault_poison.as_deref(), Some("BOOM"));
        let c = args("client /tmp/cc.sock cure /src/a.c").unwrap();
        assert!(c.client);
        assert_eq!(c.file, "/tmp/cc.sock");
        assert_eq!(c.request.as_deref(), Some("cure /src/a.c"));
        assert!(
            args("client /tmp/cc.sock").is_err(),
            "client needs a request"
        );
        assert!(args("serve").is_err(), "serve needs a socket");
        assert!(args("prog.c --workers 2").is_err(), "--workers needs serve");
        assert!(
            args("prog.c --deadline-ms 5").is_err(),
            "--deadline-ms needs batch/serve"
        );
        assert!(args("batch dir --deadline-ms 5").unwrap().deadline_ms == Some(5));
        assert!(args("serve /s.sock --workers x").is_err());
    }

    #[test]
    fn parses_synth_and_campaign_subcommands() {
        let s = args("synth /tmp/out --profile openssl --units 12 --seed 9").unwrap();
        assert!(s.synth);
        assert_eq!(s.file, "/tmp/out");
        assert_eq!(s.profile_name.as_deref(), Some("openssl"));
        assert_eq!(s.units, Some(12));
        assert_eq!(s.seed, Some(9));
        assert!(args("synth").is_err(), "synth needs an out-dir");
        let c = args("campaign --units 8 --mutants-per-unit 3 --seed 5 --jobs 2 --json").unwrap();
        assert!(c.campaign && c.json);
        assert!(c.file.is_empty(), "campaign out-dir is optional");
        assert_eq!(c.units, Some(8));
        assert_eq!(c.mutants_per_unit, Some(3));
        let cd = args("campaign work --profile bind --no-cache").unwrap();
        assert_eq!(cd.file, "work");
        assert_eq!(cd.profile_name.as_deref(), Some("bind"));
        assert!(cd.no_cache);
        assert!(
            args("prog.c --units 4").is_err(),
            "--units needs synth/campaign"
        );
        assert!(
            args("prog.c --seed 4").is_err(),
            "--seed needs a subcommand"
        );
        assert!(
            args("synth out --mutants-per-unit 2").is_err(),
            "--mutants-per-unit needs campaign"
        );
        // `--profile` keeps its flag meaning outside synth/campaign, and
        // requires a value inside them.
        assert!(args("batch dir --profile").unwrap().profile);
        assert!(
            args("synth out --profile").is_err(),
            "synth --profile needs a value"
        );
    }

    #[test]
    fn drive_synth_writes_a_deterministic_corpus() {
        let base = std::env::temp_dir().join(format!("ccured-cli-synth-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (a, b) = (base.join("a"), base.join("b"));
        for dir in [&a, &b] {
            let o = args(&format!("synth {} --units 3 --seed 7", dir.display())).unwrap();
            let r = drive_synth(&o).unwrap();
            assert_eq!(r.exit, 0);
            assert!(r.stdout.contains("wrote 3 units"), "{}", r.stdout);
        }
        let mut names: Vec<_> = std::fs::read_dir(&a)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        names.sort();
        assert_eq!(names.len(), 3);
        for n in &names {
            let x = std::fs::read(a.join(n)).unwrap();
            let y = std::fs::read(b.join(n)).unwrap();
            assert_eq!(x, y, "same seed, same bytes: {n:?}");
        }
        assert!(
            drive_synth(&args("synth /tmp/x --profile nope").unwrap()).is_err(),
            "unknown profile rejected"
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn drive_campaign_small_run_is_sound() {
        let dir = std::env::temp_dir().join(format!("ccured-cli-camp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let o = args(&format!(
            "campaign {} --units 4 --mutants-per-unit 1 --seed 11",
            dir.display()
        ))
        .unwrap();
        let r = drive_campaign(&o).unwrap();
        assert_eq!(r.exit, 0, "{}", r.stdout);
        assert!(r.stdout.contains("SOUND"), "{}", r.stdout);
        let j = drive_campaign(
            &args(&format!(
                "campaign {} --units 4 --mutants-per-unit 1 --seed 11 --json",
                dir.display()
            ))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(j.exit, 0, "{}", j.stdout);
        assert!(j.stdout.contains("\"sound\":true"), "{}", j.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drive_batch_deadline_exhaustion_exits_7() {
        let dir = std::env::temp_dir().join(format!("ccured-cli-ddl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.c"), "int main(void) { return 0; }").unwrap();
        // A zero budget trips at the first stage boundary on any machine.
        let o = args(&format!(
            "batch {} --no-cache --deadline-ms 0",
            dir.display()
        ))
        .unwrap();
        let r = drive_batch(&o).unwrap();
        assert_eq!(r.exit, 7, "{}", r.stdout);
        assert!(r.stdout.contains("resource-exhausted"), "{}", r.stdout);
        // With a generous budget the same batch is clean.
        let o = args(&format!(
            "batch {} --no-cache --deadline-ms 60000",
            dir.display()
        ))
        .unwrap();
        let r = drive_batch(&o).unwrap();
        assert_eq!(r.exit, 0, "{}", r.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn drive_client_unreachable_daemon_exits_4() {
        let o = args("client /nonexistent-ccured.sock status").unwrap();
        let r = drive_client(&o);
        assert_eq!(r.exit, 4);
        assert!(r.stdout.contains("cannot reach"), "{}", r.stdout);
    }

    #[test]
    fn drive_batch_missing_path_is_an_error() {
        let o = args("batch /nonexistent-ccured-dir").unwrap();
        assert!(matches!(drive_batch(&o), Err(CureError::Internal(_))));
    }

    #[test]
    fn drive_crash_test_prints_matrix_and_exits_clean() {
        let src = "int main(void) { int a[6]; int i; int s; s = 0;\n\
                   for (i = 0; i < 6; i++) a[i] = i;\n\
                   for (i = 0; i < 6; i++) s = s + a[i];\n\
                   return s; }";
        let o = args("crash-test t.c --mutants 12 --seed 5").unwrap();
        let r = drive(&o, src, b"").unwrap();
        assert_eq!(r.exit, 0, "no escapes expected:\n{}", r.stdout);
        assert!(r.stdout.contains("fault class"), "{}", r.stdout);
        assert!(r.stdout.contains("no escapes"), "{}", r.stdout);
        let j = drive(
            &args("crash-test t.c --mutants 6 --json").unwrap(),
            src,
            b"",
        )
        .unwrap();
        assert_eq!(j.exit, 0);
        assert!(j.stdout.trim_end().starts_with('{'), "{}", j.stdout);
        assert!(j.stdout.contains("\"escaped\":[]"), "{}", j.stdout);
    }

    #[test]
    fn drive_explain_names_the_poisoning_cast() {
        let o = args("explain t.c").unwrap();
        let r = drive(
            &o,
            "int f(double *d) { int *q; q = (int *)d; return *q; }",
            b"",
        )
        .unwrap();
        assert_eq!(r.exit, 0);
        assert!(r.stdout.contains("is Wild"), "{}", r.stdout);
        assert!(r.stdout.contains("bad cast"), "{}", r.stdout);
        assert!(r.stdout.contains("t.c:1:"), "{}", r.stdout);
    }

    #[test]
    fn drive_explain_sym_filters_and_handles_safe() {
        let src = "int f(double *d, int *ok) { int *q; q = (int *)d; return *q + *ok; }";
        let r = drive(&args("explain t.c --sym ok").unwrap(), src, b"").unwrap();
        assert!(r.stdout.contains("`f::ok` is Safe"), "{}", r.stdout);
        assert!(!r.stdout.contains("is Wild"), "{}", r.stdout);
        let r = drive(&args("explain t.c --sym nosuch").unwrap(), src, b"").unwrap();
        assert!(r.stdout.contains("no pointer named"), "{}", r.stdout);
    }

    #[test]
    fn drive_explain_reports_nothing_wild() {
        let r = drive(
            &args("explain t.c").unwrap(),
            "int f(int *p) { return *p; }",
            b"",
        )
        .unwrap();
        assert!(r.stdout.contains("no WILD pointers"), "{}", r.stdout);
    }

    #[test]
    fn drive_review_includes_blame() {
        let src = "int f(double *d) { int *q; q = (int *)d; return *q; }";
        let r = drive(&args("t.c --review").unwrap(), src, b"").unwrap();
        assert!(r.stdout.contains("BAD cast"), "{}", r.stdout);
        assert!(r.stdout.contains("root cause"), "{}", r.stdout);
    }

    #[test]
    fn drive_report_shows_elision_and_no_opt_disables_it() {
        let src = "int main(void) { int x; int *p; x = 1; p = &x; return *p + *p; }";
        let opt = drive(&args("t.c --report").unwrap(), src, b"").unwrap();
        assert!(opt.stdout.contains("checks elided:"), "{}", opt.stdout);
        assert!(!opt.stdout.contains("checks elided: 0 "), "{}", opt.stdout);
        let noopt = drive(&args("t.c --report --no-opt").unwrap(), src, b"").unwrap();
        assert!(
            noopt.stdout.contains("checks elided: 0 "),
            "{}",
            noopt.stdout
        );
    }

    #[test]
    fn drive_warns_on_static_failures() {
        let r = drive(
            &args("t.c").unwrap(),
            "int main(void) { int *p; p = 0; return *p; }",
            b"",
        )
        .unwrap();
        assert!(r.stdout.contains("warning:"), "{}", r.stdout);
        assert!(r.stdout.contains("null"), "{}", r.stdout);
        assert!(
            r.stdout.contains("t.c:1:"),
            "position attached: {}",
            r.stdout
        );
    }

    #[test]
    fn drive_cures_and_runs() {
        let o = args("mem.c --run --report").unwrap();
        let r = drive(
            &o,
            "int main(void) { int a[4]; for (int i = 0; i < 4; i++) a[i] = i; return a[3]; }",
            b"",
        )
        .unwrap();
        assert_eq!(r.exit, 3, "main returns a[3]");
        assert!(r.stdout.contains("pointer kinds:"));
        assert!(r.stdout.contains("checks inserted:"));
    }

    #[test]
    fn drive_reports_check_failures_with_exit_3() {
        let o = args("mem.c --run").unwrap();
        let r = drive(
            &o,
            "int main(void) { int a[2]; a[0] = 1; a[1] = 2; int i = 5; return a[i]; }",
            b"",
        )
        .unwrap();
        assert_eq!(r.exit, 3);
        assert!(r.stdout.contains("ccured check"));
    }

    #[test]
    fn drive_original_mode_runs_plain() {
        let o = args("mem.c --run --mode original --counters").unwrap();
        let r = drive(&o, "int main(void) { return 5; }", b"").unwrap();
        assert_eq!(r.exit, 5);
        assert!(r.stdout.contains("-- counters:"));
    }

    #[test]
    fn drive_emit_ir_dumps_checks() {
        let o = args("mem.c --emit-ir").unwrap();
        let r = drive(&o, "int f(int *p) { return *p; }", b"").unwrap();
        assert!(r.stdout.contains("CHECK_NULL"));
    }

    #[test]
    fn drive_wrappers_and_input() {
        let o = args("mem.c --run --wrappers").unwrap();
        let r = drive(
            &o,
            "extern int getchar(void);\n\
             int main(void) { char b[8]; b[0] = (char)getchar(); b[1] = 0; return (int)strlen(b); }",
            b"x",
        )
        .unwrap();
        assert_eq!(r.exit, 1);
    }

    #[test]
    fn drive_original_ccured_ablation() {
        let src = "struct F { void *vt; } gf;\n\
                   struct C { void *vt; int r; } gc;\n\
                   int g(struct F *f) { struct C *c; c = (struct C *)f; return c->r; }\n\
                   int main(void) { struct C c; c.vt = 0; c.r = 5; return g((struct F *)&c); }";
        let modern = drive(&args("m.c --run --report").unwrap(), src, b"").unwrap();
        assert_eq!(modern.exit, 5);
        assert!(modern.stdout.contains("0% WILD"), "{}", modern.stdout);
        let old = drive(
            &args("m.c --run --report --original-ccured").unwrap(),
            src,
            b"",
        )
        .unwrap();
        assert_eq!(old.exit, 5, "WILD pointers still execute correctly");
        assert!(!old.stdout.contains(" 0% WILD"), "{}", old.stdout);
    }

    #[test]
    fn drive_split_everything_flag() {
        let src = "extern void *malloc(unsigned long n);\n\
                   int main(void) {\n\
                     int **pp = (int **)malloc(8 * sizeof(int *));\n\
                     int *cell = (int *)malloc(4);\n\
                     *cell = 6;\n\
                     for (int i = 0; i < 8; i++) pp[i] = cell;\n\
                     return *pp[7];\n\
                   }";
        let plain = drive(&args("m.c --run --counters").unwrap(), src, b"").unwrap();
        assert_eq!(plain.exit, 6);
        assert!(plain.stdout.contains("meta_ops=0"), "{}", plain.stdout);
        let split = drive(
            &args("m.c --run --counters --split-everything").unwrap(),
            src,
            b"",
        )
        .unwrap();
        assert_eq!(split.exit, 6);
        assert!(!split.stdout.contains("meta_ops=0"), "{}", split.stdout);
    }

    #[test]
    fn parses_temporal_and_emit_pgo_flags() {
        let o = args("prog.c --run --temporal").unwrap();
        assert!(o.temporal);
        assert!(args("crash-test prog.c --temporal").unwrap().temporal);
        assert!(args("profile prog.c --temporal").unwrap().temporal);
        assert!(
            args("prog.c --run --mode original --temporal").is_err(),
            "--temporal is cured-mode only"
        );
        let p = args("profile prog.c --emit-pgo /tmp/p.json").unwrap();
        assert_eq!(p.emit_pgo.as_deref(), Some("/tmp/p.json"));
        assert!(
            args("prog.c --run --emit-pgo /tmp/p.json").is_err(),
            "--emit-pgo needs the profile subcommand"
        );
        assert!(args("profile prog.c --emit-pgo").is_err(), "missing value");
    }

    #[test]
    fn drive_temporal_catches_use_after_free_on_both_engines() {
        let src = "extern void *malloc(unsigned long n);\n\
                   extern void free(void *p);\n\
                   int main(void) {\n\
                     int *p = (int *)malloc(4);\n\
                     *p = 41;\n\
                     free(p);\n\
                     return *p + 1;\n\
                   }";
        // Without --temporal the GC-backed `free` masks the bug entirely.
        let plain = drive(&args("t.c --run").unwrap(), src, b"").unwrap();
        assert_eq!(plain.exit, 42, "{}", plain.stdout);
        // With it, the dangling deref is an ordinary check failure.
        let vm = drive(&args("t.c --run --temporal --counters").unwrap(), src, b"").unwrap();
        let tree = drive(
            &args("t.c --run --temporal --counters --engine tree").unwrap(),
            src,
            b"",
        )
        .unwrap();
        assert_eq!(vm.exit, 3, "{}", vm.stdout);
        assert!(vm.stdout.contains("use after free"), "{}", vm.stdout);
        assert!(!vm.stdout.contains("temporal=0"), "{}", vm.stdout);
        assert_eq!(vm.stdout, tree.stdout, "engines agree byte-for-byte");
    }

    #[test]
    fn drive_temporal_rejects_double_free() {
        let src = "extern void *malloc(unsigned long n);\n\
                   extern void free(void *p);\n\
                   int main(void) {\n\
                     int *p = (int *)malloc(4);\n\
                     *p = 1;\n\
                     free(p);\n\
                     free(p);\n\
                     return 0;\n\
                   }";
        let plain = drive(&args("t.c --run").unwrap(), src, b"").unwrap();
        assert_eq!(plain.exit, 0, "gc mode masks it: {}", plain.stdout);
        let r = drive(&args("t.c --run --temporal").unwrap(), src, b"").unwrap();
        assert_eq!(r.exit, 3, "{}", r.stdout);
        assert!(r.stdout.contains("free rejected"), "{}", r.stdout);
        assert!(r.stdout.contains("double free"), "{}", r.stdout);
    }

    #[test]
    fn drive_temporal_report_and_ir_show_the_new_checks() {
        let src = "extern void *malloc(unsigned long n);\n\
                   int main(void) { int *p = (int *)malloc(4); *p = 7; return *p; }";
        let r = drive(
            &args("t.c --report --emit-ir --temporal").unwrap(),
            src,
            b"",
        )
        .unwrap();
        assert_eq!(r.exit, 0);
        assert!(r.stdout.contains("CHECK_TEMPORAL"), "{}", r.stdout);
        assert!(!r.stdout.contains("temporal=0)"), "{}", r.stdout);
        // Without the flag nothing temporal is emitted.
        let off = drive(&args("t.c --report --emit-ir").unwrap(), src, b"").unwrap();
        assert!(!off.stdout.contains("CHECK_TEMPORAL"), "{}", off.stdout);
    }

    #[test]
    fn emit_pgo_round_trips_and_stale_plans_fall_back() {
        let dir = std::env::temp_dir().join(format!("ccured-cli-pgo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let pgo = dir.join("p.json");
        let src = "int sum(int *p, int n) { int s; int i; s = 0;\n\
                   for (i = 0; i < n; i++) s = s + p[i];\n\
                   return s; }\n\
                   int main(void) { int a[6]; int i;\n\
                   for (i = 0; i < 6; i++) a[i] = i;\n\
                   return sum(a, 6); }";
        let argv = format!("profile t.c --emit-pgo {}", pgo.display());
        let prof = drive(&args(&argv).unwrap(), src, b"").unwrap();
        assert_eq!(prof.exit, 15, "{}", prof.stdout);
        assert!(prof.stdout.contains("profile written"), "{}", prof.stdout);
        let text = std::fs::read_to_string(&pgo).unwrap();
        assert!(text.contains(ccured_rt::PGO_SCHEMA), "{text}");
        // Same source: the plan matches the site table and is accepted.
        let run = format!("t.c --run --pgo {}", pgo.display());
        let fresh = drive(&args(&run).unwrap(), src, b"").unwrap();
        assert_eq!(fresh.exit, 15);
        assert!(!fresh.stdout.contains("stale"), "{}", fresh.stdout);
        // Edited source (renamed function): the saved plan attributes sites
        // to functions that no longer exist — warn and fall back to online
        // heat instead of silently mis-tiering (or hard-failing) the run.
        let edited = src.replace("sum", "total");
        let stale = drive(&args(&run).unwrap(), &edited, b"").unwrap();
        assert_eq!(stale.exit, 15, "{}", stale.stdout);
        assert!(stale.stdout.contains("stale"), "{}", stale.stdout);
        assert!(
            stale.stdout.contains("falling back to online heat"),
            "{}",
            stale.stdout
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_link_reported_as_error() {
        let o = args("mem.c --strict-link").unwrap();
        let e = drive(
            &o,
            "extern void use_buf(char *b);\n\
             void f(char *b, int i) { b = b + i; use_buf(b); }\n\
             int main(void) { return 0; }",
            b"",
        );
        assert!(matches!(e, Err(CureError::Link(_))));
    }
}
