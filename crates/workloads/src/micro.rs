//! Pointer-kind microbenchmarks: each exercises exactly one CCured pointer
//! representation, for the ablation benches and calibration checks.

use crate::Workload;

/// A loop of SAFE dereferences (null checks only).
pub fn safe_deref(iters: u32) -> Workload {
    let src = format!(
        "int cell;\n\
         int read_it(int *p) {{ return *p; }}\n\
         int main(void) {{\n\
           int s = 0;\n\
           cell = 3;\n\
           for (int i = 0; i < {iters}; i++) s += read_it(&cell);\n\
           return s == 3 * {iters} ? 0 : 1;\n\
         }}"
    );
    Workload::new("micro_safe", src).without_wrappers()
}

/// A loop of SEQ indexing (bounds checks on fat pointers).
pub fn seq_index(iters: u32) -> Workload {
    let src = format!(
        "int sum(int *a, int n) {{\n\
           int s = 0;\n\
           for (int i = 0; i < n; i++) s += a[i];\n\
           return s;\n\
         }}\n\
         int main(void) {{\n\
           int buf[64];\n\
           for (int i = 0; i < 64; i++) buf[i] = 1;\n\
           int s = 0;\n\
           for (int r = 0; r < {iters}; r++) s += sum(buf, 64);\n\
           return s == 64 * {iters} ? 0 : 1;\n\
         }}"
    );
    Workload::new("micro_seq", src).without_wrappers()
}

/// A loop over WILD pointers (a bad cast forces WILD; every access pays
/// bounds + tag work).
pub fn wild_loop(iters: u32) -> Workload {
    let src = format!(
        "int main(void) {{\n\
           double d[32];\n\
           for (int i = 0; i < 32; i++) d[i] = 1.0;\n\
           /* Bad cast: treat the double array as longs (same word width,\n\
              different atoms) -> WILD pointers. */\n\
           long *w = (long *)d;\n\
           long s = 0;\n\
           for (int r = 0; r < {iters}; r++)\n\
             for (int i = 0; i < 32; i++)\n\
               s += w[i] != 0 ? 1 : 0;\n\
           return s == 32 * {iters} ? 0 : 1;\n\
         }}"
    );
    Workload::new("micro_wild", src).without_wrappers()
}

/// A loop of checked downcasts (RTTI subtype tests).
pub fn rtti_dispatch(iters: u32) -> Workload {
    let src = format!(
        "struct Shape {{ int kind; int pad; }};\n\
         struct Circle {{ int kind; int pad; int radius; }};\n\
         struct Square {{ int kind; int pad; int side; int area; }};\n\
         int measure(struct Shape *s) {{\n\
           if (s->kind == 1) {{\n\
             struct Circle *c = (struct Circle *)s;\n\
             return c->radius;\n\
           }}\n\
           struct Square *q = (struct Square *)s;\n\
           return q->side;\n\
         }}\n\
         int main(void) {{\n\
           struct Circle c; c.kind = 1; c.pad = 0; c.radius = 2;\n\
           struct Square q; q.kind = 2; q.pad = 0; q.side = 3; q.area = 9;\n\
           int s = 0;\n\
           for (int i = 0; i < {iters}; i++) {{\n\
             s += measure((struct Shape *)&c);\n\
             s += measure((struct Shape *)&q);\n\
           }}\n\
           return s == 5 * {iters} ? 0 : 1;\n\
         }}"
    );
    Workload::new("micro_rtti", src).without_wrappers()
}

/// Heavy pointer-store traffic (the worst case for SPLIT metadata upkeep
/// and for the Jones–Kelly registry).
pub fn ptr_store(iters: u32) -> Workload {
    let src = format!(
        "extern void *malloc(unsigned long n);\n\
         int main(void) {{\n\
           int **slots = (int **)malloc(32 * sizeof(int *));\n\
           int *cell = (int *)malloc(sizeof(int));\n\
           *cell = 5;\n\
           long s = 0;\n\
           for (int r = 0; r < {iters}; r++) {{\n\
             for (int i = 0; i < 32; i++) slots[i] = cell;\n\
             for (int i = 0; i < 32; i++) s += *slots[i];\n\
           }}\n\
           return s == 5 * 32 * {iters} ? 0 : 1;\n\
         }}"
    );
    Workload::new("micro_ptr_store", src).without_wrappers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use ccured_infer::InferOptions;

    fn check(w: &Workload) {
        let orig = runner::run_original(w).expect("frontend");
        assert!(orig.ok(), "{}: original failed: {:?}", w.name, orig.error);
        assert_eq!(orig.exit, w.expect_exit, "{}", w.name);
        let cured = runner::run_cured(w, &InferOptions::default()).expect("cure");
        assert!(
            cured.stats.ok(),
            "{}: cured failed: {:?}",
            w.name,
            cured.stats.error
        );
        assert_eq!(cured.stats.exit, w.expect_exit, "{}", w.name);
        assert_eq!(
            orig.output, cured.stats.output,
            "{}: outputs differ",
            w.name
        );
    }

    #[test]
    fn safe_deref_runs() {
        check(&safe_deref(50));
    }

    #[test]
    fn seq_index_runs() {
        check(&seq_index(20));
    }

    #[test]
    fn wild_loop_runs() {
        let w = wild_loop(10);
        check(&w);
        // The point of the benchmark: it must actually contain WILD quals.
        let cured = runner::run_cured(&w, &InferOptions::default()).unwrap();
        assert!(cured.cured.report.kind_counts.wild > 0);
        assert!(cured.stats.counters.wild_bounds_checks > 0);
    }

    #[test]
    fn rtti_dispatch_runs() {
        let w = rtti_dispatch(10);
        check(&w);
        let cured = runner::run_cured(&w, &InferOptions::default()).unwrap();
        assert!(
            cured.cured.report.kind_counts.rtti > 0,
            "must use RTTI pointers"
        );
        assert!(cured.stats.counters.rtti_checks > 0);
        assert_eq!(cured.cured.report.kind_counts.wild, 0);
    }

    #[test]
    fn ptr_store_runs() {
        check(&ptr_store(10));
    }
}
