//! Cures and executes workloads in every instrumentation mode, producing
//! cost-model overhead ratios for the benchmark tables.

use crate::Workload;
use ccured::{CureError, Cured, Curer};
use ccured_infer::InferOptions;
use ccured_rt::{CostModel, Counters, Engine, ExecMode, Interp, RtError};

/// The observable result of one execution.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Exit code (0 when the run errored).
    pub exit: i64,
    /// The error, if the run did not complete.
    pub error: Option<RtError>,
    /// Event counters.
    pub counters: Counters,
    /// Bytes of program output.
    pub output: Vec<u8>,
}

impl RunStats {
    /// Whether the run completed without error.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// A cured workload together with its run.
#[derive(Debug)]
pub struct CuredRun {
    /// The cure artifacts and report.
    pub cured: Cured,
    /// The execution result.
    pub stats: RunStats,
}

fn execute(
    prog: &ccured_cil::Program,
    mode: ExecMode<'_>,
    engine: Engine,
    input: &[u8],
) -> RunStats {
    let mut interp = Interp::new(prog, mode);
    interp.set_engine(engine);
    interp.set_input(input.to_vec());
    let r = interp.run();
    let (exit, error) = match r {
        Ok(code) => (code, None),
        Err(e) => (0, Some(e)),
    };
    RunStats {
        exit,
        error,
        counters: interp.counters,
        output: interp.output().to_vec(),
    }
}

fn lower(w: &Workload) -> Result<ccured_cil::Program, CureError> {
    let full = if w.with_wrappers {
        format!(
            "{}\n{}",
            ccured::wrappers::stdlib_wrapper_source(),
            w.source
        )
    } else {
        w.source.clone()
    };
    let tu = ccured_ast::parse_translation_unit(&full).map_err(CureError::Frontend)?;
    ccured_cil::lower_translation_unit(&tu).map_err(CureError::Frontend)
}

/// Runs the original (uncured) program. Wrapper functions are still present
/// in the source but calls are not redirected, so the raw library is used.
///
/// # Errors
///
/// Frontend errors only; run-time failures are reported in [`RunStats`].
pub fn run_original(w: &Workload) -> Result<RunStats, CureError> {
    run_original_on(w, Engine::default())
}

/// [`run_original`] on an explicit execution engine.
///
/// # Errors
///
/// Frontend errors only.
pub fn run_original_on(w: &Workload, engine: Engine) -> Result<RunStats, CureError> {
    let prog = lower(w)?;
    Ok(execute(&prog, ExecMode::Original, engine, &w.input))
}

/// Runs under a baseline instrumentation mode (Purify/Valgrind/JonesKelly).
///
/// # Errors
///
/// Frontend errors only.
pub fn run_baseline(w: &Workload, mode: ExecMode<'static>) -> Result<RunStats, CureError> {
    run_baseline_on(w, mode, Engine::default())
}

/// [`run_baseline`] on an explicit execution engine.
///
/// # Errors
///
/// Frontend errors only.
pub fn run_baseline_on(
    w: &Workload,
    mode: ExecMode<'static>,
    engine: Engine,
) -> Result<RunStats, CureError> {
    let prog = lower(w)?;
    Ok(execute(&prog, mode, engine, &w.input))
}

/// Cures the workload and runs it (redundant-check elimination on).
///
/// # Errors
///
/// Cure errors (frontend or strict-link).
pub fn run_cured(w: &Workload, opts: &InferOptions) -> Result<CuredRun, CureError> {
    run_cured_opt(w, opts, true)
}

/// Like [`run_cured`], with explicit control over the optimizer — the
/// `--no-opt` ablation used by the differential soundness harness.
///
/// # Errors
///
/// Cure errors (frontend or strict-link).
pub fn run_cured_opt(
    w: &Workload,
    opts: &InferOptions,
    optimize: bool,
) -> Result<CuredRun, CureError> {
    run_cured_loop_opt(w, opts, optimize, optimize)
}

/// Like [`run_cured_opt`], with independent control over the loop
/// optimizer (hoisting + widening). `optimize=true, loop_opt=false` is the
/// elim-only configuration the opt2 differential suite and the E15 bench
/// compare against.
///
/// # Errors
///
/// Cure errors (frontend or strict-link).
pub fn run_cured_loop_opt(
    w: &Workload,
    opts: &InferOptions,
    optimize: bool,
    loop_opt: bool,
) -> Result<CuredRun, CureError> {
    let mut curer = Curer::new();
    curer
        .rtti(opts.rtti)
        .physical_subtyping(opts.physical_subtyping)
        .split_at_boundaries(opts.split_at_boundaries)
        .split_everything(opts.split_everything)
        .optimize(optimize)
        .loop_optimize(loop_opt);
    if w.with_wrappers {
        curer.with_stdlib_wrappers();
    }
    let cured = curer.cure_source(&w.source)?;
    let stats = execute(
        &cured.program,
        ExecMode::cured(&cured),
        cured.engine,
        &w.input,
    );
    Ok(CuredRun { cured, stats })
}

/// All overhead ratios for one workload, from the shared cost model.
#[derive(Debug, Clone)]
pub struct Ratios {
    /// Lines of code (measured).
    pub lines: usize,
    /// Static pointer-kind percentages `(sf, sq, w, rt)`.
    pub kind_pct: (u32, u32, u32, u32),
    /// CCured cycles / original cycles.
    pub ccured: f64,
    /// Purify cycles / original cycles.
    pub purify: f64,
    /// Valgrind cycles / original cycles.
    pub valgrind: f64,
    /// Baseline (original) counters, for further analysis.
    pub base_counters: Counters,
    /// Cured counters.
    pub cured_counters: Counters,
}

/// Measures every mode for `w` and returns the cost-model ratios.
///
/// # Errors
///
/// Frontend/cure errors; also if any mode's run fails unexpectedly.
pub fn measure(w: &Workload, opts: &InferOptions) -> Result<Ratios, CureError> {
    let model = CostModel::default();
    let base = run_original(w)?;
    let cured = run_cured(w, opts)?;
    let purify = run_baseline(w, ExecMode::Purify)?;
    let valgrind = run_baseline(w, ExecMode::Valgrind)?;
    for (mode, stats) in [
        ("original", &base),
        ("cured", &cured.stats),
        ("purify", &purify),
        ("valgrind", &valgrind),
    ] {
        if let Some(e) = &stats.error {
            return Err(CureError::Frontend(ccured_ast::Diag::error(
                ccured_ast::Span::DUMMY,
                format!("workload `{}` failed in {mode} mode: {e}", w.name),
            )));
        }
        if stats.exit != w.expect_exit {
            return Err(CureError::Frontend(ccured_ast::Diag::error(
                ccured_ast::Span::DUMMY,
                format!(
                    "workload `{}` exited {} (expected {}) in {mode} mode",
                    w.name, stats.exit, w.expect_exit
                ),
            )));
        }
    }
    Ok(Ratios {
        lines: w.lines(),
        kind_pct: cured.cured.report.kind_counts.percentages(),
        ccured: model.ratio(&cured.stats.counters, &base.counters),
        purify: model.ratio(&purify.counters, &base.counters),
        valgrind: model.ratio(&valgrind.counters, &base.counters),
        base_counters: base.counters,
        cured_counters: cured.stats.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro;

    #[test]
    fn measure_microbenchmark() {
        let w = micro::safe_deref(200);
        let r = measure(&w, &InferOptions::default()).expect("measure");
        assert!(r.ccured >= 1.0, "cured is never faster: {}", r.ccured);
        assert!(r.valgrind > r.ccured, "valgrind costs more than ccured");
    }
}
