//! Deterministic SplitMix64 PRNG for workload generators.
//!
//! Replaces the previous `rand` dependency: workload corpora must be
//! reproducible across machines and build offline, and SplitMix64 gives a
//! full-period, statistically solid 64-bit stream in a dozen lines.

/// SplitMix64 generator (Steele, Lea & Flood; public-domain reference
/// constants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed; every seed is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `[lo, hi)`; returns `lo` for empty ranges.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    /// Panics when `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the published SplitMix64
        // reference implementation.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut g = SplitMix64::new(42);
                move |_| g.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut g = SplitMix64::new(42);
                move |_| g.next_u64()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(g.below(10) < 10);
            let v = g.range(-5, 5);
            assert!((-5..5).contains(&v));
        }
        assert_eq!(g.below(0), 0);
        assert_eq!(g.range(3, 3), 3);
    }

    #[test]
    fn pick_selects_all_elements_eventually() {
        let mut g = SplitMix64::new(99);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(*g.pick(&items) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
