//! Ptrdist-style workloads: `anagram` (string signatures over a word list)
//! and `ks` (a Kernighan–Schweikert-style graph partitioner skeleton).

use crate::{PaperStats, Workload};

/// `anagram`: builds letter-count signatures for words and counts anagram
/// pairs. String- and small-array-bound; the paper's +7% split outlier.
pub fn anagram(words: u32) -> Workload {
    let src = format!(
        "extern void *malloc(unsigned long n);\n\
         extern long sim_rand(void);\n\
         struct Word {{\n\
           char text[12];\n\
           int sig[26];\n\
           int len;\n\
         }};\n\
         void signature(struct Word *w) {{\n\
           for (int i = 0; i < 26; i++) w->sig[i] = 0;\n\
           for (int i = 0; i < w->len; i++) {{\n\
             int c = w->text[i] - 'a';\n\
             if (c >= 0 && c < 26) w->sig[c]++;\n\
           }}\n\
         }}\n\
         int same_sig(struct Word *a, struct Word *b) {{\n\
           for (int i = 0; i < 26; i++)\n\
             if (a->sig[i] != b->sig[i]) return 0;\n\
           return 1;\n\
         }}\n\
         int main(void) {{\n\
           int n = {words};\n\
           struct Word *list = (struct Word *)malloc(n * sizeof(struct Word));\n\
           for (int i = 0; i < n; i++) {{\n\
             struct Word *w = &list[i];\n\
             w->len = 3 + (int)(sim_rand() % 8);\n\
             for (int j = 0; j < w->len; j++)\n\
               w->text[j] = (char)('a' + (sim_rand() % 6));\n\
             w->text[w->len] = 0;\n\
             signature(w);\n\
           }}\n\
           int pairs = 0;\n\
           for (int i = 0; i < n; i++)\n\
             for (int j = i + 1; j < n; j++)\n\
               if (list[i].len == list[j].len && same_sig(&list[i], &list[j])) pairs++;\n\
           return pairs >= 0 ? 0 : 1;\n\
         }}"
    );
    Workload::new("anagram", src)
        .without_wrappers()
        .with_paper(PaperStats {
            ccured_ratio: Some(1.07),
            ..PaperStats::default()
        })
}

/// `ks`: iterative improvement over an adjacency matrix — array indexing
/// with integer work, light pointer traffic.
pub fn ks(nodes: u32) -> Workload {
    let src = format!(
        "extern void *malloc(unsigned long n);\n\
         extern long sim_rand(void);\n\
         int main(void) {{\n\
           int n = {nodes};\n\
           int *adj = (int *)malloc(n * n * sizeof(int));\n\
           int *part = (int *)malloc(n * sizeof(int));\n\
           for (int i = 0; i < n; i++) {{\n\
             part[i] = i % 2;\n\
             for (int j = 0; j < n; j++)\n\
               adj[i * n + j] = (int)(sim_rand() % 4);\n\
           }}\n\
           int best = 1 << 30;\n\
           for (int pass = 0; pass < 4; pass++) {{\n\
             int cut = 0;\n\
             for (int i = 0; i < n; i++)\n\
               for (int j = i + 1; j < n; j++)\n\
                 if (part[i] != part[j]) cut += adj[i * n + j];\n\
             if (cut < best) best = cut;\n\
             /* greedy flip */\n\
             for (int i = 0; i < n; i++) {{\n\
               int gain = 0;\n\
               for (int j = 0; j < n; j++) {{\n\
                 if (j == i) continue;\n\
                 if (part[i] != part[j]) gain += adj[i * n + j];\n\
                 else gain -= adj[i * n + j];\n\
               }}\n\
               if (gain > 0) part[i] = 1 - part[i];\n\
             }}\n\
           }}\n\
           return best >= 0 ? 0 : 1;\n\
         }}"
    );
    Workload::new("ks", src).without_wrappers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use ccured_infer::InferOptions;

    #[test]
    fn anagram_runs() {
        let w = anagram(16);
        let o = runner::run_original(&w).expect("frontend");
        assert!(o.ok(), "{:?}", o.error);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        assert!(c.stats.ok(), "{:?}", c.stats.error);
        assert_eq!(c.cured.report.kind_counts.wild, 0);
    }

    #[test]
    fn anagram_split_is_cheap() {
        // anagram's data is mostly non-pointer: split-everything costs far
        // less here than in em3d (the paper's 7% vs 58% contrast).
        let w = anagram(16);
        let split = runner::run_cured(
            &w,
            &InferOptions {
                split_everything: true,
                ..InferOptions::default()
            },
        )
        .expect("cure");
        let ops = split.stats.counters.meta_ops;
        let loads = split.stats.counters.loads;
        assert!(
            (ops as f64) < (loads as f64) * 0.2,
            "anagram metadata traffic stays small: {ops} meta ops vs {loads} loads"
        );
    }

    #[test]
    fn ks_runs() {
        let w = ks(12);
        let o = runner::run_original(&w).expect("frontend");
        assert!(o.ok(), "{:?}", o.error);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        assert!(c.stats.ok(), "{:?}", c.stats.error);
    }
}
