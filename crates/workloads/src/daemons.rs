//! The security-critical network daemons of paper Figure 9: `ftpd` (with
//! its real `replydirname` buffer overflow), a `sendmail`-style queue
//! daemon (with a crackaddr-style header overflow), a cast-heavy
//! `bind`-style resolver, the two OpenSSL kernels (`cast` cipher and `bn`
//! bignum), and an `OpenSSH`-style packet layer.
//!
//! Each daemon reads fixed-size records via `net_recv` and answers via
//! `net_send`, so I/O dominates exactly where the paper reports ratios
//! near 1.0, while the CPU kernels (OpenSSL) expose the check overhead.

use crate::{PaperStats, Workload};
use std::fmt::Write as _;

/// Record size for daemon command streams.
pub const CMD_BYTES: usize = 64;

fn commands(cmds: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    for c in cmds {
        let mut rec = c.clone().into_bytes();
        rec.resize(CMD_BYTES, 0);
        out.extend_from_slice(&rec);
    }
    out
}

/// The ftpd analogue. `replydirname` copies a client-controlled path into a
/// fixed buffer that sits next to the session's privilege flag — the
/// documented ftpd-BSD 0.3.2 vulnerability class. With `exploit`, the input
/// contains an oversized path: in original mode the overflow silently
/// flips `is_admin`; cured, the wrapper's bounds check stops it.
pub fn ftpd(sessions: u32, exploit: bool) -> Workload {
    let src = r#"
extern long net_recv(char *buf, long cap);
extern long net_send(char *buf, long n);
extern int sprintf(char *buf, char *fmt, ...);

struct glob_res { long count; char **paths; };
extern int glob(char *pattern, struct glob_res *out);

struct Session {
    char cwd[24];
    int is_admin;
    int commands;
};

void replydirname(struct Session *s, char *path, char *resp) {
    /* The vulnerable pattern: no length check before the copy. */
    strcpy(s->cwd, path);
    strcat(s->cwd, "/");
    sprintf(resp, "257 \"%s\" created%s\r\n", s->cwd, s->is_admin ? " [ADMIN]" : "");
}

int handle(struct Session *s, char *cmd, char *resp) {
    s->commands++;
    if (strncmp(cmd, "USER ", 5) == 0) {
        return sprintf(resp, "331 need password for %s\r\n", cmd + 5);
    }
    if (strncmp(cmd, "PASS ", 5) == 0) {
        return sprintf(resp, "230 logged in\r\n");
    }
    if (strncmp(cmd, "CWD ", 4) == 0) {
        replydirname(s, cmd + 4, resp);
        return (int)strlen(resp);
    }
    if (strncmp(cmd, "LIST", 4) == 0) {
        /* The library expands the pattern and hands back an array of
           strings it allocated itself (the glob compatibility story). */
        struct glob_res g;
        glob("data*", &g);
        int m = sprintf(resp, "150 listing %s:", s->cwd);
        for (long i = 0; i < g.count; i++)
            m += sprintf(resp + m, " %s", g.paths[i]);
        m += sprintf(resp + m, "\r\n");
        return m;
    }
    if (strncmp(cmd, "QUIT", 4) == 0) {
        return sprintf(resp, "221 bye (%d commands)\r\n", s->commands);
    }
    return sprintf(resp, "500 unknown\r\n");
}

int main(void) {
    struct Session sess;
    char cmd[64];
    char resp[192];
    sess.cwd[0] = '/';
    sess.cwd[1] = 0;
    sess.is_admin = 0;
    sess.commands = 0;
    long n;
    int served = 0;
    while ((n = net_recv(cmd, 64)) > 0) {
        cmd[63] = 0;
        int m = handle(&sess, cmd, resp);
        if (m > 0) net_send(resp, m);
        served++;
    }
    return sess.is_admin ? 42 : (served > 0 ? 0 : 1);
}
"#;
    let mut cmds = Vec::new();
    for s in 0..sessions {
        cmds.push(format!("USER user{s}"));
        cmds.push("PASS secret".to_string());
        cmds.push(format!("CWD /home/u{s}"));
        if exploit && s == sessions / 2 {
            // 25 path bytes + NUL: overruns cwd[24] into is_admin while
            // staying inside struct Session (a silent flip in plain C).
            cmds.push(format!("CWD /{}", "A".repeat(24)));
        }
        cmds.push("LIST".to_string());
        cmds.push("QUIT".to_string());
    }
    let w = Workload::new(if exploit { "ftpd_exploit" } else { "ftpd" }, src)
        .with_input(commands(&cmds))
        .with_paper(PaperStats {
            loc: Some(6553),
            pct: Some((79, 12, 9, 0)),
            ccured_ratio: Some(1.01),
            valgrind_ratio: Some(9.42),
        });
    if exploit {
        // In original mode the overflow silently grants admin: exit 42.
        w.expecting(42)
    } else {
        w
    }
}

/// The sendmail analogue: parses envelopes, rewrites headers into a fixed
/// buffer adjacent to routing state (the crackaddr pattern), queues bodies
/// on the heap, and acknowledges each message.
pub fn sendmail_like(messages: u32, exploit: bool) -> Workload {
    let src = r#"
extern long net_recv(char *buf, long cap);
extern long net_send(char *buf, long n);
extern void *malloc(unsigned long n);
extern void free(void *p);
extern int sprintf(char *buf, char *fmt, ...);

struct Envelope {
    char rewritten[32];
    int hops;
    int queue_id;
};

int rewrite_header(struct Envelope *e, char *from) {
    /* Vulnerable: comment expansion can exceed the fixed buffer. */
    e->rewritten[0] = 0;
    strcat(e->rewritten, "<");
    strcat(e->rewritten, from);
    strcat(e->rewritten, ">");
    return (int)strlen(e->rewritten);
}

int checksum(char *buf, int n) {
    int h = 0;
    for (int i = 0; i < n; i++) h = (h * 31 + buf[i]) & 0x7fffffff;
    return h;
}

int main(void) {
    char msg[64];
    char resp[128];
    struct Envelope env;
    env.hops = 0;
    env.queue_id = 0;
    long n;
    int delivered = 0;
    while ((n = net_recv(msg, 64)) > 0) {
        msg[63] = 0;
        env.queue_id++;
        /* FROM is the first token. */
        char *from = msg;
        if (strncmp(msg, "MAIL ", 5) == 0) from = msg + 5;
        rewrite_header(&env, from);
        /* Queue the body on the heap. */
        char *entry = (char *)malloc(64);
        memcpy(entry, msg, (unsigned long)n);
        int h = checksum(entry, (int)n);
        free(entry);
        int m = sprintf(resp, "250 q%d %s hash=%x hops=%d\r\n",
                        env.queue_id, env.rewritten, h, env.hops);
        net_send(resp, m);
        delivered++;
    }
    /* hops is only ever incremented by trusted relays; a nonzero value
       here means the header rewrite overran into it. */
    if (env.hops != 0) return 43;
    return delivered > 0 ? 0 : 1;
}
"#;
    let mut cmds = Vec::new();
    for i in 0..messages {
        cmds.push(format!("MAIL user{i}@host{}", i % 7));
        if exploit && i == messages / 2 {
            // 34 payload bytes expand to "<"+34+">"+NUL = 37 > rewritten[32],
            // overrunning into `hops` while staying inside struct Envelope.
            cmds.push(format!("MAIL {}", "B".repeat(34)));
        }
    }
    Workload::new(
        if exploit {
            "sendmail_exploit"
        } else {
            "sendmail"
        },
        src,
    )
    .with_input(commands(&cmds))
    .with_paper(PaperStats {
        loc: Some(105_432),
        pct: Some((65, 34, 0, 1)),
        ccured_ratio: Some(1.46),
        valgrind_ratio: Some(122.0),
    })
}

/// The bind analogue: a resolver over a zone of `rrtypes` record variants
/// (a physical-subtype family with checked downcasts), wire-format parsing
/// through a `__TRUSTED` header cast (the custom-allocator pattern the
/// paper trusts during the bind port), and label-by-label name hashing.
pub fn bind_like(queries: u32, rrtypes: u32) -> Workload {
    let rrtypes = rrtypes.clamp(2, 16);
    let mut src = String::new();
    let _ = writeln!(
        src,
        "extern long net_recv(char *buf, long cap);\n\
         extern long net_send(char *buf, long n);\n\
         extern void *malloc(unsigned long n);\n\
         extern int sprintf(char *buf, char *fmt, ...);\n\
         struct Hdr {{ int id; int qcount; }};\n\
         struct RR {{ int rrtype; int ttl; }};"
    );
    for t in 1..=rrtypes {
        let mut fields = String::from("int rrtype; int ttl;");
        for i in 1..=t {
            let _ = write!(fields, " int d{i};");
        }
        let _ = writeln!(src, "struct RR{t} {{ {fields} }};");
    }
    for t in 1..=rrtypes {
        let _ = writeln!(
            src,
            "int serialize_{t}(struct RR *r) {{\n\
               /* identity casts through the generic view, as real resolver\n\
                  code does constantly (the paper's 63% identical casts) */\n\
               struct RR *g = (struct RR *)r;\n\
               struct RR{t} *a = (struct RR{t} *)g;\n\
               struct RR{t} *same = (struct RR{t} *)a;\n\
               struct RR{t} *view = (struct RR{t} *)same;\n\
               struct RR{t} *alias = (struct RR{t} *)view;\n\
               return alias->d1 + a->d{t} + ((struct RR *)r)->ttl;\n\
             }}"
        );
        let mut inits = String::new();
        for i in 1..=t {
            let _ = write!(inits, "a->d{i} = {i} * 3; ");
        }
        let _ = writeln!(
            src,
            "struct RR *mk_rr_{t}(void) {{\n\
               struct RR{t} *a = (struct RR{t} *)malloc(sizeof(struct RR{t}));\n\
               a->rrtype = {t}; a->ttl = 300; {inits}\n\
               return (struct RR *)a;\n\
             }}"
        );
    }
    // Legacy glue: wire-format views through trusted casts (the paper's
    // 380-of-530 trusted casts in bind, scaled down proportionally).
    for t in (1..=rrtypes).step_by(4) {
        let _ = writeln!(
            src,
            "int legacy_peek_{t}(char *wire) {{\n\
               struct RR{t} *v = (struct RR{t} * __TRUSTED)wire;\n\
               return v->rrtype;\n\
             }}"
        );
    }
    // The bulk of a real resolver: per-record helpers full of identity
    // casts through generic views and upcasts into container interfaces.
    for t in 1..=rrtypes {
        for r in 0..4 {
            let _ = writeln!(
                src,
                "int audit_{t}_{r}(struct RR{t} *a) {{\n\
                   struct RR{t} *x1 = (struct RR{t} *)a;\n\
                   struct RR{t} *x2 = (struct RR{t} *)x1;\n\
                   struct RR{t} *x3 = (struct RR{t} *)x2;\n\
                   struct RR{t} *x4 = (struct RR{t} *)x3;\n\
                   struct RR{t} *x5 = (struct RR{t} *)x4;\n\
                   struct RR{t} *x6 = (struct RR{t} *)x5;\n\
                   struct RR{t} *x7 = (struct RR{t} *)x6;\n\
                   struct RR{t} *x8 = (struct RR{t} *)x7;\n\
                   struct RR *u1 = (struct RR *)a;\n\
                   struct RR *u2 = (struct RR *)x3;\n\
                   struct RR *u3 = (struct RR *)x6;\n\
                   void *g1 = (void *)a;\n\
                   void *g2 = (void *)u1;\n\
                   return x8->ttl + u2->rrtype + u3->rrtype + (g1 != 0) + (g2 != 0);\n\
                 }}"
            );
        }
    }
    let _ = writeln!(
        src,
        "int serialize(struct RR *r) {{\n  switch (r->rrtype) {{"
    );
    for t in 1..=rrtypes {
        let _ = writeln!(src, "    case {t}: return serialize_{t}(r);");
    }
    let _ = writeln!(src, "    default: return 0;\n  }}\n}}");
    let _ = writeln!(
        src,
        "struct msghdr {{ char *base; long len; }};\n\
         extern long sendmsg_like(struct msghdr *m);\n\
         int name_hash(char *q, int len) {{\n\
           int h = 0;\n\
           /* several passes model compression-pointer chasing */\n\
           for (int pass = 0; pass < 8; pass++) {{\n\
             int label = 0;\n\
             for (int i = 0; i < len; i++) {{\n\
               if (q[i] == '.') {{ label++; continue; }}\n\
               if (q[i] == 0) break;\n\
               h = (h * 131 + q[i] + label + pass) & 0x7fffffff;\n\
             }}\n\
           }}\n\
           return h;\n\
         }}\n\
         int main(void) {{\n\
           struct RR *zone[{rrtypes}];\n\
           {ctors}\n\
           char query[64];\n\
           char resp[128];\n\
           long n;\n\
           int answered = 0;\n\
           while ((n = net_recv(query, 64)) > 0) {{\n\
             /* Wire-format header view of the raw packet (trusted cast, as\n\
                in the paper's bind port). */\n\
             struct Hdr *h = (struct Hdr * __TRUSTED)query;\n\
             int id = h->id;\n\
             int hash = name_hash(query + 8, (int)n - 8);\n\
             int idx = hash % {rrtypes};\n\
             if (idx < 0) idx = -idx;\n\
             int rdata = serialize(zone[idx]) + legacy_peek_1(query);\n\
             int m = sprintf(resp, \"%x: ans type=%d rdata=%d\\r\\n\", id, zone[idx]->rrtype, rdata);\n\
             struct msghdr mh;\n\
             mh.base = resp + 0;\n\
             mh.len = m;\n\
             sendmsg_like(&mh);\n\
             answered++;\n\
           }}\n\
           return answered > 0 ? 0 : 1;\n\
         }}",
        rrtypes = rrtypes,
        ctors = (1..=rrtypes)
            .map(|t| format!("zone[{}] = mk_rr_{t}();", t - 1))
            .collect::<Vec<_>>()
            .join("\n           ")
    );
    let mut qs = Vec::new();
    for i in 0..queries {
        qs.push(format!("QQQQQQQQwww.host{}.example{}.com", i % 23, i % 5));
    }
    Workload::new("bind", src)
        .with_input(commands(&qs))
        .with_paper(PaperStats {
            loc: Some(336_660),
            pct: Some((79, 21, 0, 0)),
            ccured_ratio: Some(1.81),
            valgrind_ratio: Some(129.0),
        })
}

/// The OpenSSL `cast` cipher kernel: byte-pointer Feistel rounds with S-box
/// lookups — the paper's heaviest CPU ratio (1.87).
pub fn openssl_cast(blocks: u32) -> Workload {
    let src = format!(
        "extern long sim_rand(void);\n\
         extern void *malloc(unsigned long n);\n\
         unsigned int sbox[256];\n\
         void init_sbox(void) {{\n\
           for (int i = 0; i < 256; i++)\n\
             sbox[i] = (unsigned int)((i * 2654435761u) ^ (i << 13));\n\
         }}\n\
         void encrypt_block(char *blk, unsigned int k0, unsigned int k1) {{\n\
           /* Feistel-style rounds chained through the byte buffer, as in\n\
              OpenSSL's block-mode glue (byte-pointer heavy). */\n\
           for (int round = 0; round < 8; round++) {{\n\
             char prev = blk[7];\n\
             for (int i = 0; i < 8; i++) {{\n\
               unsigned int f = sbox[(unsigned int)(blk[i] ^ prev ^ (char)k0) & 0xff];\n\
               prev = blk[i];\n\
               blk[i] = (char)(f ^ (f >> 8) ^ k1);\n\
             }}\n\
           }}\n\
         }}\n\
         int main(void) {{\n\
           init_sbox();\n\
           char *buf = (char *)malloc(8 * {blocks});\n\
           for (int i = 0; i < 8 * {blocks}; i++) buf[i] = (char)(sim_rand() & 0x7f);\n\
           for (int b = 0; b < {blocks}; b++) encrypt_block(buf + 8 * b, 0xA5A5A5A5u, 0x5A5A5A5Au);\n\
           int h = 0;\n\
           for (int i = 0; i < 8 * {blocks}; i++) h = (h * 31 + buf[i]) & 0x7fffffff;\n\
           return h >= 0 ? 0 : 1;\n\
         }}"
    );
    Workload::new("openssl_cast", src)
        .without_wrappers()
        .with_paper(PaperStats {
            loc: Some(177_426),
            pct: Some((67, 27, 0, 6)),
            ccured_ratio: Some(1.87),
            valgrind_ratio: Some(48.7),
        })
}

/// The OpenSSL `bn` bignum kernel: limb-array multiply/reduce — word
/// arithmetic with little pointer traffic (paper ratio 1.01).
pub fn openssl_bn(ops: u32) -> Workload {
    let src = format!(
        "extern long sim_rand(void);\n\
         int main(void) {{\n\
           unsigned long a[8];\n\
           unsigned long b[8];\n\
           unsigned long r[16];\n\
           for (int i = 0; i < 8; i++) {{\n\
             a[i] = (unsigned long)sim_rand() | 1;\n\
             b[i] = (unsigned long)sim_rand() | 1;\n\
           }}\n\
           unsigned long acc = 0;\n\
           for (int op = 0; op < {ops}; op++) {{\n\
             for (int i = 0; i < 16; i++) r[i] = 0;\n\
             for (int i = 0; i < 8; i++) {{\n\
               unsigned long carry = 0;\n\
               unsigned long ai = a[i];\n\
               for (int j = 0; j < 8; j++) {{\n\
                 unsigned long t = ai * b[j] + r[i + j] + carry;\n\
                 r[i + j] = t & 0xfffffffful;\n\
                 carry = t >> 32;\n\
               }}\n\
               r[i + 8] += carry;\n\
             }}\n\
             acc ^= r[7];\n\
             a[op % 8] = (r[3] | 1);\n\
           }}\n\
           return acc != 0 ? 0 : 1;\n\
         }}"
    );
    Workload::new("openssl_bn", src)
        .without_wrappers()
        .with_paper(PaperStats {
            ccured_ratio: Some(1.01),
            valgrind_ratio: Some(72.0),
            ..PaperStats::default()
        })
}

/// The OpenSSH analogue: a packet layer (length framing, running MAC)
/// that encrypts payloads with the cipher kernel; `server` answers echo
/// requests, the client generates them.
pub fn openssh_like(packets: u32, server: bool) -> Workload {
    let role = if server { "server" } else { "client" };
    let src = "extern long net_recv(char *buf, long cap);\n\
         extern long net_send(char *buf, long n);\n\
         extern long sim_rand(void);\n\
         struct msghdr { char *base; long len; };\n\
         extern long sendmsg_like(struct msghdr *m);\n\
         unsigned int mac_state;\n\
         void mac_update(char *buf, int n) {\n\
           for (int i = 0; i < n; i++)\n\
             mac_state = (mac_state * 33 + (unsigned int)(buf[i] & 0xff)) & 0x7fffffffu;\n\
         }\n\
         void xor_crypt(char *buf, int n, unsigned int key) {\n\
           for (int i = 0; i < n; i++)\n\
             buf[i] = (char)(buf[i] ^ (char)((key >> (8 * (i % 4))) & 0x3f));\n\
         }\n\
         int main(void) {\n\
           char pkt[64];\n\
           mac_state = 5381;\n\
           long n;\n\
           int handled = 0;\n\
           while ((n = net_recv(pkt, 64)) > 0) {\n\
             xor_crypt(pkt, (int)n, 0x1B2E3C4Du);\n\
             mac_update(pkt, (int)n);\n\
             xor_crypt(pkt, (int)n, 0x1B2E3C4Du);\n\
             struct msghdr mh;\n\
             mh.base = pkt + 0;\n\
             mh.len = n;\n\
             sendmsg_like(&mh);\n\
             handled++;\n\
           }\n\
           return handled > 0 ? 0 : 1;\n\
         }"
    .to_string();
    let mut pkts = Vec::new();
    for i in 0..packets {
        pkts.push(format!(
            "SSH2 {role} packet {i:04} payload {}",
            i * 37 % 911
        ));
    }
    Workload::new(format!("openssh_{role}"), src)
        .with_input(commands(&pkts))
        .with_paper(PaperStats {
            loc: Some(65_250),
            pct: Some((70, 28, 0, 3)),
            ccured_ratio: Some(if server { 1.15 } else { 1.22 }),
            valgrind_ratio: Some(22.1),
        })
}

/// The Linux-driver rows of Figure 9: a `pcnet32`-style ring-buffer NIC
/// driver analogue moving packets through DMA-style descriptor rings.
pub fn pcnet32(packets: u32) -> Workload {
    let src = r#"
extern long net_recv(char *buf, long cap);
extern long net_send(char *buf, long n);

struct Desc {
    char data[64];
    int len;
    int owned;
};

int main(void) {
    struct Desc ring[8];
    for (int i = 0; i < 8; i++) { ring[i].owned = 0; ring[i].len = 0; }
    int head = 0;
    long n;
    int moved = 0;
    while ((n = net_recv(ring[head].data, 64)) > 0) {
        ring[head].len = (int)n;
        ring[head].owned = 1;
        /* "interrupt handler": drain owned descriptors */
        for (int i = 0; i < 8; i++) {
            if (ring[i].owned) {
                net_send(ring[i].data, ring[i].len);
                ring[i].owned = 0;
                moved++;
            }
        }
        head = (head + 1) % 8;
    }
    return moved > 0 ? 0 : 1;
}
"#;
    let mut pkts = Vec::new();
    for i in 0..packets {
        pkts.push(format!("frame {i} {}", "ab".repeat((i as usize % 8) + 4)));
    }
    Workload::new("pcnet32", src)
        .with_input(commands(&pkts))
        .with_paper(PaperStats {
            loc: Some(1661),
            pct: Some((92, 8, 0, 0)),
            ccured_ratio: Some(0.99),
            valgrind_ratio: None,
        })
}

/// The `sbull` ramdisk block-driver analogue: sector reads/writes over a
/// byte store.
pub fn sbull(ops: u32) -> Workload {
    let src = format!(
        "extern void *malloc(unsigned long n);\n\
         extern long sim_rand(void);\n\
         extern void sim_io(long units);\n\
         int main(void) {{\n\
           char *disk = (char *)malloc(64 * 16);\n\
           for (int i = 0; i < 64 * 16; i++) disk[i] = 0;\n\
           char sector[16];\n\
           int h = 0;\n\
           for (int op = 0; op < {ops}; op++) {{\n\
             int s = (int)(sim_rand() % 64);\n\
             if (op % 2 == 0) {{\n\
               for (int i = 0; i < 16; i++) sector[i] = (char)((op + i) & 0x7f);\n\
               for (int i = 0; i < 16; i++) disk[s * 16 + i] = sector[i];\n\
             }} else {{\n\
               for (int i = 0; i < 16; i++) sector[i] = disk[s * 16 + i];\n\
               for (int i = 0; i < 16; i++) h = (h * 31 + sector[i]) & 0x7fffffff;\n\
             }}\n\
             sim_io(1);\n\
           }}\n\
           return h >= 0 ? 0 : 1;\n\
         }}"
    );
    Workload::new("sbull", src)
        .without_wrappers()
        .with_paper(PaperStats {
            loc: Some(1013),
            pct: Some((85, 15, 0, 0)),
            ccured_ratio: Some(1.00),
            valgrind_ratio: None,
        })
}

/// The paper's "ssh client without curing the OpenSSL library"
/// experiment: the client is cured, the SSL library is not; its interface
/// passes structures with nested pointers in both directions, handled by
/// the compatible SPLIT representation instead of wrappers.
pub fn ssh_client_uncured_ssl(packets: u32) -> Workload {
    let src = r#"
extern long net_recv(char *buf, long cap);
extern long net_send(char *buf, long n);

/* The uncured library's own structures (native C layout). */
struct sslbuf { char *data; long len; };
struct ssl { struct sslbuf *in; struct sslbuf *out; int state; };
extern struct ssl *SSL_new(void);
extern long SSL_write(struct ssl *s, char *buf, long n);
extern long SSL_read(struct ssl *s, char *buf, long cap);

int main(void) {
    struct ssl *s = SSL_new();
    if (s == 0) return 1;
    char pkt[64];
    char clear[64];
    long n;
    int exchanged = 0;
    while ((n = net_recv(pkt, 64)) > 0) {
        SSL_write(s, pkt, n);
        /* Peek directly into the library's buffer chain: the cured client
           walks ssl -> out -> data without deep copies (SPLIT types). */
        if (s->out->len != n) return 2;
        if (s->out->data[0] == pkt[0]) return 3; /* must be ciphered */
        long m = SSL_read(s, clear, 64);
        if (m != n) return 4;
        for (long i = 0; i < m; i++)
            if (clear[i] != pkt[i]) return 5;
        net_send(clear, m);
        exchanged++;
    }
    return exchanged > 0 ? 0 : 1;
}
"#;
    let mut pkts = Vec::new();
    for i in 0..packets {
        pkts.push(format!("handshake {i} payload {:04}", i * 31 % 7919));
    }
    Workload::new("ssh_uncured_ssl", src)
        .with_input(commands(&pkts))
        .with_paper(PaperStats {
            ccured_ratio: None,
            valgrind_ratio: None,
            loc: None,
            pct: None,
        })
}

/// The Figure 9 corpus at bench scale.
pub fn figure9_corpus() -> Vec<Workload> {
    vec![
        pcnet32(40),
        sbull(60),
        ftpd(10, false),
        openssl_cast(40),
        openssl_bn(30),
        openssh_like(40, false),
        openssh_like(40, true),
        sendmail_like(30, false),
        bind_like(40, 12),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use ccured_infer::InferOptions;

    fn roundtrip(w: &Workload) {
        let o = runner::run_original(w).expect("frontend");
        assert!(o.ok(), "{}: original failed: {:?}", w.name, o.error);
        assert_eq!(o.exit, w.expect_exit, "{}", w.name);
        let c = runner::run_cured(w, &InferOptions::default())
            .unwrap_or_else(|e| panic!("{}: cure failed: {e}", w.name));
        assert!(
            c.stats.ok(),
            "{}: cured failed: {:?}",
            w.name,
            c.stats.error
        );
        assert_eq!(c.stats.exit, w.expect_exit, "{}", w.name);
        assert_eq!(o.output, c.stats.output, "{}: outputs differ", w.name);
    }

    #[test]
    fn ftpd_benign_roundtrips() {
        roundtrip(&ftpd(3, false));
    }

    #[test]
    fn ftpd_exploit_flips_admin_in_original_but_not_cured() {
        let w = ftpd(3, true);
        // Original: the overflow silently grants admin (exit 42).
        let o = runner::run_original(&w).expect("frontend");
        assert!(o.ok(), "original must run to completion: {:?}", o.error);
        assert_eq!(o.exit, 42, "the exploit silently succeeds in plain C");
        // Cured: the wrapper bounds check stops the overflow.
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        let e = c.stats.error.expect("cured must stop the exploit");
        assert!(e.is_check_failure(), "stopped by a CCured check: {e}");
    }

    #[test]
    fn sendmail_benign_roundtrips() {
        roundtrip(&sendmail_like(4, false));
    }

    #[test]
    fn sendmail_exploit_caught_when_cured() {
        let w = sendmail_like(4, true);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        let e = c.stats.error.expect("cured must stop the header overflow");
        assert!(e.is_check_failure(), "{e}");
    }

    #[test]
    fn bind_roundtrips_with_trusted_cast() {
        let w = bind_like(5, 6);
        roundtrip(&w);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        // Trusted wire casts: the header view plus one legacy peek per four
        // record types (rrtypes=6 -> t in {1, 5}).
        assert_eq!(c.cured.report.trusted_casts, 3);
        assert!(c.cured.report.census.downcast >= 6);
        assert!(
            c.cured.report.census.identical >= 6 * 4,
            "identity casts counted"
        );
        assert_eq!(c.cured.report.kind_counts.wild, 0);
    }

    #[test]
    fn openssl_kernels_roundtrip() {
        roundtrip(&openssl_cast(6));
        roundtrip(&openssl_bn(4));
    }

    #[test]
    fn openssh_roundtrips() {
        roundtrip(&openssh_like(4, true));
        roundtrip(&openssh_like(4, false));
    }

    #[test]
    fn ssh_uncured_ssl_walks_library_structures() {
        let w = ssh_client_uncured_ssl(4);
        let o = runner::run_original(&w).expect("frontend");
        assert!(o.ok(), "original failed: {:?}", o.error);
        assert_eq!(o.exit, 0);
        let opts = InferOptions {
            split_at_boundaries: true,
            ..InferOptions::default()
        };
        let c = runner::run_cured(&w, &opts).expect("cure");
        assert!(c.stats.ok(), "cured failed: {:?}", c.stats.error);
        assert_eq!(c.stats.exit, 0);
        assert_eq!(o.output, c.stats.output);
        // The boundary seeds a small number of split qualifiers (the
        // paper's "only 3% of pointers had split types").
        assert!(c.cured.solution.split_count() > 0, "split types in use");
        assert!(
            c.stats.counters.meta_ops > 0,
            "metadata maintained at the boundary"
        );
    }

    #[test]
    fn drivers_roundtrip() {
        roundtrip(&pcnet32(4));
        roundtrip(&sbull(6));
    }
}
