//! Spec95-style CPU-bound workloads: `compress` (bit-twiddling buffer
//! walks) and the paper's star witness `ijpeg`, "written in an
//! object-oriented style with a subtyping hierarchy of about 40 types and
//! 100 downcasts" (Section 5, *Run-time Type Information*).

use crate::{PaperStats, Workload};
use std::fmt::Write as _;

/// An RLE/checksum compressor over pseudo-random byte buffers: sequential
/// pointer walks over `char` arrays, the Spec95 `compress` discipline.
pub fn compress_like(rounds: u32, kb: u32) -> Workload {
    let n = kb * 1024;
    let src = format!(
        "extern long sim_rand(void);\n\
         extern void *malloc(unsigned long n);\n\
         int compress(char *in, char *out, int n) {{\n\
           char *p = in;\n\
           char *end = in + n;\n\
           char *o = out;\n\
           int emitted = 0;\n\
           while (p < end) {{\n\
             char c = *p;\n\
             int run = 1;\n\
             p++;\n\
             while (p < end && *p == c && run < 255) {{ run++; p++; }}\n\
             *o = c; o++;\n\
             *o = (char)run; o++;\n\
             emitted += 2;\n\
           }}\n\
           return emitted;\n\
         }}\n\
         int checksum(char *buf, int n) {{\n\
           int h = 5381;\n\
           for (int i = 0; i < n; i++) h = ((h << 5) + h + buf[i]) & 0x7fffffff;\n\
           return h;\n\
         }}\n\
         int main(void) {{\n\
           char *in = (char *)malloc({n});\n\
           char *out = (char *)malloc(2 * {n});\n\
           int h = 0;\n\
           for (int r = 0; r < {rounds}; r++) {{\n\
             for (int i = 0; i < {n}; i++) in[i] = (char)((sim_rand() >> 3) & 7);\n\
             int m = compress(in, out, {n});\n\
             h = (h + checksum(out, m)) & 0x7fffffff;\n\
           }}\n\
           return h > 0 ? 0 : 1;\n\
         }}"
    );
    Workload::new("compress", src)
        .without_wrappers()
        .with_paper(PaperStats {
            ccured_ratio: Some(1.3),
            ..PaperStats::default()
        })
}

/// The `ijpeg` reproduction: a `types`-deep physical-subtype chain with two
/// checked-downcast accessors per type (≈ `2 * types` downcast sites),
/// driven through a `void*`-free but thoroughly polymorphic dispatch loop.
///
/// With RTTI enabled, inference assigns RTTI to the dispatch pointers and
/// nothing is WILD; in original-CCured mode the same program drowns in WILD
/// pointers — the paper's 60%-WILD vs 1%-RTTI experiment.
pub fn ijpeg_oo(types: u32, rounds: u32) -> Workload {
    let types = types.max(2);
    let mut src = String::new();
    let _ = writeln!(src, "extern void *malloc(unsigned long n);");
    // Every node carries a scan-line buffer: in original-CCured mode the
    // WILD poisoning of the hierarchy spreads into these buffer pointers
    // too (the paper's "60% of the pointers being WILD"), while RTTI stays
    // confined to the dispatch pointers.
    let _ = writeln!(src, "struct Node {{ int kind; int payload; int *data; }};");
    for d in 1..=types {
        let mut fields = String::from("int kind; int payload; int *data;");
        for i in 1..=d {
            let _ = write!(fields, " long x{i};");
        }
        let _ = writeln!(src, "struct T{d} {{ {fields} }};");
    }
    // Standalone numeric pipeline: these pointers never meet the OO
    // hierarchy, so they stay typed even in original-CCured mode (the
    // reason the paper's ijpeg was 60% — not 100% — WILD).
    for d in 1..=types {
        let _ = writeln!(
            src,
            "long stage_{d}(int *inrow, int *outrow, int n) {{\n\
               int *a = inrow;\n\
               int *b = outrow;\n\
               long acc = 0;\n\
               for (int i = 0; i < n; i++) {{\n\
                 b[i] = ((a[i] * {d} + 3) >> 1) & 0xffff;\n\
                 acc += b[i];\n\
               }}\n\
               return acc;\n\
             }}"
        );
    }
    // Numeric scan-line kernels: plain buffer pointers, no casts.
    for d in 1..=types {
        let _ = writeln!(
            src,
            "long filter_{d}(int *row, int n) {{\n\
               int *p = row;\n\
               int *end = row + n;\n\
               long acc = 0;\n\
               while (p < end) {{ acc += *p + {d}; p++; }}\n\
               return acc;\n\
             }}"
        );
    }
    // Two accessors per type, each with a checked downcast.
    for d in 1..=types {
        let _ = writeln!(
            src,
            "long head_{d}(struct Node *n) {{\n\
               struct Node *view = (struct Node *)n;\n\
               struct T{d} *t = (struct T{d} *)view;\n\
               struct T{d} *same = (struct T{d} *)t;\n\
               struct T{d} *alias = (struct T{d} *)same;\n\
               return alias->x1;\n\
             }}"
        );
        let _ = writeln!(
            src,
            "long tail_{d}(struct Node *n) {{\n\
               struct T{d} *t = (struct T{d} *)n;\n\
               return t->x{d} + t->payload;\n\
             }}"
        );
    }
    // Constructors: allocate the exact subtype, publish as Node*.
    for d in 1..=types {
        let mut inits = String::new();
        for i in 1..=d {
            let _ = write!(inits, "t->x{i} = {i}; ");
        }
        let _ = writeln!(
            src,
            "struct Node *mk_{d}(int payload) {{\n\
               struct T{d} *t = (struct T{d} *)malloc(sizeof(struct T{d}));\n\
               t->kind = {d}; t->payload = payload; {inits}\n\
               t->data = (int *)malloc(8 * sizeof(int));\n\
               for (int i = 0; i < 8; i++) t->data[i] = i + {d};\n\
               return (struct Node *)t;\n\
             }}"
        );
    }
    // Dynamic dispatch on the kind tag. Each case also downcasts to an
    // *ancestor* of the dynamic type (real OO code checks against base
    // classes), which makes the RTTI subtype walk traverse real chains.
    let _ = writeln!(
        src,
        "long process(struct Node *n) {{\n  switch (n->kind) {{"
    );
    for d in 1..=types {
        let anc = (d / 2).max(1);
        let _ = writeln!(
            src,
            "    case {d}: return head_{d}(n) + tail_{d}(n) + head_{anc}(n) + filter_{d}(n->data, 8);"
        );
    }
    let _ = writeln!(src, "    default: return 0;\n  }}\n}}");
    let _ = writeln!(
        src,
        "extern int printf(char *fmt, ...);\n\
         long run_pipeline(int n) {{\n\
           int *front = (int *)malloc(n * sizeof(int));\n\
           int *back = (int *)malloc(n * sizeof(int));\n\
           for (int i = 0; i < n; i++) front[i] = i;\n\
           long acc = 0;\n\
           {stages}\n\
           return acc;\n\
         }}\n\
         int main(void) {{\n\
           struct Node *pool[{types}];\n\
           for (int i = 0; i < {types}; i++) pool[i] = mk_{{}}(i);\n\
           long s = 0;\n\
           for (int r = 0; r < {rounds}; r++) {{\n\
             for (int i = 0; i < {types}; i++)\n\
               s += process(pool[i]);\n\
             if ((r & 3) == 0) s += run_pipeline(12);\n\
           }}\n\
           return s > 0 ? 0 : 1;\n\
         }}",
        stages = (1..=types)
            .map(|d| format!("acc += stage_{d}(front, back, n); acc += stage_{d}(back, front, n);"))
            .collect::<Vec<_>>()
            .join("\n           ")
    );
    // Patch the constructor dispatch in main: one call per type.
    let ctor_calls: String = (1..=types)
        .map(|d| format!("  pool[{}] = mk_{d}({});\n", d - 1, d))
        .collect();
    let src = src.replace(
        &format!("for (int i = 0; i < {types}; i++) pool[i] = mk_{{}}(i);"),
        &format!("/* one constructor per subtype */\n{ctor_calls}"),
    );
    Workload::new("ijpeg", src)
        .without_wrappers()
        .with_paper(PaperStats {
            ccured_ratio: Some(1.45),
            ..PaperStats::default()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use ccured_infer::InferOptions;

    #[test]
    fn compress_runs_identically() {
        let w = compress_like(2, 1);
        let o = runner::run_original(&w).expect("frontend");
        assert!(o.ok(), "{:?}", o.error);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        assert!(c.stats.ok(), "{:?}", c.stats.error);
        assert_eq!(o.exit, c.stats.exit);
        // compress is SEQ-heavy: bounds checks dominate.
        assert!(c.stats.counters.seq_bounds_checks > 0);
        assert_eq!(c.cured.report.kind_counts.wild, 0);
    }

    #[test]
    fn ijpeg_runs_with_rtti_and_no_wild() {
        let w = ijpeg_oo(8, 3);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        assert!(c.stats.ok(), "{:?}", c.stats.error);
        assert_eq!(c.stats.exit, 0);
        assert_eq!(c.cured.report.kind_counts.wild, 0, "RTTI removes all WILD");
        assert!(c.cured.report.kind_counts.rtti > 0);
        assert!(c.stats.counters.rtti_checks > 0);
    }

    #[test]
    fn ijpeg_census_matches_structure() {
        let w = ijpeg_oo(8, 1);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        // Two downcast accessors per type.
        assert_eq!(c.cured.report.census.downcast, 16);
        assert_eq!(c.cured.report.census.bad, 0);
        assert!(c.cured.report.census.upcast >= 8, "constructor upcasts");
    }

    #[test]
    fn ijpeg_original_ccured_goes_wild() {
        let w = ijpeg_oo(8, 1);
        let c = runner::run_cured(&w, &InferOptions::original_ccured()).expect("cure");
        let counts = c.cured.report.kind_counts;
        assert!(
            counts.wild * 100 / counts.total().max(1) >= 30,
            "original CCured drowns ijpeg in WILD pointers: {counts:?}"
        );
        // The program still runs correctly through WILD pointers.
        assert!(c.stats.ok(), "{:?}", c.stats.error);
        assert!(c.stats.counters.wild_bounds_checks > 0);
    }
}
