//! Olden-style linked-structure workloads: `em3d` (electromagnetic wave
//! propagation over irregular node graphs — the pointer-store-heavy outlier
//! of the paper's split-overhead experiment, +58%) and `treeadd`.

use crate::{PaperStats, Workload};

/// `em3d`: two node lists (E and H fields); each node's value is updated
/// from a list of pointers into the other list. Dominated by loads and
/// stores of pointers — the worst case for SPLIT metadata upkeep.
pub fn em3d(nodes: u32, degree: u32, iters: u32) -> Workload {
    let src = format!(
        "extern void *malloc(unsigned long n);\n\
         extern long sim_rand(void);\n\
         struct Node {{\n\
           double value;\n\
           struct Node **from;\n\
           double *coeffs;\n\
           int degree;\n\
           struct Node *next;\n\
         }};\n\
         struct Node *build_list(int n, int degree) {{\n\
           struct Node *head = 0;\n\
           for (int i = 0; i < n; i++) {{\n\
             struct Node *node = (struct Node *)malloc(sizeof(struct Node));\n\
             node->value = (double)(i + 1);\n\
             node->degree = degree;\n\
             node->from = (struct Node **)malloc(degree * sizeof(struct Node *));\n\
             node->coeffs = (double *)malloc(degree * sizeof(double));\n\
             for (int d = 0; d < degree; d++) {{\n\
               node->from[d] = 0;\n\
               node->coeffs[d] = 0.5;\n\
             }}\n\
             node->next = head;\n\
             head = node;\n\
           }}\n\
           return head;\n\
         }}\n\
         void wire(struct Node *dst, struct Node *src_list, int n) {{\n\
           for (struct Node *d = dst; d != 0; d = d->next) {{\n\
             for (int i = 0; i < d->degree; i++) {{\n\
               int hop = (int)(sim_rand() % n);\n\
               struct Node *s = src_list;\n\
               for (int j = 0; j < hop && s->next != 0; j++) s = s->next;\n\
               d->from[i] = s;\n\
             }}\n\
           }}\n\
         }}\n\
         void propagate(struct Node *list) {{\n\
           for (struct Node *n = list; n != 0; n = n->next) {{\n\
             double acc = n->value;\n\
             for (int i = 0; i < n->degree; i++)\n\
               acc = acc - n->coeffs[i] * n->from[i]->value;\n\
             n->value = acc;\n\
           }}\n\
         }}\n\
         int main(void) {{\n\
           struct Node *e = build_list({nodes}, {degree});\n\
           struct Node *h = build_list({nodes}, {degree});\n\
           wire(e, h, {nodes});\n\
           wire(h, e, {nodes});\n\
           for (int it = 0; it < {iters}; it++) {{\n\
             propagate(e);\n\
             propagate(h);\n\
           }}\n\
           double total = 0.0;\n\
           for (struct Node *n = e; n != 0; n = n->next) total = total + n->value;\n\
           return total == 0.0 ? 1 : 0;\n\
         }}"
    );
    Workload::new("em3d", src)
        .without_wrappers()
        .with_paper(PaperStats {
            ccured_ratio: Some(1.58),
            ..PaperStats::default()
        })
}

/// `treeadd`: builds a binary tree on the heap and sums it recursively.
pub fn treeadd(depth: u32) -> Workload {
    let src = format!(
        "extern void *malloc(unsigned long n);\n\
         struct Tree {{\n\
           int value;\n\
           struct Tree *left;\n\
           struct Tree *right;\n\
         }};\n\
         struct Tree *build(int depth) {{\n\
           struct Tree *t = (struct Tree *)malloc(sizeof(struct Tree));\n\
           t->value = 1;\n\
           if (depth <= 1) {{\n\
             t->left = 0;\n\
             t->right = 0;\n\
           }} else {{\n\
             t->left = build(depth - 1);\n\
             t->right = build(depth - 1);\n\
           }}\n\
           return t;\n\
         }}\n\
         int add(struct Tree *t) {{\n\
           if (t == 0) return 0;\n\
           return t->value + add(t->left) + add(t->right);\n\
         }}\n\
         int main(void) {{\n\
           struct Tree *t = build({depth});\n\
           int total = add(t);\n\
           int expect = (1 << {depth}) - 1;\n\
           return total == expect ? 0 : 1;\n\
         }}"
    );
    Workload::new("treeadd", src).without_wrappers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use ccured_infer::InferOptions;

    #[test]
    fn em3d_runs_both_modes() {
        let w = em3d(12, 3, 3);
        let o = runner::run_original(&w).expect("frontend");
        assert!(o.ok(), "{:?}", o.error);
        assert_eq!(o.exit, 0);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        assert!(c.stats.ok(), "{:?}", c.stats.error);
        assert_eq!(c.stats.exit, 0);
        assert_eq!(c.cured.report.kind_counts.wild, 0);
    }

    #[test]
    fn em3d_split_everything_pays_meta_ops() {
        let w = em3d(12, 3, 3);
        let plain = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        let split = runner::run_cured(
            &w,
            &InferOptions {
                split_everything: true,
                ..InferOptions::default()
            },
        )
        .expect("cure");
        assert_eq!(plain.stats.counters.meta_ops, 0);
        assert!(
            split.stats.counters.meta_ops > 100,
            "pointer-heavy em3d pays heavy metadata upkeep: {}",
            split.stats.counters.meta_ops
        );
    }

    #[test]
    fn treeadd_runs() {
        let w = treeadd(6);
        let o = runner::run_original(&w).expect("frontend");
        assert!(o.ok(), "{:?}", o.error);
        assert_eq!(o.exit, 0);
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        assert_eq!(c.stats.exit, 0);
    }
}
