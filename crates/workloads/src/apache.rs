//! The Apache-module workloads of paper Figure 8: nine request-processing
//! modules behind a shared server driver. Requests arrive through
//! `net_recv` and responses leave through `net_send`, so — as the paper
//! observes — the run-time checks are dwarfed by I/O for most modules.

use crate::{PaperStats, Workload};

/// Fixed request size used by the driver (one `net_recv` per request).
pub const REQ_BYTES: usize = 128;

fn driver(handler_body: &str, extra_decls: &str) -> String {
    format!(
        "{extra_decls}\n\
         extern long net_recv(char *buf, long cap);\n\
         extern long net_send(char *buf, long n);\n\
         extern long sim_rand(void);\n\
         extern void *malloc(unsigned long n);\n\
         /* Apache-style module registry: SAFE pointer scaffolding (config\n\
            chains are dereferenced, never indexed). */\n\
         struct ModuleConfig {{\n\
           int flags;\n\
           int priority;\n\
           struct ModuleConfig *next;\n\
           struct ModuleConfig *fallback;\n\
         }};\n\
         struct ServerRec {{\n\
           struct ModuleConfig *conf;\n\
           struct ServerRec *peer;\n\
           long served;\n\
           long bytes;\n\
         }};\n\
         struct ModuleConfig *mk_conf(int flags, struct ModuleConfig *next) {{\n\
           struct ModuleConfig *c = (struct ModuleConfig *)malloc(sizeof(struct ModuleConfig));\n\
           c->flags = flags;\n\
           c->priority = flags * 2;\n\
           c->next = next;\n\
           c->fallback = next;\n\
           return c;\n\
         }}\n\
         int conf_flags(struct ServerRec *s) {{\n\
           struct ModuleConfig *c = s->conf;\n\
           int acc = 0;\n\
           while (c != 0) {{ acc |= c->flags; c = c->next; }}\n\
           return acc;\n\
         }}\n\
         int handle(char *req, int len, char *resp, int cap) {{\n\
         {handler_body}\n\
         }}\n\
         int main(void) {{\n\
           struct ServerRec server;\n\
           struct ServerRec *srv = &server;\n\
           srv->conf = mk_conf(1, mk_conf(2, mk_conf(4, 0)));\n\
           srv->peer = srv;\n\
           srv->served = 0;\n\
           srv->bytes = 0;\n\
           char req[{REQ_BYTES}];\n\
           char resp[512];\n\
           long n;\n\
           int mask = conf_flags(srv);\n\
           while ((n = net_recv(req, {REQ_BYTES})) > 0) {{\n\
             int m = handle(req, (int)n, resp, 512);\n\
             if (m > 0 && (mask & 7) != 0) net_send(resp, m);\n\
             srv->peer->served++;\n\
             srv->bytes += n;\n\
           }}\n\
           return srv->served > 0 ? 0 : 1;\n\
         }}"
    )
}

/// Builds the input stream: `requests` fixed-size request records.
fn requests(requests: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(requests as usize * REQ_BYTES);
    for i in 0..requests {
        let line = format!(
            "GET /site/page{:03}.html?user=u{:02}&q=term{} HTTP/1.0\r\nHost: example\r\nCookie: track=tk{:04}\r\n\r\n",
            i % 200,
            i % 37,
            i % 11,
            i * 7 % 9973
        );
        let mut rec = line.into_bytes();
        rec.resize(REQ_BYTES - 1, b' ');
        rec.push(0);
        out.extend_from_slice(&rec);
    }
    out
}

fn module(name: &str, body: &str, decls: &str, n: u32, paper: PaperStats) -> Workload {
    Workload::new(name, driver(body, decls))
        .with_input(requests(n))
        .with_paper(paper)
}

fn paper(loc: u32, pct: (u32, u32, u32, u32), ratio: f64) -> PaperStats {
    PaperStats {
        loc: Some(loc),
        pct: Some(pct),
        ccured_ratio: Some(ratio),
        valgrind_ratio: None,
    }
}

/// `mod_asis`: sends the stored document as-is (straight copy).
pub fn asis(n: u32) -> Workload {
    module(
        "asis",
        "  /* the body send itself happens in Apache's (uncured) core */\n\
           int m = len < 32 ? len : 32;\n\
           for (int i = 0; i < m; i++) resp[i] = req[i];\n\
           return m;",
        "",
        n,
        paper(149, (72, 28, 0, 0), 0.96),
    )
}

/// `mod_expires`: appends an Expires header.
pub fn expires(n: u32) -> Workload {
    module(
        "expires",
        "  int m = len < 40 ? len : 40;\n\
           for (int i = 0; i < m; i++) resp[i] = req[i];\n\
           resp[m] = 0;\n\
           strcat(resp, \"Expires: Thu, 01 Dec 2033 16:00:00 GMT\\r\\n\");\n\
           return (int)strlen(resp);",
        "",
        n,
        paper(525, (77, 23, 0, 0), 1.00),
    )
}

/// `mod_gzip`: the CPU-heavy outlier — run-length "compression" per request.
pub fn gzip(n: u32) -> Workload {
    module(
        "gzip",
        "  char *o = resp;\n\
           char *p = req;\n\
           char *end = req + len;\n\
           int emitted = 0;\n\
           /* several passes to model deflate's work factor */\n\
           for (int pass = 0; pass < 6; pass++) {\n\
             p = req;\n\
             o = resp;\n\
             emitted = 0;\n\
             while (p < end && emitted + 2 < cap) {\n\
               char c = *p;\n\
               int run = 1;\n\
               p++;\n\
               while (p < end && *p == c && run < 250) { run++; p++; }\n\
               *o = c; o++;\n\
               *o = (char)run; o++;\n\
               emitted += 2;\n\
             }\n\
           }\n\
           return emitted;",
        "",
        n,
        paper(11648, (85, 15, 0, 0), 0.94),
    )
}

/// `mod_headers`: counts and normalizes header lines.
pub fn headers(n: u32) -> Workload {
    module(
        "headers",
        "  int lines = 0;\n\
           for (int i = 0; i + 1 < len; i++)\n\
             if (req[i] == '\\r' && req[i + 1] == '\\n') lines++;\n\
           return sprintf(resp, \"X-Header-Count: %d\\r\\n\", lines);",
        "extern int sprintf(char *buf, char *fmt, ...);",
        n,
        paper(281, (90, 10, 0, 0), 1.00),
    )
}

/// `mod_info`: formats a small status report.
pub fn info(n: u32) -> Workload {
    module(
        "info",
        "  int bytes = len;\n\
           int q = 0;\n\
           for (int i = 0; i < len; i++) if (req[i] == '?') q = 1;\n\
           return sprintf(resp, \"Info: %d bytes, query=%d\\r\\n\", bytes, q);",
        "extern int sprintf(char *buf, char *fmt, ...);",
        n,
        paper(786, (86, 14, 0, 0), 1.00),
    )
}

/// `mod_layout`: wraps the body with a site-wide prefix and suffix.
pub fn layout(n: u32) -> Workload {
    module(
        "layout",
        "  resp[0] = 0;\n\
           strcat(resp, \"<header/>\\n\");\n\
           int base = (int)strlen(resp);\n\
           int m = len < 80 ? len : 80;\n\
           for (int i = 0; i < m; i++) resp[base + i] = req[i];\n\
           resp[base + m] = 0;\n\
           strcat(resp, \"\\n<footer/>\\n\");\n\
           return (int)strlen(resp);",
        "",
        n,
        paper(309, (82, 18, 0, 0), 1.01),
    )
}

/// `mod_random`: picks a pseudo-random page id.
pub fn random(n: u32) -> Workload {
    module(
        "random",
        "  long r = sim_rand();\n\
           return sprintf(resp, \"Location: /rand/%d\\r\\n\", (int)(r % 100));",
        "extern int sprintf(char *buf, char *fmt, ...);",
        n,
        paper(131, (85, 15, 0, 0), 0.94),
    )
}

/// `mod_urlcount`: tallies URL path segments (string scanning).
pub fn urlcount(n: u32) -> Workload {
    module(
        "urlcount",
        "  int slashes = 0;\n\
           int depth = 0;\n\
           for (int i = 0; i < len; i++) {\n\
             if (req[i] == '/') { slashes++; depth++; }\n\
             if (req[i] == ' ' && depth > 0) break;\n\
           }\n\
           return sprintf(resp, \"X-Url-Depth: %d\\r\\n\", slashes);",
        "extern int sprintf(char *buf, char *fmt, ...);",
        n,
        paper(702, (87, 13, 0, 0), 1.02),
    )
}

/// `mod_usertrack`: extracts and hashes the tracking cookie.
pub fn usertrack(n: u32) -> Workload {
    module(
        "usertrack",
        "  int h = 5381;\n\
           char *c = strchr(req, 't');\n\
           if (c != 0) {\n\
             int i = 0;\n\
             while (c[i] != 0 && c[i] != '\\r' && i < 24) {\n\
               h = ((h << 5) + h + c[i]) & 0x7fffffff;\n\
               i++;\n\
             }\n\
           }\n\
           return sprintf(resp, \"Set-Cookie: track=%x\\r\\n\", h);",
        "extern int sprintf(char *buf, char *fmt, ...);",
        n,
        paper(409, (81, 19, 0, 0), 1.00),
    )
}

/// The WebStone row of Figure 8: "100 iterations of the WebStone 2.5
/// manyfiles benchmark with every request affected by the expires, gzip,
/// headers, urlcount and usertrack modules" — one driver pushing each
/// request through all five handlers.
pub fn webstone(n: u32) -> Workload {
    let src = "extern long net_recv(char *buf, long cap);\n\
extern long net_send(char *buf, long n);\n\
extern int sprintf(char *buf, char *fmt, ...);\n\
int h_expires(char *req, int len, char *resp, int cap) {\n\
    int m = len < 40 ? len : 40;\n\
    for (int i = 0; i < m; i++) resp[i] = req[i];\n\
    resp[m] = 0;\n\
    strcat(resp, \"Expires: never\\r\\n\");\n\
    return (int)strlen(resp);\n\
}\n\
int h_gzip(char *req, int len, char *resp, int cap) {\n\
    char *o = resp;\n\
    char *p = req;\n\
    char *end = req + len;\n\
    int emitted = 0;\n\
    while (p < end && emitted + 2 < cap) {\n\
        char c = *p;\n\
        int run = 1;\n\
        p++;\n\
        while (p < end && *p == c && run < 250) { run++; p++; }\n\
        *o = c; o++;\n\
        *o = (char)run; o++;\n\
        emitted += 2;\n\
    }\n\
    return emitted;\n\
}\n\
int h_headers(char *req, int len, char *resp, int cap) {\n\
    int lines = 0;\n\
    for (int i = 0; i + 1 < len; i++)\n\
        if (req[i] == '\\r' && req[i + 1] == '\\n') lines++;\n\
    return sprintf(resp, \"X-Header-Count: %d\\r\\n\", lines);\n\
}\n\
int h_urlcount(char *req, int len, char *resp, int cap) {\n\
    int slashes = 0;\n\
    for (int i = 0; i < len; i++) if (req[i] == '/') slashes++;\n\
    return sprintf(resp, \"X-Url-Depth: %d\\r\\n\", slashes);\n\
}\n\
int h_usertrack(char *req, int len, char *resp, int cap) {\n\
    int h = 5381;\n\
    char *c = strchr(req, 't');\n\
    if (c != 0) {\n\
        int i = 0;\n\
        while (c[i] != 0 && c[i] != '\\r' && i < 24) {\n\
            h = ((h << 5) + h + c[i]) & 0x7fffffff;\n\
            i++;\n\
        }\n\
    }\n\
    return sprintf(resp, \"Set-Cookie: track=%x\\r\\n\", h);\n\
}\n\
int main(void) {\n\
    char req[128];\n\
    char resp[512];\n\
    long n;\n\
    int served = 0;\n\
    while ((n = net_recv(req, 128)) > 0) {\n\
        int m = h_expires(req, (int)n, resp, 512);\n\
        net_send(resp, m);\n\
        m = h_gzip(req, (int)n, resp, 512);\n\
        net_send(resp, m);\n\
        m = h_headers(req, (int)n, resp, 512);\n\
        net_send(resp, m);\n\
        m = h_urlcount(req, (int)n, resp, 512);\n\
        net_send(resp, m);\n\
        m = h_usertrack(req, (int)n, resp, 512);\n\
        net_send(resp, m);\n\
        served++;\n\
    }\n\
    return served > 0 ? 0 : 1;\n\
}\n";
    Workload::new("webstone", src)
        .with_input(requests(n))
        .with_paper(PaperStats {
            loc: None,
            pct: None,
            ccured_ratio: Some(1.04),
            valgrind_ratio: None,
        })
}

/// All nine Figure 8 modules at the given request count.
pub fn all_modules(n: u32) -> Vec<Workload> {
    vec![
        asis(n),
        expires(n),
        gzip(n),
        headers(n),
        info(n),
        layout(n),
        random(n),
        urlcount(n),
        usertrack(n),
        webstone(n),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use ccured_infer::InferOptions;

    #[test]
    fn all_modules_run_in_both_modes() {
        for w in all_modules(3) {
            let o = runner::run_original(&w).expect("frontend");
            assert!(o.ok(), "{}: original failed: {:?}", w.name, o.error);
            assert_eq!(o.exit, 0, "{}", w.name);
            let c = runner::run_cured(&w, &InferOptions::default())
                .unwrap_or_else(|e| panic!("{}: cure failed: {e}", w.name));
            assert!(
                c.stats.ok(),
                "{}: cured failed: {:?}",
                w.name,
                c.stats.error
            );
            assert_eq!(c.stats.exit, 0, "{}", w.name);
            assert_eq!(o.output, c.stats.output, "{}: outputs differ", w.name);
            assert_eq!(c.cured.report.kind_counts.wild, 0, "{}: no WILD", w.name);
        }
    }

    #[test]
    fn request_stream_shape() {
        let input = requests(5);
        assert_eq!(input.len(), 5 * REQ_BYTES);
    }

    #[test]
    fn modules_are_io_bound() {
        // The defining property of Figure 8: check cost is dwarfed by I/O.
        let w = asis(5);
        let r = runner::measure(&w, &InferOptions::default()).expect("measure");
        assert!(
            r.ccured < 1.15,
            "asis must be near 1.0 like the paper's 0.96: {}",
            r.ccured
        );
    }
}
