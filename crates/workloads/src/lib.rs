//! # ccured-workloads
//!
//! The benchmark corpus: C programs (in the ccured-rs subset) that
//! reproduce the *pointer discipline* of every workload in the paper's
//! evaluation — the cast profile, pointer-kind mix, object-oriented
//! hierarchies, linked structures, and I/O balance that determine CCured's
//! behaviour — plus a [`runner`] that cures and executes them in every
//! instrumentation mode and reports cost-model ratios.
//!
//! | paper workload | module |
//! |---|---|
//! | Spec95 `ijpeg` (OO, ~40-type hierarchy, ~100 downcasts) | [`spec::ijpeg_oo`] |
//! | Spec95 `compress` (bit-twiddling buffers) | [`spec::compress_like`] |
//! | Olden `em3d`, `treeadd` | [`olden`] |
//! | Ptrdist `anagram`, `ks` | [`ptrdist`] |
//! | Apache modules (Figure 8) | [`apache`] |
//! | ftpd / bind / sendmail / OpenSSL / OpenSSH (Figure 9) | [`daemons`] |
//! | pointer-kind microbenchmarks | [`micro`] |
//!
//! # Examples
//!
//! ```
//! use ccured_workloads::{micro, runner};
//!
//! let w = micro::safe_deref(100);
//! let r = runner::run_cured(&w, &ccured_infer::InferOptions::default()).unwrap();
//! assert_eq!(r.stats.exit, 0);
//! ```

pub mod apache;
pub mod daemons;
pub mod micro;
pub mod olden;
pub mod prng;
pub mod ptrdist;
pub mod runner;
pub mod spec;

/// Reference numbers reported by the paper for a workload, used when
/// printing tables side by side with our measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PaperStats {
    /// Lines of code the paper reports.
    pub loc: Option<u32>,
    /// The paper's `sf/sq/w/rt` static pointer percentages.
    pub pct: Option<(u32, u32, u32, u32)>,
    /// The paper's CCured slowdown ratio.
    pub ccured_ratio: Option<f64>,
    /// The paper's Valgrind slowdown ratio.
    pub valgrind_ratio: Option<f64>,
}

/// One runnable benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (table row label).
    pub name: String,
    /// Complete C source in the ccured-rs subset.
    pub source: String,
    /// Bytes fed to the input builtins (`getchar`, `net_recv`).
    pub input: Vec<u8>,
    /// Whether curing should prepend the stdlib wrappers.
    pub with_wrappers: bool,
    /// Expected exit code of a successful run.
    pub expect_exit: i64,
    /// The paper's reference numbers, if this row exists in the paper.
    pub paper: PaperStats,
}

impl Workload {
    /// Creates a workload with defaults (no input, wrappers on, exit 0).
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            source: source.into(),
            input: Vec::new(),
            with_wrappers: true,
            expect_exit: 0,
            paper: PaperStats::default(),
        }
    }

    /// Sets the input bytes.
    pub fn with_input(mut self, input: impl Into<Vec<u8>>) -> Self {
        self.input = input.into();
        self
    }

    /// Sets the expected exit code.
    pub fn expecting(mut self, code: i64) -> Self {
        self.expect_exit = code;
        self
    }

    /// Attaches the paper's reference numbers.
    pub fn with_paper(mut self, paper: PaperStats) -> Self {
        self.paper = paper;
        self
    }

    /// Disables the stdlib wrapper prelude.
    pub fn without_wrappers(mut self) -> Self {
        self.with_wrappers = false;
        self
    }

    /// Non-blank source lines (the LoC we report).
    pub fn lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// The standard corpus used by the `suites` table (Spec/Olden/Ptrdist).
pub fn suite_corpus() -> Vec<Workload> {
    vec![
        spec::compress_like(24, 6),
        spec::ijpeg_oo(40, 28),
        olden::em3d(48, 6, 24),
        olden::treeadd(11),
        ptrdist::anagram(40),
        ptrdist::ks(26),
    ]
}

/// The micro+Olden corpus the batch engine is benchmarked and tested over
/// (`fig-batch`, `tests/tests/batch.rs`): enough independent units, at two
/// sizes each for the Olden programs, to make parallel fan-out and cache
/// reuse measurable.
pub fn batch_corpus() -> Vec<Workload> {
    vec![
        micro::safe_deref(100),
        micro::seq_index(50),
        micro::wild_loop(25),
        micro::rtti_dispatch(50),
        micro::ptr_store(50),
        olden::em3d(48, 6, 24),
        olden::em3d(24, 4, 12),
        olden::treeadd(11),
        olden::treeadd(8),
        ptrdist::anagram(40),
        ptrdist::ks(26),
        spec::compress_like(24, 6),
        spec::ijpeg_oo(40, 28),
    ]
}

/// Writes each workload's source as `<index>_<name>.c` under `dir`
/// (creating it), returning the paths — the on-disk shape the batch engine
/// consumes. Indexing keeps file names unique when a corpus contains the
/// same workload at two sizes.
///
/// # Errors
///
/// I/O errors creating the directory or writing a unit.
pub fn write_units(
    dir: &std::path::Path,
    corpus: &[Workload],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(corpus.len());
    for (i, w) in corpus.iter().enumerate() {
        let p = dir.join(format!("{i:02}_{}.c", w.name));
        std::fs::write(&p, &w.source)?;
        paths.push(p);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builder() {
        let w = Workload::new("t", "int main(void) { return 0; }")
            .with_input(b"x".to_vec())
            .expecting(0);
        assert_eq!(w.name, "t");
        assert_eq!(w.lines(), 1);
        assert!(w.with_wrappers);
    }
}
