//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `tables [fig8|fig9|casts|ijpeg|bind|suites|split|security|ablation|fig-batch|fig-interp|fig-profile|fig-opt2|fig-serve|fig-synth|fig-hot|fig-temporal|all] [--smoke]`
//!
//! `fig-interp`, `fig-profile`, `fig-opt2`, `fig-hot` and `fig-temporal`
//! write `BENCH_interp.json` / `BENCH_profile.json` / `BENCH_opt2.json` /
//! `BENCH_hot.json` / `BENCH_temporal.json` to the working directory;
//! `--smoke` shrinks their workloads for CI.
//!
//! Each table prints our measurement next to the paper's reported value
//! (absolute numbers are not comparable — the substrate is an interpreter —
//! but the *shape* is the reproduction target; see EXPERIMENTS.md).

use ccured_bench::table::{paper_ratio, ratio, render};
use ccured_bench::*;

const TABLES: &[&str] = &[
    "fig8",
    "fig9",
    "casts",
    "ijpeg",
    "bind",
    "suites",
    "split",
    "security",
    "ablation",
    "fig-batch",
    "fig-interp",
    "fig-profile",
    "fig-opt2",
    "fig-serve",
    "fig-synth",
    "fig-hot",
    "fig-temporal",
    "all",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let which = args.first().cloned().unwrap_or_else(|| "all".to_string());
    if !TABLES.contains(&which.as_str()) {
        eprintln!(
            "unknown table `{which}`; expected one of: {}",
            TABLES.join(", ")
        );
        std::process::exit(2);
    }
    let all = which == "all";
    if all || which == "fig8" {
        fig8_table();
    }
    if all || which == "fig9" {
        fig9_table();
    }
    if all || which == "casts" {
        casts_table();
    }
    if all || which == "ijpeg" {
        ijpeg_table();
    }
    if all || which == "bind" {
        bind_table();
    }
    if all || which == "suites" {
        suites_table();
    }
    if all || which == "split" {
        split_tables();
    }
    if all || which == "security" {
        security_table();
    }
    if all || which == "ablation" {
        ablation_table();
    }
    if all || which == "fig-batch" {
        fig_batch_table();
    }
    if all || which == "fig-interp" {
        fig_interp_table(smoke);
    }
    if all || which == "fig-profile" {
        fig_profile_table(smoke);
    }
    if all || which == "fig-opt2" {
        fig_opt2_table(smoke);
    }
    if all || which == "fig-serve" {
        fig_serve_table(smoke);
    }
    if all || which == "fig-synth" {
        fig_synth_table(smoke);
    }
    if all || which == "fig-hot" {
        fig_hot_table(smoke);
    }
    if all || which == "fig-temporal" {
        fig_temporal_table(smoke);
    }
}

fn fig_temporal_table(smoke: bool) {
    println!(
        "== E19: temporal lock-and-key check overhead (--temporal){} ==\n",
        if smoke { " (smoke)" } else { "" }
    );
    let f = fig_temporal(smoke);
    let us = |d: std::time::Duration| format!("{:.0} us", d.as_secs_f64() * 1e6);
    let rows: Vec<Vec<String>> = f
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}/{}", r.steps_plain, r.steps_temporal),
                r.temporal_checks.to_string(),
                us(r.tree_plain),
                us(r.tree_temporal),
                us(r.vm_plain),
                us(r.vm_temporal),
                format!("{:.2}x", r.overhead_tree()),
                format!("{:.2}x", r.overhead_vm()),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "workload",
                "steps plain/temporal",
                "key checks",
                "tree",
                "tree+t",
                "vm",
                "vm+t",
                "tree ovh",
                "vm ovh"
            ],
            &rows
        )
    );
    println!(
        "geomean temporal overhead: tree {:.2}x, vm {:.2}x (best of {} runs; ceiling 1.5x)",
        f.geomean_overhead_tree(),
        f.geomean_overhead_vm(),
        f.reps
    );
    match std::fs::write("BENCH_temporal.json", f.to_json()) {
        Ok(()) => println!("wrote BENCH_temporal.json"),
        Err(e) => eprintln!("could not write BENCH_temporal.json: {e}"),
    }
}

fn fig_hot_table(smoke: bool) {
    println!(
        "== E18: profile-guided tiered VM, tree vs untiered vs tiered{} ==\n",
        if smoke { " (smoke)" } else { "" }
    );
    let f = fig_hot(smoke);
    let us = |d: std::time::Duration| format!("{:.0} us", d.as_secs_f64() * 1e6);
    let rows: Vec<Vec<String>> = f
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.steps.to_string(),
                us(r.tree),
                us(r.vm_untiered),
                us(r.vm_tiered),
                format!("{:.1}x", r.speedup_untiered()),
                format!("{:.1}x", r.speedup_tiered()),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "workload",
                "steps",
                "tree",
                "vm untiered",
                "vm tiered",
                "untiered",
                "tiered"
            ],
            &rows
        )
    );
    println!(
        "geomean speedup: untiered {:.2}x, tiered {:.2}x (best of {} runs)",
        f.geomean_untiered(),
        f.geomean_tiered(),
        f.reps
    );
    match std::fs::write("BENCH_hot.json", f.to_json()) {
        Ok(()) => println!("wrote BENCH_hot.json"),
        Err(e) => eprintln!("could not write BENCH_hot.json: {e}"),
    }
}

fn fig_synth_table(smoke: bool) {
    println!(
        "== E17: generative differential soundness campaign{} ==\n",
        if smoke { " (smoke)" } else { "" }
    );
    let f = match fig_synth(smoke) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fig-synth failed: {e}");
            return;
        }
    };
    print!("{}", f.report.render());
    println!(
        "\nworst pointer-kind deviation from target: {:.1} points (tolerance {:.0})\n",
        f.max_deviation(),
        ccured_synth::KIND_TOLERANCE_PCT
    );
    match std::fs::write("BENCH_synth.json", f.to_json()) {
        Ok(()) => println!("wrote BENCH_synth.json"),
        Err(e) => eprintln!("could not write BENCH_synth.json: {e}"),
    }
}

#[cfg(unix)]
fn fig_serve_table(smoke: bool) {
    println!(
        "== E16: cure daemon, cold vs resident-cache warm paths{} ==\n",
        if smoke { " (smoke)" } else { "" }
    );
    let f = match fig_serve(smoke) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fig-serve failed: {e}");
            return;
        }
    };
    let ms = |d: std::time::Duration| format!("{:.1} ms", d.as_secs_f64() * 1e3);
    let rows = vec![
        vec!["cold (empty caches)".to_string(), ms(f.cold), ratio(1.0)],
        vec![
            "warm, unchanged sources (unit cache)".to_string(),
            ms(f.warm_identical),
            ratio(f.identical_speedup()),
        ],
        vec![
            "warm, one function appended (fn cache)".to_string(),
            ms(f.warm_touched),
            ratio(f.touched_speedup()),
        ],
    ];
    println!(
        "{} units over the socket; touched-pass function reuse {:.0}% ({} hits / {} misses); digests match cold batch: {}",
        f.units,
        f.fn_hit_rate() * 100.0,
        f.fn_hits,
        f.fn_misses,
        f.digests_match
    );
    println!(
        "reply latency: p50 {} / p99 {}\n",
        ms(f.reply_p50),
        ms(f.reply_p99)
    );
    println!("{}", render(&["configuration", "wall", "speedup"], &rows));
    match std::fs::write("BENCH_serve.json", f.to_json()) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}

#[cfg(not(unix))]
fn fig_serve_table(_smoke: bool) {
    eprintln!("fig-serve requires unix domain sockets; skipped on this platform");
}

fn pct_str(p: (u32, u32, u32, u32)) -> String {
    format!("{}/{}/{}/{}", p.0, p.1, p.2, p.3)
}

fn fig8_table() {
    println!("== Figure 8: Apache module performance ==");
    println!("(sf/sq/w/rt = % of static pointers inferred SAFE/SEQ/WILD/RTTI)\n");
    let rows: Vec<Vec<String>> = fig8(60)
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.lines.to_string(),
                pct_str(r.pct),
                ratio(r.ratio),
                r.paper_pct.map(pct_str).unwrap_or_else(|| "-".into()),
                paper_ratio(r.paper_ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "module",
                "lines",
                "sf/sq/w/rt",
                "ratio",
                "paper sf/sq/w/rt",
                "paper ratio"
            ],
            &rows
        )
    );
}

fn fig9_table() {
    println!("== Figure 9: system software performance ==\n");
    let rows: Vec<Vec<String>> = fig9()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.lines.to_string(),
                pct_str(r.pct),
                ratio(r.ccured),
                ratio(r.valgrind),
                format!("{:.2}%", r.sandbox_overhead * 100.0),
                format!("{:.1}x", r.vm_speedup),
                paper_ratio(r.paper_ccured),
                paper_ratio(r.paper_valgrind),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "program",
                "lines",
                "sf/sq/w/rt",
                "ccured",
                "valgrind",
                "sandbox",
                "vm",
                "paper ccured",
                "paper valgrind"
            ],
            &rows
        )
    );
}

fn casts_table() {
    println!("== Section 3: cast census over the corpus ==\n");
    let c = cast_census();
    let rows = vec![
        vec![
            "identical (% of pointer casts)".to_string(),
            format!("{:.1}%", c.pct_identical),
            "~63%".to_string(),
        ],
        vec![
            "upcasts (% of non-identical)".to_string(),
            format!("{:.1}%", c.pct_upcasts),
            "~93%".to_string(),
        ],
        vec![
            "downcasts (% of non-identical)".to_string(),
            format!("{:.1}%", c.pct_downcasts),
            "~6%".to_string(),
        ],
        vec![
            "still bad (% of non-identical)".to_string(),
            format!("{:.1}%", c.pct_bad),
            "<1%".to_string(),
        ],
        vec![
            "verified without WILD (% of all)".to_string(),
            format!("{:.1}%", c.pct_verified),
            ">99%".to_string(),
        ],
    ];
    println!("total pointer casts: {}\n", c.ptr_casts);
    println!("{}", render(&["statistic", "measured", "paper"], &rows));
}

fn ijpeg_table() {
    println!("== Section 5: the ijpeg RTTI experiment ==\n");
    let r = ijpeg_experiment(40, 24);
    let rows = vec![
        vec![
            "WILD pointers".to_string(),
            format!("{}%", r.old_wild_pct),
            format!("{}%", r.new_wild_pct),
            "60% -> 0%".to_string(),
        ],
        vec![
            "RTTI pointers".to_string(),
            "0%".to_string(),
            format!("{}%", r.new_rtti_pct),
            "0% -> 1%".to_string(),
        ],
        vec![
            "slowdown".to_string(),
            ratio(r.old_ratio),
            ratio(r.new_ratio),
            "2.15 -> 1.45".to_string(),
        ],
    ];
    println!("downcast sites: {}\n", r.downcasts);
    println!(
        "{}",
        render(&["metric", "original ccured", "with RTTI", "paper"], &rows)
    );
}

fn bind_table() {
    println!("== Section 5: bind cast statistics ==\n");
    let b = bind_experiment(40, 14);
    let rows = vec![
        vec![
            "pointer casts".to_string(),
            b.ptr_casts.to_string(),
            "82000".to_string(),
        ],
        vec![
            "upcasts (physical subtyping)".to_string(),
            b.upcasts.to_string(),
            "26500".to_string(),
        ],
        vec![
            "downcasts (RTTI-checked)".to_string(),
            b.downcasts.to_string(),
            "150 of 530 bad".to_string(),
        ],
        vec![
            "trusted casts (review surface)".to_string(),
            b.trusted.to_string(),
            "380".to_string(),
        ],
        vec![
            "WILD without RTTI".to_string(),
            format!("{}%", b.wild_pct_without_rtti),
            "30%".to_string(),
        ],
        vec![
            "WILD with RTTI + trusted".to_string(),
            format!("{}%", b.wild_pct_with_rtti),
            "0%".to_string(),
        ],
    ];
    println!("{}", render(&["statistic", "measured", "paper"], &rows));
}

fn suites_table() {
    println!("== Section 5: Spec95/Olden/Ptrdist with baseline tools ==");
    println!("(paper bands: CCured 1.07-1.56, Purify 25-100x, Valgrind 9-130x)\n");
    let rows: Vec<Vec<String>> = suites()
        .into_iter()
        .map(|r| vec![r.name, ratio(r.ccured), ratio(r.purify), ratio(r.valgrind)])
        .collect();
    println!(
        "{}",
        render(&["benchmark", "ccured", "purify", "valgrind"], &rows)
    );
}

fn split_tables() {
    println!("== Section 4.2/5: compatible (split) representation overhead ==");
    println!("(paper: mostly <3% extra; em3d +58%, anagram +7%)\n");
    let rows: Vec<Vec<String>> = split_overhead()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                ratio(r.nosplit),
                ratio(r.allsplit),
                format!("+{:.0}%", (r.split_cost - 1.0) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["benchmark", "nosplit", "all-split", "split cost"], &rows)
    );
    println!("== boundary-seeded split spread ==");
    println!("(paper: bind 6% split / 31% with meta ptr; OpenSSH <1%)\n");
    let rows: Vec<Vec<String>> = split_boundary()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                format!("{:.1}%", r.split_pct),
                format!("{:.1}%", r.meta_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["program", "split quals", "of those, with meta ptr"],
            &rows
        )
    );
}

fn security_table() {
    println!("== Section 5: known-vulnerability scenarios ==\n");
    let rows: Vec<Vec<String>> = security()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.original,
                r.cured,
                if r.prevented { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["scenario", "plain C", "cured", "prevented"], &rows)
    );
}

fn ablation_table() {
    println!("== Ablation: the extension staircase on the OO workload ==\n");
    let rows: Vec<Vec<String>> = ablation(24, 12)
        .into_iter()
        .map(|r| {
            vec![
                r.config,
                format!("{}%", r.wild_pct),
                format!("{}%", r.rtti_pct),
                ratio(r.ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["configuration", "wild", "rtti", "ratio"], &rows)
    );
    let (cc, jk) = metadata_lookup(60);
    println!(
        "metadata ablation (ptr-heavy loop): fat pointers {}x vs global-registry lookup {}x",
        ratio(cc),
        ratio(jk)
    );
    let (steps, walk, interval) = rtti_encoding(40, 12);
    println!(
        "isSubtype encoding (40-deep hierarchy): walk {}x ({} chain steps) vs interval {}x\n",
        ratio(walk),
        steps,
        ratio(interval)
    );
}

fn fig_batch_table() {
    println!("== E12: batch-engine speedup (micro+Olden corpus) ==\n");
    let f = match fig_batch(0) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fig-batch failed: {e}");
            return;
        }
    };
    let ms = |d: std::time::Duration| format!("{:.1} ms", d.as_secs_f64() * 1e3);
    let rows = vec![
        vec![
            "sequential, no cache".to_string(),
            ms(f.sequential),
            ratio(1.0),
        ],
        vec![
            format!("parallel x{}, cold cache", f.jobs),
            ms(f.parallel_cold),
            ratio(f.parallel_speedup()),
        ],
        vec![
            format!("parallel x{}, warm cache", f.jobs),
            ms(f.warm),
            ratio(f.warm_speedup()),
        ],
    ];
    println!(
        "{} units; warm hit rate {:.0}%; achieved parallelism {:.2}\n",
        f.units,
        f.warm_hit_rate * 100.0,
        f.parallel_cpu_ratio
    );
    println!("{}", render(&["configuration", "wall", "speedup"], &rows));
}

fn fig_interp_table(smoke: bool) {
    println!(
        "== E13: execution-engine throughput, tree vs bytecode VM{} ==\n",
        if smoke { " (smoke)" } else { "" }
    );
    let f = fig_interp(smoke);
    let us = |d: std::time::Duration| format!("{:.0} us", d.as_secs_f64() * 1e6);
    let rows: Vec<Vec<String>> = f
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.steps.to_string(),
                us(r.tree),
                us(r.vm),
                format!("{:.1}x", r.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["workload", "steps", "tree", "vm", "speedup"], &rows)
    );
    println!(
        "geomean speedup: {:.2}x (best of {} runs)",
        f.geomean_speedup(),
        f.reps
    );
    match std::fs::write("BENCH_interp.json", f.to_json()) {
        Ok(()) => println!("wrote BENCH_interp.json"),
        Err(e) => eprintln!("could not write BENCH_interp.json: {e}"),
    }
}

fn fig_profile_table(smoke: bool) {
    println!(
        "== E14: hot-site check profiles (both engines agree){} ==\n",
        if smoke { " (smoke)" } else { "" }
    );
    let f = fig_profile(smoke);
    let rows: Vec<Vec<String>> = f
        .rows
        .iter()
        .map(|r| {
            let hottest = r
                .top
                .first()
                .map(|t| format!("{} in {} ({} hits)", t.check, t.func, t.hits))
                .unwrap_or_else(|| "-".to_string());
            vec![
                r.name.clone(),
                format!("{}/{}", r.hot_sites, r.sites),
                r.total_hits.to_string(),
                format!("{:.0}%", r.top_share * 100.0),
                r.unelided_hot.to_string(),
                hottest,
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "workload",
                "hot/sites",
                "checks run",
                "top-3 cost",
                "unelided hot",
                "hottest site"
            ],
            &rows
        )
    );
    match std::fs::write("BENCH_profile.json", f.to_json()) {
        Ok(()) => println!("wrote BENCH_profile.json"),
        Err(e) => eprintln!("could not write BENCH_profile.json: {e}"),
    }
}

fn fig_opt2_table(smoke: bool) {
    println!(
        "== E15: loop-optimizer executed-check cost, no-opt vs elim-only vs full{} ==\n",
        if smoke { " (smoke)" } else { "" }
    );
    let f = fig_opt2(smoke);
    let rows: Vec<Vec<String>> = f
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                if r.strided { "yes" } else { "" }.to_string(),
                format!("{:.0}", r.noopt),
                format!("{:.0}", r.elim),
                format!("{:.0}", r.full),
                format!("{:.0}%", r.reduction() * 100.0),
                format!("{}/{}", r.hoisted, r.widened),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "workload",
                "strided",
                "no-opt",
                "elim-only",
                "full",
                "reduction",
                "hoist/widen"
            ],
            &rows
        )
    );
    println!(
        "geomean executed-check-cost reduction, strided subset: {:.1}% (target ≥15%)",
        f.geomean_reduction_strided() * 100.0
    );
    match std::fs::write("BENCH_opt2.json", f.to_json()) {
        Ok(()) => println!("wrote BENCH_opt2.json"),
        Err(e) => eprintln!("could not write BENCH_opt2.json: {e}"),
    }
}
