//! One function per reproduced table/figure (experiment ids E1–E10 in
//! DESIGN.md). All ratios come from the shared deterministic cost model.

use ccured_infer::InferOptions;
use ccured_rt::{CostModel, ExecMode};
use ccured_workloads::runner::{self, measure, Ratios};
use ccured_workloads::{apache, batch_corpus, daemons, micro, olden, ptrdist, spec, Workload};

/// One row of the Figure 8 (Apache modules) table.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Module name.
    pub name: String,
    /// Our measured lines of code.
    pub lines: usize,
    /// Measured `sf/sq/w/rt` percentages.
    pub pct: (u32, u32, u32, u32),
    /// Measured CCured ratio.
    pub ratio: f64,
    /// Paper LoC.
    pub paper_loc: Option<u32>,
    /// Paper `sf/sq/w/rt`.
    pub paper_pct: Option<(u32, u32, u32, u32)>,
    /// Paper ratio.
    pub paper_ratio: Option<f64>,
}

/// E1 (Figure 8): the nine Apache modules under the request driver.
pub fn fig8(requests: u32) -> Vec<Fig8Row> {
    apache::all_modules(requests)
        .into_iter()
        .map(|w| {
            let r = measure(&w, &InferOptions::default()).expect("fig8 workload");
            Fig8Row {
                name: w.name.clone(),
                lines: r.lines,
                pct: r.kind_pct,
                ratio: r.ccured,
                paper_loc: w.paper.loc,
                paper_pct: w.paper.pct,
                paper_ratio: w.paper.ccured_ratio,
            }
        })
        .collect()
}

/// One row of the Figure 9 (system software) table.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Program name.
    pub name: String,
    /// Our measured LoC.
    pub lines: usize,
    /// Measured `sf/sq/w/rt`.
    pub pct: (u32, u32, u32, u32),
    /// Measured CCured ratio.
    pub ccured: f64,
    /// Measured Valgrind ratio.
    pub valgrind: f64,
    /// Fraction of cured-run cost spent on sandbox limit accounting
    /// (fuel/stack/heap/deadline checks) — the price of the hardened
    /// interpreter, which must stay under 2%.
    pub sandbox_overhead: f64,
    /// Wall-clock speedup of the bytecode VM over the tree-walking
    /// reference engine on this workload's cured run.
    pub vm_speedup: f64,
    /// Paper's CCured ratio.
    pub paper_ccured: Option<f64>,
    /// Paper's Valgrind ratio.
    pub paper_valgrind: Option<f64>,
    /// Paper's `sf/sq/w/rt`.
    pub paper_pct: Option<(u32, u32, u32, u32)>,
}

/// E2 (Figure 9): drivers, daemons and crypto kernels.
pub fn fig9() -> Vec<Fig9Row> {
    let model = CostModel::default();
    daemons::figure9_corpus()
        .into_iter()
        .map(|w| {
            let r = measure(&w, &InferOptions::default()).expect("fig9 workload");
            let mut curer = ccured::Curer::new();
            if w.with_wrappers {
                curer.with_stdlib_wrappers();
            }
            let cured = curer.cure_source(&w.source).expect("fig9 cure");
            let (tree, _) = time_cured(&cured, ccured_rt::Engine::Tree, &w.input, 2);
            let (vm, _) = time_cured(&cured, ccured_rt::Engine::Vm, &w.input, 2);
            Fig9Row {
                name: w.name.clone(),
                lines: r.lines,
                pct: r.kind_pct,
                ccured: r.ccured,
                valgrind: r.valgrind,
                sandbox_overhead: model.sandbox_overhead(&r.cured_counters),
                vm_speedup: tree.as_secs_f64() / vm.as_secs_f64().max(1e-9),
                paper_ccured: w.paper.ccured_ratio,
                paper_valgrind: w.paper.valgrind_ratio,
                paper_pct: w.paper.pct,
            }
        })
        .collect()
}

/// E3: the corpus-wide cast census (paper Section 3 statistics).
#[derive(Debug, Clone, Copy, Default)]
pub struct CastTotals {
    /// Total pointer-to-pointer casts.
    pub ptr_casts: usize,
    /// % of pointer casts between physically equal types.
    pub pct_identical: f64,
    /// Of the non-identical casts, % verified as upcasts.
    pub pct_upcasts: f64,
    /// Of the non-identical casts, % checked as downcasts.
    pub pct_downcasts: f64,
    /// Of the non-identical casts, % left bad/trusted.
    pub pct_bad: f64,
    /// % of all pointer casts verifiable without WILD.
    pub pct_verified: f64,
}

/// Aggregates the cast census over the whole corpus.
pub fn cast_census() -> CastTotals {
    let mut agg = ccured_infer::CastCensus::default();
    let mut corpus = ccured_workloads::suite_corpus();
    corpus.extend(apache::all_modules(1));
    corpus.extend(daemons::figure9_corpus());
    for w in &corpus {
        let cured = runner::run_cured(w, &InferOptions::default()).expect("census workload");
        let c = cured.cured.report.census;
        agg.identical += c.identical;
        agg.upcast += c.upcast;
        agg.downcast += c.downcast;
        agg.bad += c.bad;
        agg.trusted += c.trusted;
        agg.scalar += c.scalar;
        agg.null_ptr += c.null_ptr;
        agg.int_to_ptr += c.int_to_ptr;
        agg.ptr_to_int += c.ptr_to_int;
        agg.alloc += c.alloc;
    }
    CastTotals {
        ptr_casts: agg.ptr_casts(),
        pct_identical: agg.pct_identical(),
        pct_upcasts: agg.pct_upcasts_of_nonidentical(),
        pct_downcasts: agg.pct_downcasts_of_nonidentical(),
        pct_bad: agg.pct_bad_of_nonidentical(),
        pct_verified: agg.pct_verified(),
    }
}

/// E4: the ijpeg RTTI experiment (old CCured vs this paper).
#[derive(Debug, Clone, Copy)]
pub struct IjpegResult {
    /// WILD percentage without physical subtyping/RTTI (paper: ~60%).
    pub old_wild_pct: u32,
    /// Slowdown without the extensions (paper: 2.15x).
    pub old_ratio: f64,
    /// WILD percentage with RTTI (paper: 0%).
    pub new_wild_pct: u32,
    /// RTTI percentage with RTTI (paper: ~1%).
    pub new_rtti_pct: u32,
    /// Slowdown with the extensions (paper: 1.45x).
    pub new_ratio: f64,
    /// Downcast sites in the program.
    pub downcasts: usize,
}

/// Runs the ijpeg experiment at the given scale.
pub fn ijpeg_experiment(types: u32, rounds: u32) -> IjpegResult {
    let w = spec::ijpeg_oo(types, rounds);
    let new = measure(&w, &InferOptions::default()).expect("ijpeg new");
    let old = measure(&w, &InferOptions::original_ccured()).expect("ijpeg old");
    let cured_new = runner::run_cured(&w, &InferOptions::default()).expect("census");
    let cured_old = runner::run_cured(&w, &InferOptions::original_ccured()).expect("census");
    let pct_old = cured_old.cured.report.kind_counts.percentages();
    let pct_new = cured_new.cured.report.kind_counts.percentages();
    IjpegResult {
        old_wild_pct: pct_old.2,
        old_ratio: old.ccured,
        new_wild_pct: pct_new.2,
        new_rtti_pct: pct_new.3,
        new_ratio: new.ccured,
        downcasts: cured_new.cured.report.census.downcast,
    }
}

/// E5: the bind cast statistics.
#[derive(Debug, Clone, Copy)]
pub struct BindStats {
    /// Total pointer casts.
    pub ptr_casts: usize,
    /// Upcasts handled by physical subtyping.
    pub upcasts: usize,
    /// Downcasts checked with RTTI.
    pub downcasts: usize,
    /// Trusted casts (the code-review surface; paper: 380 of 530).
    pub trusted: usize,
    /// WILD percentage without RTTI.
    pub wild_pct_without_rtti: u32,
    /// WILD percentage with RTTI + trusted casts.
    pub wild_pct_with_rtti: u32,
}

/// Runs the bind census at the given scale.
pub fn bind_experiment(queries: u32, rrtypes: u32) -> BindStats {
    let w = daemons::bind_like(queries, rrtypes);
    let with = runner::run_cured(&w, &InferOptions::default()).expect("bind with rtti");
    let without = runner::run_cured(&w, &InferOptions::original_ccured()).expect("bind without");
    let c = with.cured.report.census;
    BindStats {
        ptr_casts: c.ptr_casts(),
        upcasts: c.upcast,
        downcasts: c.downcast,
        trusted: c.trusted,
        wild_pct_without_rtti: without.cured.report.kind_counts.percentages().2,
        wild_pct_with_rtti: with.cured.report.kind_counts.percentages().2,
    }
}

/// One row of the suites table (E6).
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Benchmark name.
    pub name: String,
    /// CCured ratio (paper band: 1.07–1.56).
    pub ccured: f64,
    /// Purify ratio (paper band: 25–100).
    pub purify: f64,
    /// Valgrind ratio (paper band: 9–130).
    pub valgrind: f64,
}

/// E6: the Spec/Olden/Ptrdist suite with all baselines.
pub fn suites() -> Vec<SuiteRow> {
    ccured_workloads::suite_corpus()
        .into_iter()
        .map(|w| {
            let r = measure(&w, &InferOptions::default()).expect("suite workload");
            SuiteRow {
                name: w.name.clone(),
                ccured: r.ccured,
                purify: r.purify,
                valgrind: r.valgrind,
            }
        })
        .collect()
}

/// One row of the split-overhead table (E7).
#[derive(Debug, Clone)]
pub struct SplitRow {
    /// Benchmark name.
    pub name: String,
    /// Cured ratio with the default (NOSPLIT) representation.
    pub nosplit: f64,
    /// Cured ratio with everything SPLIT.
    pub allsplit: f64,
    /// The extra overhead attributable to splitting (allsplit/nosplit).
    pub split_cost: f64,
}

/// E7a: the all-split overhead experiment over olden/ptrdist/ijpeg.
pub fn split_overhead() -> Vec<SplitRow> {
    let corpus = vec![
        olden::em3d(48, 6, 24),
        olden::treeadd(10),
        ptrdist::anagram(40),
        ptrdist::ks(26),
        spec::ijpeg_oo(24, 16),
    ];
    corpus
        .into_iter()
        .map(|w| {
            let base = measure(&w, &InferOptions::default()).expect("split base");
            let split = measure(
                &w,
                &InferOptions {
                    split_everything: true,
                    ..InferOptions::default()
                },
            )
            .expect("split all");
            SplitRow {
                name: w.name.clone(),
                nosplit: base.ccured,
                allsplit: split.ccured,
                split_cost: split.ccured / base.ccured,
            }
        })
        .collect()
}

/// E7b: boundary-seeded split statistics (bind/OpenSSH style).
#[derive(Debug, Clone)]
pub struct SplitBoundaryRow {
    /// Program name.
    pub name: String,
    /// Percentage of qualifiers that became SPLIT.
    pub split_pct: f64,
    /// Of the split pointers, the percentage carrying a metadata pointer.
    pub meta_pct: f64,
}

/// Measures boundary-seeded SPLIT spread for the daemons.
pub fn split_boundary() -> Vec<SplitBoundaryRow> {
    let corpus = vec![
        daemons::bind_like(10, 12),
        daemons::openssh_like(10, false),
        daemons::openssh_like(10, true),
        daemons::ssh_client_uncured_ssl(10),
    ];
    corpus
        .into_iter()
        .map(|w| {
            let opts = InferOptions {
                split_at_boundaries: true,
                ..InferOptions::default()
            };
            let cured = runner::run_cured(&w, &opts).expect("boundary split");
            let sol = &cured.cured.solution;
            let prog = &cured.cured.program;
            let total = sol.len().max(1);
            let split = sol.split_count();
            // Of the split pointer quals, how many need a metadata pointer.
            let mut st = ccured::split::SplitTypes::new(&prog.types, sol);
            let mut types = prog.types.clone();
            let mut split_ptrs = 0usize;
            let mut with_meta = 0usize;
            for i in 0..prog.types.len() {
                let t = ccured_cil::types::TypeId(i as u32);
                if let Some((_, q)) = prog.types.ptr_parts(t) {
                    if sol.is_split(q) {
                        split_ptrs += 1;
                        if st.needs_meta_ptr(&mut types, t) {
                            with_meta += 1;
                        }
                    }
                }
            }
            SplitBoundaryRow {
                name: w.name.clone(),
                split_pct: split as f64 * 100.0 / total as f64,
                meta_pct: if split_ptrs == 0 {
                    0.0
                } else {
                    with_meta as f64 * 100.0 / split_ptrs as f64
                },
            }
        })
        .collect()
}

/// One row of the security table (E8).
#[derive(Debug, Clone)]
pub struct SecurityRow {
    /// Scenario name.
    pub name: String,
    /// What happened in plain C.
    pub original: String,
    /// What happened under CCured.
    pub cured: String,
    /// Whether CCured stopped the attack.
    pub prevented: bool,
}

/// E8: known-vulnerability scenarios.
pub fn security() -> Vec<SecurityRow> {
    let scenarios = vec![daemons::ftpd(4, true), daemons::sendmail_like(6, true)];
    scenarios
        .into_iter()
        .map(|w| {
            let o = runner::run_original(&w).expect("frontend");
            let original = match &o.error {
                None if o.exit == 42 => "exploited silently (admin granted)".to_string(),
                None if o.exit == 43 => "exploited silently (relay state corrupted)".to_string(),
                None => format!("ran to completion (exit {})", o.exit),
                Some(e) => format!("crashed: {e}"),
            };
            let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
            let (cured_out, prevented) = match &c.stats.error {
                Some(e) if e.is_check_failure() => (format!("stopped by {e}"), true),
                Some(e) => (format!("failed: {e}"), false),
                None => (format!("ran (exit {})", c.stats.exit), c.stats.exit != 42),
            };
            SecurityRow {
                name: w.name.clone(),
                original,
                cured: cured_out,
                prevented,
            }
        })
        .collect()
}

/// One row of the ablation staircase (E9).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration name.
    pub config: String,
    /// WILD percentage.
    pub wild_pct: u32,
    /// RTTI percentage.
    pub rtti_pct: u32,
    /// Overhead ratio.
    pub ratio: f64,
}

/// E9: WILD-everything vs physical subtyping vs +RTTI on the OO workload.
pub fn ablation(types: u32, rounds: u32) -> Vec<AblationRow> {
    let w = spec::ijpeg_oo(types, rounds);
    let configs = vec![
        (
            "original CCured (no phys-sub, no RTTI)",
            InferOptions::original_ccured(),
        ),
        (
            "physical subtyping only",
            InferOptions {
                rtti: false,
                ..InferOptions::default()
            },
        ),
        ("physical subtyping + RTTI", InferOptions::default()),
    ];
    configs
        .into_iter()
        .map(|(name, opts)| {
            let r = measure(&w, &opts).expect("ablation");
            let cured = runner::run_cured(&w, &opts).expect("ablation cure");
            let pct = cured.cured.report.kind_counts.percentages();
            AblationRow {
                config: name.to_string(),
                wild_pct: pct.2,
                rtti_pct: pct.3,
                ratio: r.ccured,
            }
        })
        .collect()
}

/// E9b: the RTTI `isSubtype` encoding ablation at run time — the paper's
/// parent-chain walk vs an O(1) interval test, on the deep-hierarchy OO
/// workload. Returns `(walk_steps, walk_ratio, interval_ratio)`.
pub fn rtti_encoding(types: u32, rounds: u32) -> (u64, f64, f64) {
    use ccured_rt::Interp;
    let w = spec::ijpeg_oo(types, rounds);
    let model = CostModel::default();
    let base = runner::run_original(&w).expect("frontend");
    let cured = runner::run_cured(&w, &InferOptions::default()).expect("cure");
    let walk_steps = cured.stats.counters.rtti_walk_steps;
    let walk_ratio = model.ratio(&cured.stats.counters, &base.counters);
    let mut interp = Interp::new(&cured.cured.program, ExecMode::cured(&cured.cured));
    interp.set_interval_rtti(true);
    interp.run().expect("interval run");
    let interval_ratio = model.ratio(&interp.counters, &base.counters);
    assert_eq!(
        interp.counters.rtti_walk_steps, 0,
        "interval mode walks no chains"
    );
    (walk_steps, walk_ratio, interval_ratio)
}

/// E10: fat pointers vs a global object registry (Jones–Kelly) on the
/// pointer-heavy microbenchmark. Returns `(ccured_ratio, joneskelly_ratio)`.
pub fn metadata_lookup(iters: u32) -> (f64, f64) {
    let w = micro::ptr_store(iters);
    let model = CostModel::default();
    let base = runner::run_original(&w).expect("frontend");
    let cured = runner::run_cured(&w, &InferOptions::default()).expect("cure");
    let jk = runner::run_baseline(&w, ExecMode::JonesKelly).expect("jk");
    (
        model.ratio(&cured.stats.counters, &base.counters),
        model.ratio(&jk.counters, &base.counters),
    )
}

/// Convenience: measured ratios for an arbitrary workload (used by benches).
pub fn quick_ratio(w: &Workload) -> Ratios {
    measure(w, &InferOptions::default()).expect("workload measures")
}

/// E12 (`fig-batch`): batch-engine timings over the micro+Olden corpus.
///
/// Three configurations over the same units: sequential with the cache
/// disabled, parallel on a cold cache, and the same parallel run repeated
/// on the now-warm cache.
#[derive(Debug, Clone)]
pub struct BatchFig {
    /// Units in the corpus.
    pub units: usize,
    /// Worker threads for the parallel/warm runs.
    pub jobs: usize,
    /// Wall-clock, sequential (`--jobs 1 --no-cache`).
    pub sequential: std::time::Duration,
    /// Wall-clock, parallel on an empty cache.
    pub parallel_cold: std::time::Duration,
    /// Wall-clock, parallel on the warm cache.
    pub warm: std::time::Duration,
    /// Whole-unit hit rate of the warm run (1.0 when nothing changed).
    pub warm_hit_rate: f64,
    /// Achieved parallelism of the cold parallel run (`cpu / wall`).
    pub parallel_cpu_ratio: f64,
}

impl BatchFig {
    /// `sequential / parallel_cold` — how much the thread pool buys.
    pub fn parallel_speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.parallel_cold.as_secs_f64().max(1e-9)
    }

    /// `sequential / warm` — how much the cache buys.
    pub fn warm_speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.warm.as_secs_f64().max(1e-9)
    }
}

/// E12 (`fig-batch`): measure the batch engine at `jobs` workers
/// (0 = one per core) over [`ccured_workloads::batch_corpus`].
///
/// # Errors
///
/// I/O errors writing the corpus or reading it back.
pub fn fig_batch(jobs: usize) -> std::io::Result<BatchFig> {
    use ccured_batch::{run_batch, BatchConfig};

    let dir = std::env::temp_dir().join(format!("ccured-fig-batch-{}", std::process::id()));
    let result = (|| {
        let units = ccured_workloads::write_units(&dir.join("src"), &batch_corpus())?;

        let mut seq = BatchConfig::new(ccured::Curer::new());
        seq.jobs = 1;
        seq.use_cache = false;
        let sequential = run_batch(&seq, &units)?;

        let mut par = BatchConfig::new(ccured::Curer::new());
        par.jobs = jobs;
        par.cache_dir = dir.join("cache");
        let cold = run_batch(&par, &units)?;
        let warm = run_batch(&par, &units)?;

        Ok(BatchFig {
            units: units.len(),
            jobs: cold.jobs,
            sequential: sequential.wall,
            parallel_cold: cold.wall,
            warm: warm.wall,
            warm_hit_rate: warm.hit_rate(),
            parallel_cpu_ratio: cold.cpu.as_secs_f64() / cold.wall.as_secs_f64().max(1e-9),
        })
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// E13 (`fig-interp`): one workload's tree-vs-VM wall-clock comparison.
#[derive(Debug, Clone)]
pub struct InterpRow {
    /// Workload name.
    pub name: String,
    /// Guest instruction steps of the cured run (identical on both engines).
    pub steps: u64,
    /// Best-of-`reps` wall-clock on the tree-walking reference engine.
    pub tree: std::time::Duration,
    /// Best-of-`reps` wall-clock on the bytecode VM.
    pub vm: std::time::Duration,
}

impl InterpRow {
    /// `tree / vm` — how much the bytecode engine buys on this workload.
    pub fn speedup(&self) -> f64 {
        self.tree.as_secs_f64() / self.vm.as_secs_f64().max(1e-9)
    }
}

/// E13 (`fig-interp`): the whole comparison.
#[derive(Debug, Clone)]
pub struct InterpFig {
    /// Per-workload timings.
    pub rows: Vec<InterpRow>,
    /// Timing repetitions per engine (best-of).
    pub reps: u32,
}

impl InterpFig {
    /// Geometric mean of the per-workload speedups.
    pub fn geomean_speedup(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        (self.rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / n).exp()
    }

    /// `BENCH_interp.json` — machine-readable record for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"experiment\": \"fig-interp\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"steps\": {}, \"tree_us\": {}, \"vm_us\": {}, \"speedup\": {:.3}}}{}\n",
                r.name,
                r.steps,
                r.tree.as_micros(),
                r.vm.as_micros(),
                r.speedup(),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"reps\": {},\n  \"geomean_speedup\": {:.3}\n}}\n",
            self.reps,
            self.geomean_speedup()
        ));
        s
    }
}

/// Times one cured run on `engine`, returning the best wall-clock of
/// `reps` runs and the (engine-independent) counters.
fn time_cured(
    cured: &ccured::Cured,
    engine: ccured_rt::Engine,
    input: &[u8],
    reps: u32,
) -> (std::time::Duration, u64) {
    time_cured_with(cured, engine, input, reps, false)
}

/// As [`time_cured`], optionally with per-site profiling enabled (the
/// E14 overhead measurement compares the two).
fn time_cured_with(
    cured: &ccured::Cured,
    engine: ccured_rt::Engine,
    input: &[u8],
    reps: u32,
    profile: bool,
) -> (std::time::Duration, u64) {
    use ccured_rt::Interp;
    let mut best = std::time::Duration::MAX;
    let mut steps = 0;
    for _ in 0..reps.max(1) {
        let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
        interp.set_engine(engine);
        interp.set_input(input.to_vec());
        if profile {
            interp.enable_profile(cured.sites.len());
        }
        let t0 = std::time::Instant::now();
        interp.run().expect("bench workload runs clean");
        best = best.min(t0.elapsed());
        steps = interp.counters.instrs;
    }
    (best, steps)
}

/// The Figure-9-shaped corpus shared by the engine-throughput figures
/// (E13 `fig-interp`, E18 `fig-hot`), with the best-of repetition count.
/// `smoke` shrinks the workloads for CI.
fn interp_corpus(smoke: bool) -> (Vec<ccured_workloads::Workload>, u32) {
    use ccured_workloads::{olden, ptrdist, spec};
    if smoke {
        // Sized so each timed run is in the milliseconds: long enough to
        // amortize lazy compilation and tier warm-up, short enough for CI.
        (
            vec![
                micro::safe_deref(6000),
                micro::seq_index(600),
                micro::wild_loop(360),
                micro::rtti_dispatch(2400),
                micro::ptr_store(600),
                olden::em3d(48, 5, 24),
                olden::treeadd(12),
                ptrdist::anagram(60),
            ],
            5,
        )
    } else {
        (
            vec![
                micro::safe_deref(4000),
                micro::seq_index(1500),
                micro::wild_loop(500),
                micro::rtti_dispatch(1200),
                micro::ptr_store(1500),
                olden::em3d(64, 6, 48),
                olden::treeadd(12),
                ptrdist::anagram(80),
                ptrdist::ks(30),
                spec::compress_like(32, 8),
                spec::ijpeg_oo(48, 40),
            ],
            3,
        )
    }
}

/// E13 (`fig-interp`): tree-vs-VM throughput over the micro + Olden +
/// Ptrdist corpus, cured once per workload and executed on both engines.
/// `smoke` shrinks the workloads for CI.
pub fn fig_interp(smoke: bool) -> InterpFig {
    let (ws, reps) = interp_corpus(smoke);
    let rows = ws
        .iter()
        .map(|w| {
            let mut curer = ccured::Curer::new();
            if w.with_wrappers {
                curer.with_stdlib_wrappers();
            }
            let cured = curer.cure_source(&w.source).expect("fig-interp cure");
            let (tree, tree_steps) = time_cured(&cured, ccured_rt::Engine::Tree, &w.input, reps);
            let (vm, vm_steps) = time_cured(&cured, ccured_rt::Engine::Vm, &w.input, reps);
            assert_eq!(
                tree_steps, vm_steps,
                "{}: engines disagree on instruction steps",
                w.name
            );
            InterpRow {
                name: w.name.clone(),
                steps: vm_steps,
                tree,
                vm,
            }
        })
        .collect();
    InterpFig { rows, reps }
}

/// E19 (`fig-temporal`): one workload's spatial-only vs temporal
/// (`--temporal`) comparison on both engines.
#[derive(Debug, Clone)]
pub struct TemporalRow {
    /// Workload name.
    pub name: String,
    /// Guest steps of the spatial-only cure (identical on both engines).
    pub steps_plain: u64,
    /// Guest steps with temporal checks emitted (the delta is the emitted
    /// lock-and-key checks that survive the eliminator).
    pub steps_temporal: u64,
    /// Executed temporal key checks (engine-independent).
    pub temporal_checks: u64,
    /// Best-of-`reps` wall-clock, spatial-only cure, tree engine.
    pub tree_plain: std::time::Duration,
    /// Best-of-`reps` wall-clock, temporal cure, tree engine.
    pub tree_temporal: std::time::Duration,
    /// Best-of-`reps` wall-clock, spatial-only cure, bytecode VM.
    pub vm_plain: std::time::Duration,
    /// Best-of-`reps` wall-clock, temporal cure, bytecode VM.
    pub vm_temporal: std::time::Duration,
}

impl TemporalRow {
    /// `temporal / plain` on the tree engine — what `--temporal` costs.
    pub fn overhead_tree(&self) -> f64 {
        self.tree_temporal.as_secs_f64() / self.tree_plain.as_secs_f64().max(1e-9)
    }

    /// `temporal / plain` on the bytecode VM.
    pub fn overhead_vm(&self) -> f64 {
        self.vm_temporal.as_secs_f64() / self.vm_plain.as_secs_f64().max(1e-9)
    }
}

/// E19 (`fig-temporal`): the whole comparison.
#[derive(Debug, Clone)]
pub struct TemporalFig {
    /// Per-workload timings.
    pub rows: Vec<TemporalRow>,
    /// Timing repetitions per configuration (best-of).
    pub reps: u32,
}

impl TemporalFig {
    /// Geometric mean of the tree-engine temporal overheads.
    pub fn geomean_overhead_tree(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        (self
            .rows
            .iter()
            .map(|r| r.overhead_tree().ln())
            .sum::<f64>()
            / n)
            .exp()
    }

    /// Geometric mean of the VM temporal overheads.
    pub fn geomean_overhead_vm(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        (self.rows.iter().map(|r| r.overhead_vm().ln()).sum::<f64>() / n).exp()
    }

    /// `BENCH_temporal.json` — machine-readable record for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"experiment\": \"fig-temporal\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"steps_plain\": {}, \"steps_temporal\": {}, \"temporal_checks\": {}, \"tree_plain_us\": {}, \"tree_temporal_us\": {}, \"vm_plain_us\": {}, \"vm_temporal_us\": {}, \"overhead_tree\": {:.3}, \"overhead_vm\": {:.3}}}{}\n",
                r.name,
                r.steps_plain,
                r.steps_temporal,
                r.temporal_checks,
                r.tree_plain.as_micros(),
                r.tree_temporal.as_micros(),
                r.vm_plain.as_micros(),
                r.vm_temporal.as_micros(),
                r.overhead_tree(),
                r.overhead_vm(),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"reps\": {},\n  \"geomean_overhead_tree\": {:.3},\n  \"geomean_overhead_vm\": {:.3}\n}}\n",
            self.reps,
            self.geomean_overhead_tree(),
            self.geomean_overhead_vm()
        ));
        s
    }
}

/// Times one cured run on `engine`, honouring the cure's temporal flag
/// (unlike [`time_cured`], which benches spatial-only cures). Returns the
/// best wall-clock of `reps` runs plus the engine-independent guest-step
/// and executed-temporal-check counters.
fn time_cured_temporal(
    cured: &ccured::Cured,
    engine: ccured_rt::Engine,
    input: &[u8],
    reps: u32,
) -> (std::time::Duration, u64, u64) {
    use ccured_rt::Interp;
    let mut best = std::time::Duration::MAX;
    let (mut steps, mut checks) = (0, 0);
    for _ in 0..reps.max(1) {
        let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
        interp.set_engine(engine);
        interp.set_temporal(cured.temporal);
        interp.set_input(input.to_vec());
        let t0 = std::time::Instant::now();
        interp.run().expect("bench workload runs clean");
        best = best.min(t0.elapsed());
        steps = interp.counters.instrs;
        checks = interp.counters.temporal_checks;
    }
    (best, steps, checks)
}

/// E19 (`fig-temporal`): temporal-check overhead over the Figure-9 corpus.
/// Each workload is cured twice — spatial-only and with `--temporal` — and
/// both cures run on both engines; the row's overhead is the wall-clock
/// ratio per engine. `smoke` shrinks the workloads for CI.
pub fn fig_temporal(smoke: bool) -> TemporalFig {
    let (ws, reps) = interp_corpus(smoke);
    let rows = ws
        .iter()
        .map(|w| {
            let cure = |temporal: bool| {
                let mut curer = ccured::Curer::new();
                if w.with_wrappers {
                    curer.with_stdlib_wrappers();
                }
                curer.temporal(temporal);
                curer.cure_source(&w.source).expect("fig-temporal cure")
            };
            let plain = cure(false);
            let temporal = cure(true);
            let (tree_plain, tp_steps, _) =
                time_cured_temporal(&plain, ccured_rt::Engine::Tree, &w.input, reps);
            let (vm_plain, vp_steps, _) =
                time_cured_temporal(&plain, ccured_rt::Engine::Vm, &w.input, reps);
            let (tree_temporal, tt_steps, tt_checks) =
                time_cured_temporal(&temporal, ccured_rt::Engine::Tree, &w.input, reps);
            let (vm_temporal, vt_steps, vt_checks) =
                time_cured_temporal(&temporal, ccured_rt::Engine::Vm, &w.input, reps);
            assert_eq!(
                tp_steps, vp_steps,
                "{}: engines disagree on spatial-only steps",
                w.name
            );
            assert_eq!(
                (tt_steps, tt_checks),
                (vt_steps, vt_checks),
                "{}: engines disagree under --temporal",
                w.name
            );
            TemporalRow {
                name: w.name.clone(),
                steps_plain: tp_steps,
                steps_temporal: tt_steps,
                temporal_checks: tt_checks,
                tree_plain,
                tree_temporal,
                vm_plain,
                vm_temporal,
            }
        })
        .collect();
    TemporalFig { rows, reps }
}

/// E18 (`fig-hot`): one workload's three-way engine comparison — the
/// tree-walking reference, the untiered single-tier VM (the E13
/// configuration) and the profile-guided tiered VM.
#[derive(Debug, Clone)]
pub struct HotRow {
    /// Workload name.
    pub name: String,
    /// Guest instruction steps (identical across all three configurations).
    pub steps: u64,
    /// Best-of-`reps` wall-clock on the tree-walking reference engine.
    pub tree: std::time::Duration,
    /// Best-of-`reps` wall-clock on the VM with tiering off.
    pub vm_untiered: std::time::Duration,
    /// Best-of-`reps` wall-clock on the VM with the default tier schedule.
    pub vm_tiered: std::time::Duration,
}

impl HotRow {
    /// `tree / vm_untiered` — the single-tier baseline speedup.
    pub fn speedup_untiered(&self) -> f64 {
        self.tree.as_secs_f64() / self.vm_untiered.as_secs_f64().max(1e-9)
    }

    /// `tree / vm_tiered` — what hot recompilation buys on top.
    pub fn speedup_tiered(&self) -> f64 {
        self.tree.as_secs_f64() / self.vm_tiered.as_secs_f64().max(1e-9)
    }
}

/// E18 (`fig-hot`): the whole comparison.
#[derive(Debug, Clone)]
pub struct HotFig {
    /// Per-workload timings.
    pub rows: Vec<HotRow>,
    /// Timing repetitions per configuration (best-of).
    pub reps: u32,
}

impl HotFig {
    /// Geometric mean of the untiered-VM speedups (the E13 baseline,
    /// re-measured in the same run so the two geomeans are comparable).
    pub fn geomean_untiered(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        (self
            .rows
            .iter()
            .map(|r| r.speedup_untiered().ln())
            .sum::<f64>()
            / n)
            .exp()
    }

    /// Geometric mean of the tiered-VM speedups.
    pub fn geomean_tiered(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        (self
            .rows
            .iter()
            .map(|r| r.speedup_tiered().ln())
            .sum::<f64>()
            / n)
            .exp()
    }

    /// `BENCH_hot.json` — machine-readable record for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"experiment\": \"fig-hot\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"steps\": {}, \"tree_us\": {}, \"vm_untiered_us\": {}, \
                 \"vm_tiered_us\": {}, \"speedup_untiered\": {:.3}, \"speedup_tiered\": {:.3}}}{}\n",
                r.name,
                r.steps,
                r.tree.as_micros(),
                r.vm_untiered.as_micros(),
                r.vm_tiered.as_micros(),
                r.speedup_untiered(),
                r.speedup_tiered(),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"reps\": {},\n  \"geomean_untiered_speedup\": {:.3},\n  \
             \"geomean_tiered_speedup\": {:.3}\n}}\n",
            self.reps,
            self.geomean_untiered(),
            self.geomean_tiered()
        ));
        s
    }
}

/// As [`time_cured`], but on the VM with an explicit tier schedule (E18
/// pins the untiered and tiered configurations instead of the default).
fn time_cured_vm(
    cured: &ccured::Cured,
    input: &[u8],
    reps: u32,
    tier: ccured_rt::TierMode,
) -> (std::time::Duration, u64) {
    use ccured_rt::Interp;
    let mut best = std::time::Duration::MAX;
    let mut steps = 0;
    for _ in 0..reps.max(1) {
        let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
        interp.set_engine(ccured_rt::Engine::Vm);
        interp.set_tiering(tier);
        interp.set_input(input.to_vec());
        let t0 = std::time::Instant::now();
        interp.run().expect("bench workload runs clean");
        best = best.min(t0.elapsed());
        steps = interp.counters.instrs;
    }
    (best, steps)
}

/// E18 (`fig-hot`): tree vs untiered VM vs profile-guided tiered VM over
/// the same Figure-9 corpus as E13, cured once per workload. The step
/// counts are asserted identical across all three configurations — the
/// tiered runs must win on wall-clock alone, never by skipping work.
pub fn fig_hot(smoke: bool) -> HotFig {
    let (ws, reps) = interp_corpus(smoke);
    let rows = ws
        .iter()
        .map(|w| {
            let mut curer = ccured::Curer::new();
            if w.with_wrappers {
                curer.with_stdlib_wrappers();
            }
            let cured = curer.cure_source(&w.source).expect("fig-hot cure");
            let (tree, tree_steps) = time_cured(&cured, ccured_rt::Engine::Tree, &w.input, reps);
            let (flat, flat_steps) =
                time_cured_vm(&cured, &w.input, reps, ccured_rt::TierMode::Off);
            let (tiered, tiered_steps) =
                time_cured_vm(&cured, &w.input, reps, ccured_rt::TierMode::default());
            assert_eq!(
                tree_steps, flat_steps,
                "{}: untiered VM disagrees on instruction steps",
                w.name
            );
            assert_eq!(
                tree_steps, tiered_steps,
                "{}: tiered VM disagrees on instruction steps",
                w.name
            );
            HotRow {
                name: w.name.clone(),
                steps: tiered_steps,
                tree,
                vm_untiered: flat,
                vm_tiered: tiered,
            }
        })
        .collect();
    HotFig { rows, reps }
}

/// E14 (`fig-profile`): one hot site in a workload's profile summary.
#[derive(Debug, Clone)]
pub struct ProfileSiteRow {
    /// Function containing the site.
    pub func: String,
    /// Check kind name (`seq_bounds`, `null`, …).
    pub check: &'static str,
    /// Dynamic executions.
    pub hits: u64,
    /// Abstract cost attributed to the site.
    pub cost: f64,
    /// Why the eliminator kept it (None: nothing was kept to explain).
    pub kept_because: Option<String>,
}

/// E14 (`fig-profile`): one workload's check-site profile summary.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Workload name.
    pub name: String,
    /// Static check sites after elision merging.
    pub sites: usize,
    /// Sites that executed at least once.
    pub hot_sites: usize,
    /// Dynamic checks executed.
    pub total_hits: u64,
    /// Total abstract cost attributed across all sites.
    pub total_cost: f64,
    /// Fraction of the attributed cost concentrated in the top 3 sites
    /// (the paper's point: check cost is dominated by a handful of sites).
    pub top_share: f64,
    /// Hot sites the eliminator could not remove.
    pub unelided_hot: usize,
    /// The top 3 hot sites.
    pub top: Vec<ProfileSiteRow>,
}

/// E14 (`fig-profile`): hot-site distribution over the corpus.
#[derive(Debug, Clone)]
pub struct ProfileFig {
    /// Per-workload summaries.
    pub rows: Vec<ProfileRow>,
}

impl ProfileFig {
    /// `BENCH_profile.json` — machine-readable record for CI artifacts.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut s = String::from("{\n  \"experiment\": \"fig-profile\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"sites\": {}, \"hot_sites\": {}, \"total_hits\": {}, \
                 \"total_cost\": {:.1}, \"top_share\": {:.3}, \"unelided_hot\": {}, \"top\": [",
                esc(&r.name),
                r.sites,
                r.hot_sites,
                r.total_hits,
                r.total_cost,
                r.top_share,
                r.unelided_hot
            ));
            for (j, t) in r.top.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let why = match &t.kept_because {
                    Some(w) => format!("\"{}\"", esc(w)),
                    None => "null".to_string(),
                };
                s.push_str(&format!(
                    "{{\"func\": \"{}\", \"check\": \"{}\", \"hits\": {}, \"cost\": {:.1}, \"kept_because\": {}}}",
                    esc(&t.func),
                    t.check,
                    t.hits,
                    t.cost,
                    why
                ));
            }
            s.push_str(&format!(
                "]}}{}\n",
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Runs one cured workload on `engine` with profiling and returns the
/// ranked site rows (run errors are impossible on this corpus).
fn profile_cured(
    cured: &ccured::Cured,
    engine: ccured_rt::Engine,
    input: &[u8],
) -> Vec<ccured_rt::SiteReport> {
    use ccured_rt::Interp;
    let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
    interp.set_engine(engine);
    interp.set_input(input.to_vec());
    interp.enable_profile(cured.sites.len());
    interp.run().expect("fig-profile workload runs clean");
    let prof = interp.profile().cloned().unwrap_or_default();
    ccured_rt::profile::rank_sites(&cured.sites, &prof, &CostModel::default())
}

/// E14 (`fig-profile`): per-site check profiles over the same corpus as
/// [`fig_interp`]. Every workload is profiled on *both* engines and the
/// rankings are asserted identical — the differential guarantee the CLI
/// `profile` subcommand relies on. `smoke` shrinks the workloads for CI.
pub fn fig_profile(smoke: bool) -> ProfileFig {
    let ws = if smoke {
        vec![
            micro::safe_deref(400),
            micro::seq_index(200),
            micro::wild_loop(60),
            micro::rtti_dispatch(150),
            micro::ptr_store(200),
            olden::em3d(32, 4, 12),
            olden::treeadd(9),
            ptrdist::anagram(40),
        ]
    } else {
        vec![
            micro::safe_deref(4000),
            micro::seq_index(1500),
            micro::wild_loop(500),
            micro::rtti_dispatch(1200),
            micro::ptr_store(1500),
            olden::em3d(64, 6, 48),
            olden::treeadd(12),
            ptrdist::anagram(80),
            ptrdist::ks(30),
            spec::compress_like(32, 8),
            spec::ijpeg_oo(48, 40),
        ]
    };
    let rows = ws
        .iter()
        .map(|w| {
            let mut curer = ccured::Curer::new();
            if w.with_wrappers {
                curer.with_stdlib_wrappers();
            }
            let cured = curer.cure_source(&w.source).expect("fig-profile cure");
            let vm = profile_cured(&cured, ccured_rt::Engine::Vm, &w.input);
            let tree = profile_cured(&cured, ccured_rt::Engine::Tree, &w.input);
            let key = |rows: &[ccured_rt::SiteReport]| {
                rows.iter()
                    .map(|r| (r.site.id, r.hits, r.fails, r.walk_steps, r.cost.to_bits()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                key(&vm),
                key(&tree),
                "{}: engines disagree on the site ranking",
                w.name
            );
            let total_cost: f64 = vm.iter().map(|r| r.cost).sum();
            let top_cost: f64 = vm.iter().take(3).map(|r| r.cost).sum();
            ProfileRow {
                name: w.name.clone(),
                sites: vm.len(),
                hot_sites: vm.iter().filter(|r| r.hits > 0).count(),
                total_hits: vm.iter().map(|r| r.hits).sum(),
                total_cost,
                top_share: if total_cost > 0.0 {
                    top_cost / total_cost
                } else {
                    0.0
                },
                unelided_hot: vm
                    .iter()
                    .filter(|r| r.hits > 0 && r.site.keep_reason.is_some())
                    .count(),
                top: vm
                    .iter()
                    .filter(|r| r.hits > 0)
                    .take(3)
                    .map(|r| ProfileSiteRow {
                        func: r.site.func.clone(),
                        check: r.site.check,
                        hits: r.hits,
                        cost: r.cost,
                        kept_because: r.site.keep_reason.clone(),
                    })
                    .collect(),
            }
        })
        .collect();
    ProfileFig { rows }
}

/// E14: the wall-clock cost of *enabling* profiling — the geomean over the
/// Figure 9 corpus of (profiled / plain) run time, each best-of-`reps` on
/// the bytecode VM. The acceptance bar is <5% (asserted in release).
pub fn profile_overhead(reps: u32) -> f64 {
    let corpus = daemons::figure9_corpus();
    let mut ln_sum = 0.0;
    for w in &corpus {
        let mut curer = ccured::Curer::new();
        if w.with_wrappers {
            curer.with_stdlib_wrappers();
        }
        let cured = curer.cure_source(&w.source).expect("profile-overhead cure");
        let (plain, _) = time_cured_with(&cured, ccured_rt::Engine::Vm, &w.input, reps, false);
        let (profiled, _) = time_cured_with(&cured, ccured_rt::Engine::Vm, &w.input, reps, true);
        ln_sum += (profiled.as_secs_f64() / plain.as_secs_f64().max(1e-9)).ln();
    }
    (ln_sum / corpus.len().max(1) as f64).exp()
}

/// E15 (`fig-opt2`): one workload's executed-check cost under the three
/// optimizer configurations.
#[derive(Debug, Clone)]
pub struct Opt2Row {
    /// Workload name.
    pub name: String,
    /// Whether this is one of the strided workloads the ≥15% headline
    /// claim is asserted over (monotone induction-variable SEQ loops).
    pub strided: bool,
    /// Executed-check cycles with no static optimization (`--no-opt`).
    pub noopt: f64,
    /// Executed-check cycles with elimination only (`--no-loop-opt`,
    /// the PR-5 baseline the loop passes are measured against).
    pub elim: f64,
    /// Executed-check cycles with the full optimizer (default).
    pub full: f64,
    /// Checks hoisted to loop-entry probes (static count).
    pub hoisted: u64,
    /// Per-iteration bounds checks widened to whole-trip probes.
    pub widened: u64,
}

impl Opt2Row {
    /// Fractional executed-check-cost reduction of the loop passes over
    /// the elimination-only baseline (`0.30` = 30% fewer check cycles).
    pub fn reduction(&self) -> f64 {
        if self.elim <= 0.0 {
            0.0
        } else {
            1.0 - self.full / self.elim
        }
    }
}

/// E15 (`fig-opt2`): the whole comparison.
#[derive(Debug, Clone)]
pub struct Opt2Fig {
    /// Per-workload costs.
    pub rows: Vec<Opt2Row>,
}

impl Opt2Fig {
    /// Geometric mean of the loop passes' cost reduction over the strided
    /// subset — the headline E15 claim (target ≥ 15%).
    pub fn geomean_reduction_strided(&self) -> f64 {
        let strided: Vec<&Opt2Row> = self.rows.iter().filter(|r| r.strided).collect();
        if strided.is_empty() {
            return 0.0;
        }
        let ln_sum: f64 = strided
            .iter()
            .map(|r| (r.full / r.elim.max(1e-9)).max(1e-9).ln())
            .sum();
        1.0 - (ln_sum / strided.len() as f64).exp()
    }

    /// `BENCH_opt2.json` — machine-readable record for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"experiment\": \"fig-opt2\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"strided\": {}, \"noopt_check_cycles\": {:.1}, \
                 \"elim_check_cycles\": {:.1}, \"full_check_cycles\": {:.1}, \
                 \"reduction\": {:.3}, \"hoisted\": {}, \"widened\": {}}}{}\n",
                r.name,
                r.strided,
                r.noopt,
                r.elim,
                r.full,
                r.reduction(),
                r.hoisted,
                r.widened,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"geomean_reduction_strided\": {:.3}\n}}\n",
            self.geomean_reduction_strided()
        ));
        s
    }
}

/// E15 (`fig-opt2`): executed-check cost of no-opt vs elimination-only vs
/// the full loop optimizer (hoisting + widening), over the strided
/// microbenchmarks and a slice of the Figure 9 system corpus. Costs come
/// from the deterministic per-kind check counters × [`CostModel`], so the
/// figure is exactly reproducible; the three runs of each workload are
/// also asserted observationally identical (the differential suite in
/// `tests/tests/opt2.rs` does this exhaustively).
pub fn fig_opt2(smoke: bool) -> Opt2Fig {
    use ccured_workloads::olden;
    let (strided, rest) = if smoke {
        (
            vec![micro::seq_index(50), micro::ptr_store(25)],
            vec![
                micro::safe_deref(100),
                micro::rtti_dispatch(50),
                olden::treeadd(8),
                daemons::ftpd(4, false),
                daemons::sendmail_like(6, false),
            ],
        )
    } else {
        (
            vec![micro::seq_index(400), micro::ptr_store(200)],
            vec![
                micro::safe_deref(800),
                micro::rtti_dispatch(400),
                olden::treeadd(10),
                olden::em3d(32, 4, 12),
                daemons::ftpd(8, false),
                daemons::sendmail_like(12, false),
                daemons::openssh_like(30, false),
            ],
        )
    };
    let model = CostModel::default();
    let opts = InferOptions::default();
    let mut rows = Vec::new();
    for (ws, is_strided) in [(strided, true), (rest, false)] {
        for w in ws {
            let noopt = runner::run_cured_loop_opt(&w, &opts, false, false)
                .expect("fig-opt2 cure (no-opt)");
            let elim = runner::run_cured_loop_opt(&w, &opts, true, false)
                .expect("fig-opt2 cure (elim-only)");
            let full =
                runner::run_cured_loop_opt(&w, &opts, true, true).expect("fig-opt2 cure (full)");
            assert_eq!(
                full.stats.output, noopt.stats.output,
                "{}: optimizer changed program output",
                w.name
            );
            assert_eq!(
                full.stats.error, noopt.stats.error,
                "{}: optimizer changed the verdict",
                w.name
            );
            rows.push(Opt2Row {
                name: w.name.clone(),
                strided: is_strided,
                noopt: model.check_cycles(&noopt.stats.counters),
                elim: model.check_cycles(&elim.stats.counters),
                full: model.check_cycles(&full.stats.counters),
                hoisted: full.cured.report.checks_hoisted,
                widened: full.cured.report.checks_widened,
            });
        }
    }
    Opt2Fig { rows }
}

/// E16 (`fig-serve`): the cure daemon's warm paths against its own cold
/// pass over the micro+Olden corpus.
#[derive(Debug, Clone)]
pub struct ServeFig {
    /// Units in the corpus.
    pub units: usize,
    /// Wall-clock of the cold pass (empty unit and function caches).
    pub cold: std::time::Duration,
    /// Wall-clock of re-requesting identical sources (whole-unit cache
    /// hits — the CI/rebuild shape).
    pub warm_identical: std::time::Duration,
    /// Wall-clock after appending one function to every unit
    /// (function-level incremental recure — the editor save-loop shape).
    pub warm_touched: std::time::Duration,
    /// Function-cache hits across the touched pass.
    pub fn_hits: u64,
    /// Function-cache misses across the touched pass (the new functions).
    pub fn_misses: u64,
    /// Whether every touched-pass report digest matched a cold full batch
    /// over the same (modified) tree — the byte-identity guarantee.
    pub digests_match: bool,
    /// Median per-request reply latency across all three passes.
    pub reply_p50: std::time::Duration,
    /// 99th-percentile per-request reply latency across all three passes.
    pub reply_p99: std::time::Duration,
}

impl ServeFig {
    /// `cold / warm_identical` — what the resident unit cache buys.
    pub fn identical_speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm_identical.as_secs_f64().max(1e-9)
    }

    /// `cold / warm_touched` — what function-level incrementality buys on
    /// a real edit.
    pub fn touched_speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm_touched.as_secs_f64().max(1e-9)
    }

    /// Share of function cures the touched pass skipped.
    pub fn fn_hit_rate(&self) -> f64 {
        self.fn_hits as f64 / ((self.fn_hits + self.fn_misses) as f64).max(1.0)
    }

    /// `BENCH_serve.json` — machine-readable record for CI artifacts.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"fig-serve\",\n  \"units\": {},\n  \
             \"cold_us\": {},\n  \"warm_identical_us\": {},\n  \"warm_touched_us\": {},\n  \
             \"identical_speedup\": {:.3},\n  \"touched_speedup\": {:.3},\n  \
             \"fn_hits\": {},\n  \"fn_misses\": {},\n  \"fn_hit_rate\": {:.3},\n  \
             \"reply_p50_us\": {},\n  \"reply_p99_us\": {},\n  \
             \"digests_match\": {}\n}}\n",
            self.units,
            self.cold.as_micros(),
            self.warm_identical.as_micros(),
            self.warm_touched.as_micros(),
            self.identical_speedup(),
            self.touched_speedup(),
            self.fn_hits,
            self.fn_misses,
            self.fn_hit_rate(),
            self.reply_p50.as_micros(),
            self.reply_p99.as_micros(),
            self.digests_match
        )
    }
}

#[cfg(unix)]
fn serve_field(json: &str, name: &str) -> Option<u64> {
    json.split(&format!("\"{name}\":"))
        .nth(1)?
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

/// E16 (`fig-serve`): measure the daemon over [`batch_corpus`] via real
/// socket requests. `smoke` shrinks the corpus for CI.
///
/// # Errors
///
/// I/O errors writing the corpus, starting the daemon, or talking to it.
#[cfg(unix)]
pub fn fig_serve(smoke: bool) -> std::io::Result<ServeFig> {
    use ccured_batch::{request, run_batch, BatchConfig, ServeConfig, Server};
    use std::time::Instant;

    let dir = std::env::temp_dir().join(format!("ccured-fig-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = (|| {
        let mut corpus = batch_corpus();
        if smoke {
            corpus.truncate(4);
        }
        let units = ccured_workloads::write_units(&dir.join("src"), &corpus)?;

        let mut cfg = ServeConfig::new(dir.join("cc.sock"));
        cfg.cache_dir = Some(dir.join("cache"));
        cfg.workers = 2;
        let mut srv = Server::start(cfg)?;
        let sock = srv.socket().to_path_buf();
        // Every request's wall-clock feeds the reply-latency percentiles.
        let latencies = std::cell::RefCell::new(Vec::new());
        let cure = |u: &std::path::PathBuf| {
            let t = Instant::now();
            let r = request(&sock, &format!("cure {}", u.display()));
            latencies.borrow_mut().push(t.elapsed());
            r
        };

        let t = Instant::now();
        for u in &units {
            let r = cure(u)?;
            assert!(r.contains("\"status\":\"ok\""), "{}: {r}", u.display());
        }
        let cold = t.elapsed();

        // Identical bytes: resident whole-unit cache hits.
        let t = Instant::now();
        for u in &units {
            let r = cure(u)?;
            assert!(r.contains("\"from_cache\":true"), "{}: {r}", u.display());
        }
        let warm_identical = t.elapsed();

        // The editor save-loop: one appended function per unit, everything
        // else unchanged — the daemon re-cures only the new functions.
        for u in &units {
            let src = std::fs::read_to_string(u)?;
            std::fs::write(
                u,
                format!("{src}\nint ccured_fig_serve_extra(int v) {{ return v + 1; }}\n"),
            )?;
        }
        let (mut fn_hits, mut fn_misses) = (0u64, 0u64);
        let mut warm_digests = Vec::new();
        let t = Instant::now();
        for u in &units {
            let r = cure(u)?;
            assert!(r.contains("\"status\":\"ok\""), "{}: {r}", u.display());
            fn_hits += serve_field(&r, "fn_hits").unwrap_or(0);
            fn_misses += serve_field(&r, "fn_misses").unwrap_or(0);
            warm_digests.push(
                r.split("\"digest\":\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .unwrap_or("")
                    .to_string(),
            );
        }
        let warm_touched = t.elapsed();
        srv.stop();

        // Byte-identity spot check: the warm digests must equal a cold
        // full batch over the modified tree.
        let mut bcfg = BatchConfig::new(ccured::Curer::new());
        bcfg.use_cache = false;
        let ground = run_batch(&bcfg, &units)?;
        let digests_match = ground
            .units
            .iter()
            .zip(&warm_digests)
            .all(|(u, d)| format!("{:016x}", u.report_digest) == *d);

        let mut lat = latencies.into_inner();
        lat.sort_unstable();
        let pct = |p: usize| lat[(lat.len() - 1) * p / 100];

        Ok(ServeFig {
            units: units.len(),
            cold,
            warm_identical,
            warm_touched,
            fn_hits,
            fn_misses,
            digests_match,
            reply_p50: pct(50),
            reply_p99: pct(99),
        })
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// E17 (`fig-synth`): a generative differential-soundness campaign over a
/// synthesized corpus (see `ccured-synth`): all four profiles, batch cure,
/// tree-vs-VM differential, and the fault-injection matrix per unit.
#[derive(Debug, Clone)]
pub struct SynthFig {
    /// The full campaign report (histograms, outcome matrix, verdicts).
    pub report: ccured_synth::CampaignReport,
}

impl SynthFig {
    /// Worst per-profile pointer-kind deviation from target, in points.
    pub fn max_deviation(&self) -> f64 {
        self.report
            .profiles
            .iter()
            .map(ccured_synth::ProfileStat::max_deviation)
            .fold(0.0, f64::max)
    }

    /// `BENCH_synth.json` — the campaign report is already the record.
    pub fn to_json(&self) -> String {
        self.report.to_json()
    }
}

/// E17: run the campaign. `smoke` shrinks the corpus for CI; the full size
/// clears the 500-unit acceptance bar with all six fault classes seeded.
///
/// # Errors
///
/// I/O errors writing the generated corpus to the scratch directory.
pub fn fig_synth(smoke: bool) -> std::io::Result<SynthFig> {
    let dir = std::env::temp_dir().join(format!("ccured-fig-synth-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ccured_synth::CampaignConfig::new(dir.clone());
    cfg.units = if smoke { 16 } else { 520 };
    cfg.mutants_per_unit = if smoke { 2 } else { 4 };
    let report = ccured_synth::run_campaign(&cfg);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(SynthFig { report: report? })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// E13: the bytecode VM must beat the tree-walking reference engine by
    /// a clear margin on the micro + Olden corpus. The measured geomean is
    /// ~2×; the assertion sits at 1.5× to stay out of the timing-noise
    /// band (the design target of 5× is unreachable while both engines
    /// execute the identical check/metadata machinery — see EXPERIMENTS.md
    /// E13 for the accounting).
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "wall-clock ratio is only meaningful in release"
    )]
    fn fig_interp_vm_beats_tree() {
        let f = fig_interp(true);
        for r in &f.rows {
            assert!(r.steps > 0, "{}: no guest steps recorded", r.name);
        }
        let g = f.geomean_speedup();
        assert!(
            g >= 1.5,
            "bytecode VM must be ≥1.5× the tree engine (geomean), got {g:.2}×"
        );
    }

    /// E18: the profile-guided tiered VM must clear a *higher* bar than
    /// E13's single-tier floor — ≥2.2× geomean over the tree engine on
    /// the Figure-9 corpus — and must strictly beat the untiered VM
    /// measured in the same run (so the win is attributable to hot
    /// recompilation, not to timing drift between runs).
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "wall-clock ratio is only meaningful in release"
    )]
    fn fig_hot_tiered_vm_clears_floor() {
        let f = fig_hot(true);
        for r in &f.rows {
            assert!(r.steps > 0, "{}: no guest steps recorded", r.name);
        }
        let tiered = f.geomean_tiered();
        let untiered = f.geomean_untiered();
        println!("E18 floor: tiered {tiered:.2}x, untiered {untiered:.2}x (floor 2.2x)");
        assert!(
            tiered >= 2.2,
            "tiered VM must be ≥2.2× the tree engine (geomean), got {tiered:.2}×"
        );
        assert!(
            tiered > untiered,
            "tiered VM must beat the untiered VM: {tiered:.2}× vs {untiered:.2}×"
        );
    }

    /// E18: the JSON record carries both geomeans (the CI artifact is the
    /// comparison, not a single number).
    #[test]
    fn fig_hot_json_records_both_geomeans() {
        let f = HotFig {
            rows: vec![HotRow {
                name: "w".into(),
                steps: 10,
                tree: std::time::Duration::from_micros(900),
                vm_untiered: std::time::Duration::from_micros(450),
                vm_tiered: std::time::Duration::from_micros(300),
            }],
            reps: 2,
        };
        let j = f.to_json();
        assert!(j.contains("\"experiment\": \"fig-hot\""), "{j}");
        assert!(j.contains("\"geomean_untiered_speedup\": 2.000"), "{j}");
        assert!(j.contains("\"geomean_tiered_speedup\": 3.000"), "{j}");
        assert!(j.contains("\"vm_tiered_us\": 300"), "{j}");
    }

    /// E19: the temporal cure must execute key checks on the corpus, add
    /// guest steps only (never remove any), and agree across engines —
    /// [`fig_temporal`] asserts the cross-engine step/check equality
    /// internally, so this test is also that assertion's smoke run.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "full corpus is release-sized; debug runs take minutes"
    )]
    fn fig_temporal_counts_checks_and_engines_agree() {
        let f = fig_temporal(true);
        assert!(
            f.rows.iter().any(|r| r.temporal_checks > 0),
            "corpus must execute temporal key checks"
        );
        for r in &f.rows {
            assert!(r.steps_plain > 0, "{}: no guest steps recorded", r.name);
            assert!(
                r.steps_temporal >= r.steps_plain,
                "{}: temporal cure removed guest steps ({} < {})",
                r.name,
                r.steps_temporal,
                r.steps_plain
            );
        }
    }

    /// E19: temporal checking must stay cheap — a key compare per deref,
    /// not a shadow-memory walk. The ceiling sits at 1.5× geomean per
    /// engine (measured ~1.1–1.2×), well clear of the Valgrind-class
    /// order-of-magnitude cost the paper contrasts against.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "wall-clock ratio is only meaningful in release"
    )]
    fn fig_temporal_overhead_under_ceiling() {
        let f = fig_temporal(true);
        let tree = f.geomean_overhead_tree();
        let vm = f.geomean_overhead_vm();
        println!("E19 ceiling: tree {tree:.2}x, vm {vm:.2}x (ceiling 1.5x)");
        assert!(
            tree <= 1.5,
            "temporal overhead on the tree engine must be ≤1.5× (geomean), got {tree:.2}×"
        );
        assert!(
            vm <= 1.5,
            "temporal overhead on the VM must be ≤1.5× (geomean), got {vm:.2}×"
        );
    }

    /// E19: the JSON record carries both per-engine geomeans and the raw
    /// counters the overhead is computed from.
    #[test]
    fn fig_temporal_json_records_overheads() {
        let f = TemporalFig {
            rows: vec![TemporalRow {
                name: "w".into(),
                steps_plain: 100,
                steps_temporal: 120,
                temporal_checks: 20,
                tree_plain: std::time::Duration::from_micros(800),
                tree_temporal: std::time::Duration::from_micros(1000),
                vm_plain: std::time::Duration::from_micros(400),
                vm_temporal: std::time::Duration::from_micros(440),
            }],
            reps: 2,
        };
        let j = f.to_json();
        assert!(j.contains("\"experiment\": \"fig-temporal\""), "{j}");
        assert!(j.contains("\"geomean_overhead_tree\": 1.250"), "{j}");
        assert!(j.contains("\"geomean_overhead_vm\": 1.100"), "{j}");
        assert!(j.contains("\"temporal_checks\": 20"), "{j}");
        assert!(j.contains("\"steps_temporal\": 120"), "{j}");
    }

    /// E14: the profile figure's internal cross-engine assertion must hold
    /// over the smoke corpus, the corpus must actually exercise checks, and
    /// the eliminator must leave some hot sites behind to explain.
    #[test]
    fn fig_profile_finds_hot_sites_and_engines_agree() {
        let f = fig_profile(true);
        assert!(
            f.rows.iter().all(|r| r.total_hits > 0),
            "corpus runs checks"
        );
        assert!(
            f.rows.iter().any(|r| r.unelided_hot > 0),
            "some hot sites survive the eliminator"
        );
        for r in &f.rows {
            assert!(r.hot_sites <= r.sites);
            assert!(r.top_share > 0.0 && r.top_share <= 1.0 + 1e-9, "{}", r.name);
            assert!(!r.top.is_empty(), "{}: no top sites", r.name);
        }
        let j = f.to_json();
        assert!(j.contains("\"experiment\": \"fig-profile\""), "{j}");
        assert!(j.contains("\"kept_because\""), "{j}");
    }

    /// E14: enabling per-site profiling must cost <5% wall-clock over the
    /// Figure 9 corpus (the whole point of the single-branch off switch and
    /// the slot-bump hot path).
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "wall-clock overhead is only meaningful in release"
    )]
    fn profiling_overhead_under_five_percent() {
        let o = profile_overhead(5);
        assert!(
            o < 1.05,
            "profiling must cost <5% wall-clock, measured {:.1}%",
            (o - 1.0) * 100.0
        );
    }

    /// E15: the loop passes never add executed-check cost anywhere, win
    /// strictly on every strided workload, and the report attributes the
    /// wins (widened > 0 where the win came from widening).
    #[test]
    fn fig_opt2_never_regresses_and_attributes_wins() {
        let f = fig_opt2(true);
        for r in &f.rows {
            assert!(
                r.full <= r.elim + 1e-9,
                "{}: loop passes added check cost ({} > {})",
                r.name,
                r.full,
                r.elim
            );
            assert!(
                r.elim <= r.noopt + 1e-9,
                "{}: eliminator added check cost",
                r.name
            );
            if r.strided {
                assert!(r.widened > 0, "{}: strided loop must widen", r.name);
                assert!(r.full < r.elim, "{}: widening must win", r.name);
            }
        }
        let j = f.to_json();
        assert!(j.contains("\"experiment\": \"fig-opt2\""), "{j}");
        assert!(j.contains("\"geomean_reduction_strided\""), "{j}");
    }

    /// E15 headline: ≥15% geometric-mean executed-check-cost reduction on
    /// the strided workloads, full-size corpus. The metric is
    /// deterministic (counters × cost model), but the full corpus is too
    /// slow for debug CI, so the smoke-size shape test above carries the
    /// always-on coverage.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "full-size corpus is only run in release")]
    fn fig_opt2_strided_reduction_at_least_fifteen_percent() {
        let f = fig_opt2(false);
        let g = f.geomean_reduction_strided();
        assert!(
            g >= 0.15,
            "loop optimizer must cut ≥15% of executed-check cost on strided \
             workloads (geomean), got {:.1}%",
            g * 100.0
        );
    }

    #[test]
    fn ijpeg_shape_matches_paper() {
        let r = ijpeg_experiment(12, 4);
        assert!(
            r.old_wild_pct >= 30,
            "original CCured drowns in WILD: {}",
            r.old_wild_pct
        );
        assert_eq!(r.new_wild_pct, 0, "RTTI eliminates WILD");
        assert!(r.new_rtti_pct > 0);
        assert!(
            r.old_ratio > r.new_ratio,
            "RTTI reduces the slowdown: {} -> {}",
            r.old_ratio,
            r.new_ratio
        );
    }

    #[test]
    fn fig_batch_warm_cache_wins() {
        let f = fig_batch(2).expect("fig-batch runs");
        assert_eq!(f.units, ccured_workloads::batch_corpus().len());
        assert!(
            (f.warm_hit_rate - 1.0).abs() < f64::EPSILON,
            "warm run must be all hits, got {}",
            f.warm_hit_rate
        );
        assert!(
            f.warm_speedup() >= 5.0,
            "warm-cache rerun must be ≥5× faster, got {:.2}×",
            f.warm_speedup()
        );
    }

    /// E16 shape: both warm paths work, functions are reused, and the
    /// incremental recure is digest-identical to a cold batch.
    #[cfg(unix)]
    #[test]
    fn fig_serve_shape_smoke() {
        let f = fig_serve(true).expect("fig-serve runs");
        assert!(f.units >= 2);
        assert!(f.digests_match, "warm recure diverged from cold batch");
        assert!(f.fn_hits > 0, "no function reuse on the touched pass");
        assert_eq!(
            f.fn_misses, f.units as u64,
            "exactly the appended function re-cures per unit"
        );
    }

    /// E17 shape: a smoke-size campaign must be sound (no escapes, no
    /// engine divergences, every unit cures) and land its pointer-kind
    /// histograms within tolerance of the requested profiles.
    #[test]
    fn fig_synth_smoke_campaign_is_sound_and_on_target() {
        let f = fig_synth(true).expect("fig-synth runs");
        assert!(f.report.ok(), "campaign unsound:\n{}", f.report.render());
        assert!(
            f.report.histograms_within(ccured_synth::KIND_TOLERANCE_PCT),
            "histograms off target by {:.1} points:\n{}",
            f.max_deviation(),
            f.report.render()
        );
        let j = f.to_json();
        assert!(
            j.contains("\"sound\": true") || j.contains("\"sound\":true"),
            "{j}"
        );
    }

    /// E16 floor: the resident unit cache must make an unchanged re-request
    /// ≥3× faster than the cold cure, and function-level incrementality
    /// must beat the cold pass outright on a one-function edit. Wall-clock
    /// ratios are only meaningful in release.
    #[cfg(unix)]
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "wall-clock ratio is only meaningful in release"
    )]
    fn fig_serve_warm_beats_cold() {
        let f = fig_serve(false).expect("fig-serve runs");
        assert!(f.digests_match, "warm recure diverged from cold batch");
        assert!(
            f.identical_speedup() >= 3.0,
            "unit-cache warm path must be ≥3× faster, got {:.2}×",
            f.identical_speedup()
        );
        assert!(
            f.touched_speedup() >= 1.05,
            "incremental recure must beat the cold pass, got {:.2}×",
            f.touched_speedup()
        );
    }

    #[test]
    fn fig9_sandbox_overhead_is_under_two_percent() {
        for row in fig9() {
            assert!(
                row.sandbox_overhead < 0.02,
                "{}: sandbox accounting costs {:.2}% of the cured run",
                row.name,
                row.sandbox_overhead * 100.0
            );
        }
    }

    #[test]
    fn security_scenarios_prevented() {
        for row in security() {
            assert!(row.prevented, "{}: {}", row.name, row.cured);
        }
    }

    #[test]
    fn metadata_lookup_favors_fat_pointers() {
        let (ccured, jk) = metadata_lookup(30);
        assert!(
            jk > ccured,
            "per-pointer metadata beats the global registry: {ccured} vs {jk}"
        );
    }

    #[test]
    fn ablation_is_a_staircase() {
        let rows = ablation(8, 3);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].wild_pct > rows[2].wild_pct);
        assert!(rows[0].ratio >= rows[2].ratio);
        assert_eq!(rows[2].wild_pct, 0);
    }
}
