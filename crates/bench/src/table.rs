//! Minimal fixed-width table rendering for the `tables` binary.

/// Renders a table: a header row followed by data rows, columns padded to
/// their widest cell, separated by two spaces.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio like the paper (`1.04`, `9.42`, `122`).
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

/// Formats an optional paper reference value.
pub fn paper_ratio(x: Option<f64>) -> String {
    match x {
        Some(v) => ratio(v),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let s = render(
            &["name", "ratio"],
            &[
                vec!["asis".into(), "0.96".into()],
                vec!["usertrack".into(), "1.00".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("asis"));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(1.0401), "1.04");
        assert_eq!(ratio(122.3), "122");
        assert_eq!(paper_ratio(None), "-");
    }
}
