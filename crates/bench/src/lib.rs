//! # ccured-bench
//!
//! The experiment harness: one function per table/figure of *CCured in the
//! Real World* (see the experiment index in `DESIGN.md`). Each returns
//! structured rows; the `tables` binary renders them next to the paper's
//! numbers, and the Criterion benches wall-clock the same runs.

pub mod experiments;
pub mod table;

pub use experiments::*;
