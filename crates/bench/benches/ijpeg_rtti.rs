//! Wall-clock benchmark for E4: executing the ijpeg OO workload with and
//! without the paper's extensions (curing excluded from the measured loop).

use ccured_infer::InferOptions;
use ccured_rt::{ExecMode, Interp};
use ccured_workloads::{runner, spec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ijpeg_rtti");
    g.sample_size(10);
    let w = spec::ijpeg_oo(24, 8);
    let tu = ccured_ast::parse_translation_unit(&w.source).unwrap();
    let orig = ccured_cil::lower_translation_unit(&tu).unwrap();
    let with_rtti = runner::run_cured(&w, &InferOptions::default())
        .unwrap()
        .cured;
    let old_ccured = runner::run_cured(&w, &InferOptions::original_ccured())
        .unwrap()
        .cured;
    g.bench_function("original_program", |b| {
        b.iter(|| Interp::new(&orig, ExecMode::Original).run().unwrap())
    });
    g.bench_function("cured_with_rtti", |b| {
        b.iter(|| {
            Interp::new(&with_rtti.program, ExecMode::cured(&with_rtti))
                .run()
                .unwrap()
        })
    });
    g.bench_function("cured_original_ccured", |b| {
        b.iter(|| {
            Interp::new(&old_ccured.program, ExecMode::cured(&old_ccured))
                .run()
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
