//! Wall-clock benchmark for E1 (Figure 8): executing an Apache module under
//! the request driver, original vs cured. Curing happens once, outside the
//! measured loop — the measured quantity is run-time overhead, as in the
//! paper.

use ccured_infer::InferOptions;
use ccured_rt::{ExecMode, Interp};
use ccured_workloads::{apache, runner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_apache");
    g.sample_size(10);
    for w in [apache::asis(20), apache::gzip(20), apache::usertrack(20)] {
        let full = format!(
            "{}\n{}",
            ccured::wrappers::stdlib_wrapper_source(),
            w.source
        );
        let tu = ccured_ast::parse_translation_unit(&full).unwrap();
        let orig = ccured_cil::lower_translation_unit(&tu).unwrap();
        let cured = runner::run_cured(&w, &InferOptions::default())
            .unwrap()
            .cured;
        g.bench_function(format!("{}_original", w.name), |b| {
            b.iter(|| {
                let mut i = Interp::new(&orig, ExecMode::Original);
                i.set_input(w.input.clone());
                i.run().unwrap()
            })
        });
        g.bench_function(format!("{}_cured", w.name), |b| {
            b.iter(|| {
                let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
                i.set_input(w.input.clone());
                i.run().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
