//! Wall-clock benchmark for E6: CCured vs Purify/Valgrind/Jones–Kelly on a
//! CPU-bound suite workload (curing excluded from the measured loop).

use ccured_infer::InferOptions;
use ccured_rt::{ExecMode, Interp};
use ccured_workloads::{runner, spec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    let w = spec::compress_like(6, 2);
    let tu = ccured_ast::parse_translation_unit(&w.source).unwrap();
    let orig = ccured_cil::lower_translation_unit(&tu).unwrap();
    let cured = runner::run_cured(&w, &InferOptions::default())
        .unwrap()
        .cured;
    g.bench_function("original", |b| {
        b.iter(|| Interp::new(&orig, ExecMode::Original).run().unwrap())
    });
    g.bench_function("ccured", |b| {
        b.iter(|| {
            Interp::new(&cured.program, ExecMode::cured(&cured))
                .run()
                .unwrap()
        })
    });
    for (name, mode) in [
        ("purify", ExecMode::Purify),
        ("valgrind", ExecMode::Valgrind),
        ("joneskelly", ExecMode::JonesKelly),
    ] {
        g.bench_function(name, |b| b.iter(|| Interp::new(&orig, mode).run().unwrap()));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
