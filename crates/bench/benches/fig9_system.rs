//! Wall-clock benchmark for E2 (Figure 9): the system-software corpus in
//! original, cured, and Valgrind-baseline modes (curing excluded from the
//! measured loop).

use ccured_infer::InferOptions;
use ccured_rt::{ExecMode, Interp};
use ccured_workloads::{daemons, runner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_system");
    g.sample_size(10);
    for w in [
        daemons::ftpd(6, false),
        daemons::openssl_cast(12),
        daemons::openssl_bn(8),
        daemons::bind_like(12, 10),
    ] {
        let full = format!(
            "{}\n{}",
            ccured::wrappers::stdlib_wrapper_source(),
            w.source
        );
        let src = if w.with_wrappers {
            full
        } else {
            w.source.clone()
        };
        let tu = ccured_ast::parse_translation_unit(&src).unwrap();
        let orig = ccured_cil::lower_translation_unit(&tu).unwrap();
        let cured = runner::run_cured(&w, &InferOptions::default())
            .unwrap()
            .cured;
        for (label, mode) in [
            ("original", ExecMode::Original),
            ("valgrind", ExecMode::Valgrind),
        ] {
            g.bench_function(format!("{}_{label}", w.name), |b| {
                b.iter(|| {
                    let mut i = Interp::new(&orig, mode);
                    i.set_input(w.input.clone());
                    i.run().unwrap()
                })
            });
        }
        g.bench_function(format!("{}_cured", w.name), |b| {
            b.iter(|| {
                let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
                i.set_input(w.input.clone());
                i.run().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
