//! Wall-clock benchmark for E7: the compatible (split) representation
//! overhead on the pointer-heavy em3d vs the scalar-heavy anagram (curing
//! excluded from the measured loop).

use ccured_infer::InferOptions;
use ccured_rt::{ExecMode, Interp};
use ccured_workloads::{olden, ptrdist, runner};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_overhead");
    g.sample_size(10);
    let split = InferOptions {
        split_everything: true,
        ..InferOptions::default()
    };
    for w in [olden::em3d(24, 4, 8), ptrdist::anagram(24)] {
        let nosplit = runner::run_cured(&w, &InferOptions::default())
            .unwrap()
            .cured;
        let allsplit = runner::run_cured(&w, &split).unwrap().cured;
        g.bench_function(format!("{}_nosplit", w.name), |b| {
            b.iter(|| {
                Interp::new(&nosplit.program, ExecMode::cured(&nosplit))
                    .run()
                    .unwrap()
            })
        });
        g.bench_function(format!("{}_allsplit", w.name), |b| {
            b.iter(|| {
                Interp::new(&allsplit.program, ExecMode::cured(&allsplit))
                    .run()
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
