//! Ablation benchmarks (E9/E10): the RTTI encoding (parent-chain walk vs
//! O(1) interval test) and per-pointer metadata vs a global registry
//! (curing excluded from the measured loops).

use ccured::Hierarchy;
use ccured_infer::InferOptions;
use ccured_rt::{ExecMode, Interp};
use ccured_workloads::{micro, runner, spec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_subtype_encodings(c: &mut Criterion) {
    let w = spec::ijpeg_oo(40, 1);
    let tu = ccured_ast::parse_translation_unit(&w.source).unwrap();
    let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
    let hier = Hierarchy::build(&prog);
    let deepest = (hier.len() - 1) as u32;
    let mut g = c.benchmark_group("rtti_encoding");
    g.bench_function("walk", |b| {
        b.iter(|| {
            let mut t = 0u32;
            for n in 1..hier.len() as u32 {
                t += hier.is_subtype_walk(deepest, n).0 as u32;
            }
            t
        })
    });
    g.bench_function("interval", |b| {
        b.iter(|| {
            let mut t = 0u32;
            for n in 1..hier.len() as u32 {
                t += hier.is_subtype_interval(deepest, n) as u32;
            }
            t
        })
    });
    g.finish();
}

fn bench_metadata(c: &mut Criterion) {
    let mut g = c.benchmark_group("metadata_lookup");
    g.sample_size(10);
    let w = micro::ptr_store(40);
    let tu = ccured_ast::parse_translation_unit(&w.source).unwrap();
    let orig = ccured_cil::lower_translation_unit(&tu).unwrap();
    let cured = runner::run_cured(&w, &InferOptions::default())
        .unwrap()
        .cured;
    g.bench_function("fat_pointers", |b| {
        b.iter(|| {
            Interp::new(&cured.program, ExecMode::cured(&cured))
                .run()
                .unwrap()
        })
    });
    g.bench_function("global_registry", |b| {
        b.iter(|| Interp::new(&orig, ExecMode::JonesKelly).run().unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_subtype_encodings, bench_metadata);
criterion_main!(benches);
