//! Compile-time benchmark: parsing, lowering, and whole-program inference
//! on the largest generated workloads (the analysis cost of the paper's
//! Section 2.1/3 algorithms).

use ccured_infer::{infer, InferOptions};
use ccured_workloads::{daemons, spec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    g.sample_size(20);
    for w in [spec::ijpeg_oo(40, 1), daemons::bind_like(1, 16)] {
        let tu = ccured_ast::parse_translation_unit(&w.source).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        g.bench_function(format!("{}_parse_lower", w.name), |b| {
            b.iter(|| {
                let tu = ccured_ast::parse_translation_unit(&w.source).unwrap();
                ccured_cil::lower_translation_unit(&tu).unwrap()
            })
        });
        g.bench_function(format!("{}_infer", w.name), |b| {
            b.iter(|| infer(&prog, &InferOptions::default()))
        });
        g.bench_function(format!("{}_infer_original", w.name), |b| {
            b.iter(|| infer(&prog, &InferOptions::original_ccured()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
