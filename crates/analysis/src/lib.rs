//! # ccured-analysis
//!
//! Static analyses over the CIL IR:
//!
//! * [`cfg`] — control-flow graphs for the structured statement tree, with
//!   a stable instruction numbering shared by analysis and rewriting;
//! * [`dataflow`] — a generic intraprocedural forward-dataflow framework
//!   (meet-semilattice facts, worklist fixpoint);
//! * [`elim`] — redundant-check elimination: dominated `CHECK_NULL`s,
//!   re-verified SEQ/WILD bounds on unmoved pointers, and repeated RTTI
//!   downcasts are deleted after instrumentation, plus a static failure
//!   detector for checks that provably always fail;
//! * [`blame`] — the WILD/SEQ blame explainer: shortest provenance path
//!   from any poisoned pointer back to the cast that caused it;
//! * [`loops`] / [`hoist`] / [`widen`] — the second-generation loop
//!   optimizer: loop-invariant null/RTTI checks are guarded to run once
//!   per loop entry, and per-iteration SEQ bounds checks on canonical
//!   counted loops are widened into one whole-trip range probe, both with
//!   exact per-iteration failure attribution preserved.

pub mod blame;
pub mod cfg;
pub mod dataflow;
pub mod elim;
pub mod hoist;
pub mod loops;
pub mod widen;

pub use blame::{blame_path, qual_names, render_blame, Blame, BlameStep};
pub use cfg::{BasicBlock, BlockId, Branch, Cfg, InstrId, NaturalLoop};
pub use dataflow::{forward, Analysis, Lattice};
pub use elim::{
    eliminate_checks, eliminate_checks_in_function, tracked_globals, ElisionResult, ElisionStats,
    StaticFailure,
};
pub use loops::{optimize_function, optimize_program, OptAction, OptResult};
