//! Control-flow graph construction over the structured CIL statement tree.
//!
//! The IR keeps `if`/`loop`/`switch` structured (plus `goto`/labels for the
//! irreducible cases), so analyses first flatten a function body into basic
//! blocks here. Every instruction is identified by a [`InstrId`]: its index
//! in a syntactic depth-first walk of the body. The walk order is a public
//! contract — [`for_each_instr_mut`] replays the same numbering over a
//! mutable body so a rewrite pass can act on decisions made against the CFG.

use ccured_cil::ir::{Exp, Function, Instr, Stmt};
use std::collections::{BTreeSet, HashMap};

/// Index of a basic block in [`Cfg::blocks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The index as a usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identity of an instruction: its position in the syntactic depth-first
/// walk of the function body (statement order; `if` visits the then-branch
/// before the else-branch, `switch` visits arms in declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId(pub u32);

/// A conditional terminator: the block ends in a two-way branch on `cond`.
/// Recorded so edge-sensitive analyses (the value-range domain) can refine
/// facts differently along the taken and fall-through edges.
#[derive(Debug, Clone)]
pub struct Branch {
    /// The branch condition, as written.
    pub cond: Exp,
    /// Successor taken when `cond` is non-zero.
    pub on_true: BlockId,
    /// Successor taken when `cond` is zero.
    pub on_false: BlockId,
}

/// A basic block: straight-line instructions plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// The block's instructions, tagged with their syntactic identity.
    pub instrs: Vec<(InstrId, Instr)>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// The conditional terminator, when the block ends in an `if`.
    pub branch: Option<Branch>,
}

/// A function body flattened into basic blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks; [`Cfg::entry`] is the function entry.
    pub blocks: Vec<BasicBlock>,
    /// The entry block (always `BlockId(0)`).
    pub entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of `f`'s body.
    pub fn build(f: &Function) -> Cfg {
        let mut b = Builder {
            blocks: vec![BasicBlock::default()],
            cur: Some(BlockId(0)),
            labels: HashMap::new(),
            next_instr: 0,
            frames: Vec::new(),
        };
        b.stmts(&f.body);
        for blk in &mut b.blocks {
            blk.succs.sort();
            blk.succs.dedup();
        }
        Cfg {
            blocks: b.blocks,
            entry: BlockId(0),
        }
    }

    /// Predecessor lists, derived from the successor edges.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, blk) in self.blocks.iter().enumerate() {
            for s in &blk.succs {
                preds[s.idx()].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Total number of instructions across all blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Blocks reachable from the entry.
    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut work = vec![self.entry];
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b.idx()], true) {
                continue;
            }
            work.extend(self.blocks[b.idx()].succs.iter().copied());
        }
        seen
    }

    /// Dominator sets over the reachable subgraph, by iterative dataflow
    /// (`dom(b) = {b} ∪ ⋂ dom(preds)`). Unreachable blocks get an empty
    /// set — they dominate nothing and produce no back edges.
    pub fn dominators(&self) -> Vec<BTreeSet<BlockId>> {
        let n = self.blocks.len();
        let reach = self.reachable();
        let preds = self.preds();
        let all: BTreeSet<BlockId> = (0..n as u32)
            .map(BlockId)
            .filter(|b| reach[b.idx()])
            .collect();
        let mut dom: Vec<BTreeSet<BlockId>> = (0..n)
            .map(|i| {
                if !reach[i] {
                    BTreeSet::new()
                } else if BlockId(i as u32) == self.entry {
                    std::iter::once(self.entry).collect()
                } else {
                    all.clone()
                }
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let b = BlockId(i as u32);
                if !reach[i] || b == self.entry {
                    continue;
                }
                let mut next: Option<BTreeSet<BlockId>> = None;
                for p in preds[i].iter().filter(|p| reach[p.idx()]) {
                    next = Some(match next {
                        None => dom[p.idx()].clone(),
                        Some(acc) => acc.intersection(&dom[p.idx()]).copied().collect(),
                    });
                }
                let mut next = next.unwrap_or_default();
                next.insert(b);
                if next != dom[i] {
                    dom[i] = next;
                    changed = true;
                }
            }
        }
        dom
    }

    /// Natural loops: one per back edge `tail → head` (where `head`
    /// dominates `tail`), with loops sharing a head merged. The body is the
    /// head plus every block that reaches a tail without passing through
    /// the head. Sorted by head id, so the numbering is deterministic.
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let dom = self.dominators();
        let preds = self.preds();
        let mut by_head: HashMap<BlockId, BTreeSet<BlockId>> = HashMap::new();
        for (i, blk) in self.blocks.iter().enumerate() {
            let tail = BlockId(i as u32);
            for &head in &blk.succs {
                if !dom[i].contains(&head) {
                    continue;
                }
                let body = by_head.entry(head).or_default();
                body.insert(head);
                // Walk predecessors backwards from the tail, stopping at
                // the head.
                let mut work = vec![tail];
                while let Some(b) = work.pop() {
                    if b == head || !body.insert(b) {
                        continue;
                    }
                    work.extend(preds[b.idx()].iter().copied());
                }
            }
        }
        let mut loops: Vec<NaturalLoop> = by_head
            .into_iter()
            .map(|(head, body)| NaturalLoop { head, body })
            .collect();
        loops.sort_by_key(|l| l.head);
        loops
    }
}

/// A natural loop: the target of one or more back edges plus every block
/// on a path from the loop body back to it.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The unique entry (dominating) block of the loop.
    pub head: BlockId,
    /// All blocks in the loop, including the head.
    pub body: BTreeSet<BlockId>,
}

impl NaturalLoop {
    /// Whether `b` is inside the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// A loop or switch context while building.
struct Frame {
    /// Where `break` jumps.
    break_to: BlockId,
    /// Where `continue` jumps (`None` inside a switch).
    continue_to: Option<BlockId>,
}

struct Builder {
    blocks: Vec<BasicBlock>,
    /// The block under construction; `None` right after a terminator (the
    /// following code is unreachable unless it carries a label).
    cur: Option<BlockId>,
    labels: HashMap<String, BlockId>,
    next_instr: u32,
    frames: Vec<Frame>,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::default());
        id
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from.idx()].succs.push(to);
    }

    /// The current block, creating a fresh predecessor-less one when the
    /// walk sits in dead code (instructions there still get numbered so the
    /// ids line up with [`for_each_instr_mut`]).
    fn cur_block(&mut self) -> BlockId {
        match self.cur {
            Some(b) => b,
            None => {
                let b = self.new_block();
                self.cur = Some(b);
                b
            }
        }
    }

    fn label_block(&mut self, name: &str) -> BlockId {
        if let Some(&b) = self.labels.get(name) {
            return b;
        }
        let b = self.new_block();
        self.labels.insert(name.to_string(), b);
        b
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Instr(is) => {
                let b = self.cur_block();
                for i in is {
                    let id = InstrId(self.next_instr);
                    self.next_instr += 1;
                    self.blocks[b.idx()].instrs.push((id, i.clone()));
                }
            }
            Stmt::If(cond, t, e) => {
                let from = self.cur_block();
                let then_b = self.new_block();
                let else_b = self.new_block();
                self.edge(from, then_b);
                self.edge(from, else_b);
                self.blocks[from.idx()].branch = Some(Branch {
                    cond: cond.clone(),
                    on_true: then_b,
                    on_false: else_b,
                });
                self.cur = Some(then_b);
                self.stmts(t);
                let then_end = self.cur;
                self.cur = Some(else_b);
                self.stmts(e);
                let else_end = self.cur;
                let join = self.new_block();
                if let Some(b) = then_end {
                    self.edge(b, join);
                }
                if let Some(b) = else_end {
                    self.edge(b, join);
                }
                self.cur = Some(join);
            }
            Stmt::Loop(body) => {
                let from = self.cur_block();
                let head = self.new_block();
                let exit = self.new_block();
                self.edge(from, head);
                self.frames.push(Frame {
                    break_to: exit,
                    continue_to: Some(head),
                });
                self.cur = Some(head);
                self.stmts(body);
                if let Some(b) = self.cur {
                    self.edge(b, head);
                }
                self.frames.pop();
                self.cur = Some(exit);
            }
            Stmt::Break => {
                if let Some(frame) = self.frames.last() {
                    let target = frame.break_to;
                    let b = self.cur_block();
                    self.edge(b, target);
                }
                self.cur = None;
            }
            Stmt::Continue => {
                let target = self.frames.iter().rev().find_map(|f| f.continue_to);
                if let Some(target) = target {
                    let b = self.cur_block();
                    self.edge(b, target);
                }
                self.cur = None;
            }
            Stmt::Return(_) => {
                self.cur = None;
            }
            Stmt::Goto(name) => {
                let target = self.label_block(name);
                let b = self.cur_block();
                self.edge(b, target);
                self.cur = None;
            }
            Stmt::Label(name) => {
                let target = self.label_block(name);
                if let Some(b) = self.cur {
                    self.edge(b, target);
                }
                self.cur = Some(target);
            }
            Stmt::Switch(_, arms) => {
                let from = self.cur_block();
                let exit = self.new_block();
                let starts: Vec<BlockId> = arms.iter().map(|_| self.new_block()).collect();
                for &s in &starts {
                    self.edge(from, s);
                }
                if !arms.iter().any(|a| a.values.is_empty()) {
                    // No default arm: the scrutinee may match nothing.
                    self.edge(from, exit);
                }
                self.frames.push(Frame {
                    break_to: exit,
                    continue_to: None,
                });
                for (i, arm) in arms.iter().enumerate() {
                    self.cur = Some(starts[i]);
                    self.stmts(&arm.body);
                    if let Some(b) = self.cur {
                        // C fallthrough into the next arm (or off the end).
                        let next = starts.get(i + 1).copied().unwrap_or(exit);
                        self.edge(b, next);
                    }
                }
                self.frames.pop();
                self.cur = Some(exit);
            }
            Stmt::Block(body) => self.stmts(body),
        }
    }
}

/// Replays the [`InstrId`] numbering over a mutable body, calling `keep` for
/// every instruction in the same depth-first order [`Cfg::build`] used;
/// instructions for which `keep` returns `false` are removed.
pub fn for_each_instr_mut(body: &mut [Stmt], keep: &mut impl FnMut(InstrId, &Instr) -> bool) {
    let mut next = 0u32;
    for s in body {
        walk_mut(s, &mut next, keep);
    }
}

fn walk_mut(s: &mut Stmt, next: &mut u32, keep: &mut impl FnMut(InstrId, &Instr) -> bool) {
    match s {
        Stmt::Instr(is) => {
            is.retain(|i| {
                let id = InstrId(*next);
                *next += 1;
                keep(id, i)
            });
        }
        Stmt::If(_, t, e) => {
            for s in t.iter_mut().chain(e.iter_mut()) {
                walk_mut(s, next, keep);
            }
        }
        Stmt::Loop(b) | Stmt::Block(b) => {
            for s in b {
                walk_mut(s, next, keep);
            }
        }
        Stmt::Switch(_, arms) => {
            for arm in arms {
                for s in &mut arm.body {
                    walk_mut(s, next, keep);
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func(src: &str) -> Function {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        prog.functions[0].clone()
    }

    fn build(src: &str) -> (Function, Cfg) {
        let f = func(src);
        let cfg = Cfg::build(&f);
        (f, cfg)
    }

    /// All instruction ids must be 0..n in depth-first order, and the
    /// mutable replay must see the exact same numbering.
    fn assert_numbering_roundtrip(f: &Function, cfg: &Cfg) {
        let mut ids: Vec<InstrId> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter().map(|(id, _)| *id))
            .collect();
        ids.sort();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.0 as usize, i, "ids must be dense");
        }
        let mut body = f.body.to_vec();
        let mut seen = Vec::new();
        for_each_instr_mut(&mut body, &mut |id, _| {
            seen.push(id);
            true
        });
        assert_eq!(seen.len(), ids.len(), "replay must visit every instr");
    }

    #[test]
    fn straight_line_is_one_block() {
        let (f, cfg) = build("int main(void) { int x; x = 1; x = 2; return x; }");
        assert_numbering_roundtrip(&f, &cfg);
        assert!(cfg.blocks[cfg.entry.idx()].instrs.len() >= 2);
    }

    #[test]
    fn if_produces_diamond() {
        let (f, cfg) =
            build("int main(void) { int x; x = 1; if (x) { x = 2; } else { x = 3; } return x; }");
        assert_numbering_roundtrip(&f, &cfg);
        let entry = &cfg.blocks[cfg.entry.idx()];
        assert_eq!(entry.succs.len(), 2, "if forks the entry block");
        // Both arms must rejoin at a single block.
        let joins: Vec<_> = entry
            .succs
            .iter()
            .map(|s| cfg.blocks[s.idx()].succs.clone())
            .collect();
        assert_eq!(joins[0], joins[1], "arms rejoin");
    }

    #[test]
    fn loop_back_edge_exists() {
        let (f, cfg) =
            build("int main(void) { int i; i = 0; while (i < 4) { i = i + 1; } return i; }");
        assert_numbering_roundtrip(&f, &cfg);
        // Some block must have a successor with a smaller or equal id that is
        // not the entry: the loop back edge.
        let back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|s| s.idx() <= i && s.idx() != 0));
        assert!(back, "while loop produces a back edge");
    }

    #[test]
    fn switch_fans_out_to_arms() {
        let (f, cfg) = build(
            "int main(void) { int x; int r; x = 2; r = 0;\n\
             switch (x) { case 1: r = 1; break; case 2: r = 2; break; default: r = 9; }\n\
             return r; }",
        );
        assert_numbering_roundtrip(&f, &cfg);
        let fan = cfg.blocks.iter().map(|b| b.succs.len()).max().unwrap();
        assert!(fan >= 3, "switch block fans out to all arms, got {fan}");
    }

    #[test]
    fn goto_targets_label_block() {
        let (f, cfg) = build("int main(void) { int x; x = 0; goto done; x = 1; done: return x; }");
        assert_numbering_roundtrip(&f, &cfg);
        // The dead `x = 1` lands in a predecessor-less block.
        let preds = cfg.preds();
        let dead = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| !b.instrs.is_empty() && preds[i].is_empty() && i != 0);
        assert!(dead, "code after goto is predecessor-less");
    }

    #[test]
    fn if_block_records_its_branch() {
        let (_, cfg) = build(
            "int main(void) { int x; x = 1; if (x < 2) { x = 2; } else { x = 3; } return x; }",
        );
        let entry = &cfg.blocks[cfg.entry.idx()];
        let br = entry.branch.as_ref().expect("entry ends in a branch");
        assert_eq!(entry.succs.len(), 2);
        assert!(entry.succs.contains(&br.on_true));
        assert!(entry.succs.contains(&br.on_false));
        assert_ne!(br.on_true, br.on_false);
    }

    #[test]
    fn while_loop_is_one_natural_loop() {
        let (_, cfg) =
            build("int main(void) { int i; i = 0; while (i < 4) { i = i + 1; } return i; }");
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1, "one while loop");
        let l = &loops[0];
        assert!(l.contains(l.head));
        assert!(l.body.len() >= 2, "head plus at least the body block");
        // The head must dominate every block in the loop body.
        let dom = cfg.dominators();
        for b in &l.body {
            assert!(dom[b.idx()].contains(&l.head), "head dominates {b:?}");
        }
    }

    #[test]
    fn nested_loops_are_distinguished() {
        let (_, cfg) = build(
            "int main(void) { int i; int j; int s; s = 0;\n\
             for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) s = s + 1;\n\
             return s; }",
        );
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 2, "outer and inner loop");
        let (a, b) = (&loops[0], &loops[1]);
        let (outer, inner) = if a.body.len() > b.body.len() {
            (a, b)
        } else {
            (b, a)
        };
        for blk in &inner.body {
            assert!(outer.contains(*blk), "inner loop nests inside outer");
        }
        assert!(!inner.contains(outer.head), "outer head outside inner loop");
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (_, cfg) = build("int main(void) { int x; x = 1; return x; }");
        assert!(cfg.natural_loops().is_empty());
    }

    #[test]
    fn removal_via_replay_drops_selected_instr() {
        let f = func("int main(void) { int x; x = 1; x = 2; return x; }");
        let mut body = f.body.to_vec();
        let mut total = 0usize;
        for_each_instr_mut(&mut body, &mut |_, _| {
            total += 1;
            true
        });
        let drop_id = InstrId(0);
        let mut kept = 0usize;
        for_each_instr_mut(&mut body, &mut |id, _| {
            if id == drop_id {
                false
            } else {
                kept += 1;
                true
            }
        });
        assert_eq!(kept, total - 1);
    }
}
