//! WILD/SEQ blame analysis: explain *why* a pointer lost its SAFE kind.
//!
//! The solver records a provenance graph while it runs
//! ([`ccured_infer::Provenance`]): a blame root per directly-promoted
//! qualifier (the constraint and its source span) and an undirected flow
//! edge for every unification, WILD-spreading cast, and pointee poisoning.
//! [`blame_path`] runs a breadth-first search over that graph from any
//! qualifier to the *nearest* recorded root — the shortest chain of value
//! flows from the pointer the programmer is staring at back to the one
//! cast (or arithmetic operation) that poisoned it.

use ccured_ast::{SourceMap, Span};
use ccured_cil::ir::Program;
use ccured_cil::types::QualId;
use ccured_infer::{EdgeWhy, Origin, Provenance, PtrKind};
use std::collections::{HashMap, VecDeque};

/// One hop of a blame path: the promotion flowed `from` → `to` (towards the
/// root cause) across `why`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlameStep {
    /// The nearer-to-the-target qualifier.
    pub from: QualId,
    /// The nearer-to-the-root qualifier.
    pub to: QualId,
    /// The flow that carried the promotion.
    pub why: EdgeWhy,
}

/// A complete explanation of a qualifier's kind.
#[derive(Debug, Clone)]
pub struct Blame {
    /// The qualifier being explained.
    pub target: QualId,
    /// The kind being explained (SEQ or WILD).
    pub kind: PtrKind,
    /// Flow hops from `target` to `root` (empty when the target itself was
    /// directly promoted).
    pub steps: Vec<BlameStep>,
    /// The directly-promoted qualifier the search reached.
    pub root: QualId,
    /// The constraint that promoted `root`.
    pub cause: Origin,
}

/// Finds the shortest blame path from `target` to a recorded root that
/// forced at least `kind`.
///
/// Returns `None` when the provenance graph has no explanation — e.g. when
/// the qualifier is SAFE, or the kind came from a source outside the
/// recorded constraint set.
pub fn blame_path(prov: &Provenance, target: QualId, kind: PtrKind) -> Option<Blame> {
    if let Some((_, cause)) = prov.root_for(target, kind) {
        return Some(Blame {
            target,
            kind,
            steps: Vec::new(),
            root: target,
            cause,
        });
    }
    // Adjacency over the edges that can carry a promotion of this kind.
    let mut adj: HashMap<QualId, Vec<(QualId, EdgeWhy)>> = HashMap::new();
    for e in &prov.edges {
        if e.why.carries(kind) {
            adj.entry(e.a).or_default().push((e.b, e.why));
            adj.entry(e.b).or_default().push((e.a, e.why));
        }
    }
    let mut prev: HashMap<QualId, (QualId, EdgeWhy)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(target);
    prev.insert(target, (target, EdgeWhy::Unified)); // sentinel self-link
    while let Some(q) = queue.pop_front() {
        if q != target {
            if let Some((_, cause)) = prov.root_for(q, kind) {
                // Walk the BFS parents back to the target.
                let mut steps = Vec::new();
                let mut cur = q;
                while cur != target {
                    let (p, why) = prev[&cur];
                    steps.push(BlameStep {
                        from: p,
                        to: cur,
                        why,
                    });
                    cur = p;
                }
                steps.reverse();
                return Some(Blame {
                    target,
                    kind,
                    steps,
                    root: q,
                    cause,
                });
            }
        }
        if let Some(ns) = adj.get(&q) {
            for (n, why) in ns.clone() {
                prev.entry(n).or_insert_with(|| {
                    queue.push_back(n);
                    (q, why)
                });
            }
        }
    }
    None
}

/// Human-readable names for qualifier variables, built by walking the
/// program's declarations: `f::p` for locals, `g` for globals,
/// `struct S.field` for aggregate fields.
pub fn qual_names(prog: &Program) -> HashMap<QualId, String> {
    let mut names = HashMap::new();
    for g in &prog.globals {
        if let Some((_, q)) = prog.types.ptr_parts(g.ty) {
            names.entry(q).or_insert_with(|| g.name.clone());
        }
    }
    // Named locals and parameters first so temporaries never shadow them.
    for temps in [false, true] {
        for f in &prog.functions {
            for l in &f.locals {
                if l.is_temp != temps {
                    continue;
                }
                if let Some((_, q)) = prog.types.ptr_parts(l.ty) {
                    names
                        .entry(q)
                        .or_insert_with(|| format!("{}::{}", f.name, l.name));
                }
            }
        }
    }
    for comp in prog.types.comps() {
        let kw = if comp.is_union { "union" } else { "struct" };
        for fld in &comp.fields {
            if let Some((_, q)) = prog.types.ptr_parts(fld.ty) {
                names
                    .entry(q)
                    .or_insert_with(|| format!("{kw} {}.{}", comp.name, fld.name));
            }
        }
    }
    names
}

fn qual_label(names: &HashMap<QualId, String>, q: QualId) -> String {
    names
        .get(&q)
        .map(|n| format!("`{n}`"))
        .unwrap_or_else(|| format!("qualifier #{}", q.0))
}

fn at_span(sm: Option<&SourceMap>, span: Span) -> String {
    if span == Span::DUMMY {
        return String::new();
    }
    match sm {
        Some(sm) => {
            let lc = sm.lookup(span.lo);
            let snippet = sm.snippet(span).trim().to_string();
            if snippet.is_empty() || snippet.len() > 48 {
                format!(" at {}:{lc}", sm.name())
            } else {
                format!(" at {}:{lc}: `{snippet}`", sm.name())
            }
        }
        None => format!(" at bytes {span}"),
    }
}

/// Renders a blame path as an indented multi-line explanation.
pub fn render_blame(
    names: &HashMap<QualId, String>,
    sm: Option<&SourceMap>,
    blame: &Blame,
) -> String {
    let mut out = format!("{} is {:?}\n", qual_label(names, blame.target), blame.kind);
    for step in &blame.steps {
        let line = match step.why {
            EdgeWhy::Unified => format!(
                "  = flows to/from {} (assignment, call, or aliasing)",
                qual_label(names, step.to)
            ),
            EdgeWhy::CastWild(span) => format!(
                "  = cast partner of {}{}",
                qual_label(names, step.to),
                at_span(sm, span)
            ),
            EdgeWhy::Pointee => format!(
                "  = stored through WILD pointer {}",
                qual_label(names, step.to)
            ),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!(
        "  root cause: {}{}\n",
        blame.cause.describe(),
        at_span(sm, blame.cause.span())
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_infer::{infer, InferOptions};

    fn run(src: &str) -> (Program, ccured_infer::InferResult) {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let res = infer(&prog, &InferOptions::default());
        (prog, res)
    }

    fn local_qual(prog: &Program, func: &str, local: &str) -> QualId {
        let f = &prog.functions[prog.find_function(func).unwrap().idx()];
        let l = f.locals.iter().find(|l| l.name == local).expect("local");
        prog.types.ptr_parts(l.ty).expect("pointer").1
    }

    #[test]
    fn bad_cast_blame_endpoints() {
        // q is WILD because it was assigned the result of a bad cast from
        // a double*. The blame path must start at q's qualifier and end at
        // a BadCast root.
        let src = "int f(double *d) { int *q; q = (int *)d; return *q; }";
        let (prog, res) = run(src);
        let q = local_qual(&prog, "f", "q");
        assert_eq!(res.solution.kind(q), PtrKind::Wild);
        let blame = blame_path(&res.provenance, q, PtrKind::Wild).expect("blame path");
        assert_eq!(blame.target, q, "path starts at the queried pointer");
        assert!(
            matches!(blame.cause, Origin::BadCast(_)),
            "path ends at the poisoning cast, got {:?}",
            blame.cause
        );
        let span = blame.cause.span();
        assert_ne!(span, Span::DUMMY, "the root cause carries a source span");
        let sm = SourceMap::new("t.c", src);
        assert!(
            sm.snippet(span).contains("(int *)"),
            "span points at the cast, got `{}`",
            sm.snippet(span)
        );
    }

    #[test]
    fn wild_spreads_through_flow_with_steps() {
        // r never appears in a cast; it is WILD purely because it aliases q.
        let src = "int f(double *d) { int *q; int *r; q = (int *)d; r = q; return *r; }";
        let (prog, res) = run(src);
        let r = local_qual(&prog, "f", "r");
        assert_eq!(res.solution.kind(r), PtrKind::Wild);
        let blame = blame_path(&res.provenance, r, PtrKind::Wild).expect("blame path");
        assert_eq!(blame.target, r);
        assert!(matches!(blame.cause, Origin::BadCast(_)));
        assert!(
            !blame.steps.is_empty(),
            "r is not itself a cast side: at least one flow hop"
        );
        // Path endpoints line up: first step leaves the target, the chain
        // is connected, and it arrives at the root.
        assert_eq!(blame.steps.first().unwrap().from, r);
        for w in blame.steps.windows(2) {
            assert_eq!(w[0].to, w[1].from, "steps are chained");
        }
        assert_eq!(blame.steps.last().unwrap().to, blame.root);
    }

    #[test]
    fn seq_blame_names_pointer_arithmetic() {
        let src = "int f(int *p) { int *q; q = p; return q[3]; }";
        let (prog, res) = run(src);
        let p = local_qual(&prog, "f", "p");
        assert_eq!(res.solution.kind(p), PtrKind::Seq);
        let blame = blame_path(&res.provenance, p, PtrKind::Seq).expect("blame path");
        assert!(
            matches!(blame.cause, Origin::PtrArith(_)),
            "SEQ traces back to the indexing, got {:?}",
            blame.cause
        );
    }

    #[test]
    fn safe_pointer_has_no_blame() {
        let (prog, res) = run("int f(int *p) { return *p; }");
        let p = local_qual(&prog, "f", "p");
        assert_eq!(res.solution.kind(p), PtrKind::Safe);
        assert!(blame_path(&res.provenance, p, PtrKind::Wild).is_none());
    }

    #[test]
    fn names_cover_locals_globals_and_fields() {
        let (prog, _) = run("int *gp;\n\
             struct S { int *fld; } gs;\n\
             int f(int *p) { return *p; }");
        let names = qual_names(&prog);
        let vals: Vec<&String> = names.values().collect();
        assert!(vals.iter().any(|n| *n == "gp"));
        assert!(vals.iter().any(|n| *n == "f::p"));
        assert!(vals.iter().any(|n| n.contains("S.fld")));
    }

    #[test]
    fn render_mentions_cause_and_location() {
        let src = "int f(double *d) { int *q; q = (int *)d; return *q; }";
        let (prog, res) = run(src);
        let q = local_qual(&prog, "f", "q");
        let blame = blame_path(&res.provenance, q, PtrKind::Wild).unwrap();
        let names = qual_names(&prog);
        let sm = SourceMap::new("t.c", src);
        let text = render_blame(&names, Some(&sm), &blame);
        assert!(text.contains("is Wild"));
        assert!(text.contains("bad cast"));
        assert!(text.contains("t.c:1:"), "rendered: {text}");
    }
}
