//! Loop-invariant check hoisting.
//!
//! A null or RTTI check whose operand is loop-invariant gives the same
//! verdict on every iteration: its verdict is a function of the operand
//! *value* alone (null compares the pointer word against zero; the RTTI
//! check walks the hierarchy from the node carried *inside* the fat
//! value), and an invariant operand evaluates to the same value on every
//! iteration of the subtree. So the check needs to actually run only once
//! per loop entry.
//!
//! The pass rewrites each such check into a [`Check::Probe`] /
//! [`Check::Guarded`] pair in place (see [`crate::loops`]): the probe runs
//! the original check on the first iteration that reaches the site, and
//! the residual is skipped while the guard holds. Soundness is immediate —
//! the one probed evaluation *is* the first per-iteration check, and
//! invariance makes every later evaluation equal to it. If the probe fails
//! the guard latches "fail" and the residual runs every iteration exactly
//! like the unoptimized program, aborting at the original site with the
//! original blame.
//!
//! WILD checks are never hoisted: their verdicts depend on the area's tag
//! bits, which stores in the loop can change.

use crate::loops::{exp_invariant, guard_check_at, FnCx, OptAction, SubtreeInfo};
use ccured_cil::ir::{Check, Instr, Stmt, SwitchArm};

/// Hoists every loop-invariant null/RTTI check in the subtree, appending
/// the allocated guard slots to `slots` (their resets are planted before
/// the loop by the caller).
pub(crate) fn hoist_invariant_checks(
    cx: &mut FnCx,
    body: &mut [Stmt],
    info: &SubtreeInfo,
    slots: &mut Vec<u32>,
) {
    for s in body.iter_mut() {
        match s {
            Stmt::Instr(instrs) => hoist_in_instrs(cx, instrs, info, slots),
            Stmt::If(_, t, e) => {
                hoist_invariant_checks(cx, t, info, slots);
                hoist_invariant_checks(cx, e, info, slots);
            }
            Stmt::Loop(b) | Stmt::Block(b) => hoist_invariant_checks(cx, b, info, slots),
            Stmt::Switch(_, arms) => {
                for SwitchArm { body, .. } in arms.iter_mut() {
                    hoist_invariant_checks(cx, body, info, slots);
                }
            }
            _ => {}
        }
    }
}

fn hoist_in_instrs(
    cx: &mut FnCx,
    instrs: &mut Vec<Instr>,
    info: &SubtreeInfo,
    slots: &mut Vec<u32>,
) {
    let mut j = 0;
    while j < instrs.len() {
        let hoistable = match &instrs[j] {
            Instr::Check(Check::Null { ptr } | Check::Rtti { ptr, .. }, _, _) => {
                exp_invariant(cx, info, ptr)
            }
            // A temporal verdict is a function of the operand value *and*
            // the key table, which only a call can change (`free` is an
            // external call) — never hoist across a loop that calls.
            Instr::Check(Check::Temporal { ptr }, _, _) => {
                info.calls == 0 && exp_invariant(cx, info, ptr)
            }
            _ => false,
        };
        if hoistable {
            let Instr::Check(c, _, site) = &instrs[j] else {
                unreachable!();
            };
            let (site, inner) = (*site, c.clone());
            let slot = cx.alloc_slot();
            guard_check_at(instrs, j, slot, vec![inner]);
            slots.push(slot);
            cx.record(site, OptAction::Hoisted);
            j += 1; // step over the planted probe and its residual
        }
        j += 1;
    }
}
