//! A generic intraprocedural forward-dataflow framework.
//!
//! Facts live on a meet-semilattice ([`Lattice`]); an [`Analysis`] supplies
//! the entry fact and a per-instruction transfer function; [`forward`] runs
//! a worklist to fixpoint over a [`Cfg`] and returns the fact at entry to
//! every block. Unreachable blocks get `None` (the implicit top element), so
//! must-analyses stay precise on the reachable portion without a special
//! "unreachable" value inside every fact type.

use crate::cfg::{BlockId, Cfg, InstrId};
use ccured_cil::ir::{Exp, Instr};
use std::collections::VecDeque;

/// A meet-semilattice of dataflow facts.
///
/// For a must-analysis the meet is set intersection: a fact survives a join
/// point only when it holds on every incoming path. `meet` must be
/// associative and idempotent, and the lattice must have no infinite
/// descending chains reachable from the facts a program generates (all our
/// facts are finite sets drawn from the program text). One sanctioned
/// deviation from commutativity: a meet may *widen* — compare against the
/// old fact (`self`) and jump straight to a coarser value when a component
/// keeps growing, as the value-range domain does. Widening only accelerates
/// descent, so the fixpoint stays a sound (if less precise) solution.
pub trait Lattice: Clone + PartialEq {
    /// Greatest lower bound of two facts.
    fn meet(&self, other: &Self) -> Self;
}

/// A forward dataflow analysis: an entry fact plus a transfer function.
pub trait Analysis {
    /// The fact type.
    type Fact: Lattice;

    /// The fact holding at function entry.
    fn entry_fact(&self) -> Self::Fact;

    /// Transforms `fact` (the state *before* `instr`) into the state after.
    fn transfer(&mut self, id: InstrId, instr: &Instr, fact: &mut Self::Fact);

    /// Refines `fact` along a conditional edge: `cond` is the branch
    /// condition of the block just left, and `taken` says whether this edge
    /// is the true (`if` body) or false (`else`) side. The refinement must
    /// only *strengthen* the fact with what the branch outcome proves (e.g.
    /// `i < n` bounds `i`'s range on the true edge). The default is a
    /// no-op.
    fn refine_edge(&mut self, cond: &Exp, taken: bool, fact: &mut Self::Fact) {
        let _ = (cond, taken, fact);
    }
}

/// Runs `analysis` forward over `cfg` to fixpoint.
///
/// Returns the fact at the *entry* of each block; `None` means the block is
/// unreachable from the function entry. To obtain the state at a particular
/// instruction, re-apply the transfer function from the block entry (see
/// [`crate::elim`] for the pattern).
pub fn forward<A: Analysis>(cfg: &Cfg, analysis: &mut A) -> Vec<Option<A::Fact>> {
    let n = cfg.blocks.len();
    let mut entry: Vec<Option<A::Fact>> = vec![None; n];
    entry[cfg.entry.idx()] = Some(analysis.entry_fact());

    let mut queue: VecDeque<BlockId> = VecDeque::new();
    let mut queued = vec![false; n];
    queue.push_back(cfg.entry);
    queued[cfg.entry.idx()] = true;

    while let Some(b) = queue.pop_front() {
        queued[b.idx()] = false;
        let Some(mut fact) = entry[b.idx()].clone() else {
            continue;
        };
        for (id, instr) in &cfg.blocks[b.idx()].instrs {
            analysis.transfer(*id, instr, &mut fact);
        }
        let branch = &cfg.blocks[b.idx()].branch;
        for &s in &cfg.blocks[b.idx()].succs {
            let mut fact = fact.clone();
            if let Some(br) = branch {
                if br.on_true != br.on_false {
                    if s == br.on_true {
                        analysis.refine_edge(&br.cond, true, &mut fact);
                    } else if s == br.on_false {
                        analysis.refine_edge(&br.cond, false, &mut fact);
                    }
                }
            }
            let merged = match &entry[s.idx()] {
                None => fact.clone(),
                Some(old) => old.meet(&fact),
            };
            if entry[s.idx()].as_ref() != Some(&merged) {
                entry[s.idx()] = Some(merged);
                if !queued[s.idx()] {
                    queue.push_back(s);
                    queued[s.idx()] = true;
                }
            }
        }
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use ccured_cil::ir::{Instr, LvBase};
    use std::collections::BTreeSet;

    /// A toy must-analysis: the set of locals assigned on *every* path.
    #[derive(Default)]
    struct MustAssigned;

    #[derive(Clone, PartialEq, Eq, Debug, Default)]
    struct Assigned(BTreeSet<u32>);

    impl Lattice for Assigned {
        fn meet(&self, other: &Self) -> Self {
            Assigned(self.0.intersection(&other.0).cloned().collect())
        }
    }

    impl Analysis for MustAssigned {
        type Fact = Assigned;

        fn entry_fact(&self) -> Assigned {
            Assigned::default()
        }

        fn transfer(&mut self, _id: InstrId, instr: &Instr, fact: &mut Assigned) {
            if let Instr::Set(lv, _, _) = instr {
                if lv.offsets.is_empty() {
                    if let LvBase::Local(l) = &lv.base {
                        fact.0.insert(l.0);
                    }
                }
            }
        }
    }

    fn cfg_of(src: &str) -> Cfg {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        Cfg::build(&prog.functions[0])
    }

    /// Collects the fixpoint fact at every reachable block exit.
    fn exits(src: &str) -> Vec<Assigned> {
        let cfg = cfg_of(src);
        let mut a = MustAssigned;
        let entries = forward(&cfg, &mut a);
        cfg.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let mut f = entries[i].clone()?;
                for (id, instr) in &b.instrs {
                    a.transfer(*id, instr, &mut f);
                }
                Some(f)
            })
            .collect()
    }

    #[test]
    fn both_arms_must_assign() {
        // x is assigned on both paths, y only on one: at the join, the
        // must-set contains x's slot but not y's.
        let outs = exits(
            "int main(void) { int c; int x; int y; c = 1;\n\
             if (c) { x = 1; y = 1; } else { x = 2; }\n\
             return x; }",
        );
        // The largest exit set on a path through the then-branch holds both;
        // some reachable block (the join) holds x but must have dropped y.
        let max = outs.iter().map(|a| a.0.len()).max().unwrap();
        assert!(max >= 3, "then-branch sees c, x, y");
        let has_intersected = outs.iter().any(|a| a.0.len() == 2);
        assert!(has_intersected, "join intersects away the one-armed y");
    }

    #[test]
    fn loop_reaches_fixpoint() {
        let outs = exits(
            "int main(void) { int i; i = 0;\n\
             while (i < 10) { i = i + 1; }\n\
             return i; }",
        );
        assert!(!outs.is_empty());
        // Every reachable exit fact contains i (slot of the only local that
        // is assigned before and inside the loop).
        assert!(outs.iter().all(|a| !a.0.is_empty()));
    }

    #[test]
    fn unreachable_blocks_stay_none() {
        let cfg = cfg_of("int main(void) { int x; x = 0; goto done; x = 1; done: return x; }");
        let mut a = MustAssigned;
        let entries = forward(&cfg, &mut a);
        let unreachable = entries.iter().filter(|e| e.is_none()).count();
        assert!(unreachable >= 1, "the dead store block is never reached");
    }
}
