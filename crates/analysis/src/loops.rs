//! The second-generation loop optimizer: orchestrates loop-invariant check
//! hoisting ([`crate::hoist`]) and SEQ bounds-check widening
//! ([`crate::widen`]) on top of the flow-sensitive eliminator
//! ([`crate::elim`]).
//!
//! Neither pass *moves* a check out of its loop. Instead every optimized
//! check is rewritten in place into a [`Check::Probe`] /
//! [`Check::Guarded`] pair sharing a frame-local guard slot, with a
//! [`Check::GuardReset`] planted immediately before the enclosing loop:
//!
//! * the reset unlatches the slot each time control re-reaches the loop,
//! * the probe runs the summarized checks once, on the first iteration that
//!   actually reaches the site (so a never-entered loop costs nothing and
//!   the probed operands are evaluated exactly where the original check
//!   evaluated them),
//! * the guarded residual is skipped while the slot is latched "pass" and
//!   behaves exactly like the original check otherwise — including when the
//!   probe *failed*, so a failing widened range re-runs the per-iteration
//!   check and blames the precise index at the precise site.
//!
//! This keeps both engines' observable behaviour (output, verdicts, failure
//! attribution) identical to the unoptimized program while executing at
//! most as many check events, and strictly fewer on loops the passes fire
//! on.

use crate::cfg::Cfg;
use crate::elim::{self, ElisionResult};
use ccured_cil::ir::{Check, Exp, Instr, LvBase, Lval, Offset, Program, SiteId, Stmt, SwitchArm};
use ccured_cil::types::{Type, TypeId, TypeTable};
use std::collections::{BTreeMap, HashMap, HashSet};

/// What the loop optimizer did to a check site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptAction {
    /// A loop-invariant null/RTTI check now runs once per loop entry.
    Hoisted,
    /// A per-iteration SEQ bounds check was folded into one whole-trip
    /// range probe.
    Widened,
}

impl OptAction {
    /// Stable name for reports and profiles.
    pub fn name(self) -> &'static str {
        match self {
            OptAction::Hoisted => "hoisted",
            OptAction::Widened => "widened",
        }
    }
}

/// The combined result of the eliminator and the loop passes.
#[derive(Debug, Clone, Default)]
pub struct OptResult {
    /// The flow-sensitive eliminator's result (always runs first).
    pub elision: ElisionResult,
    /// Per-site loop-optimizer actions, keyed by raw
    /// [`SiteId`](ccured_cil::ir::SiteId) index.
    pub actions: BTreeMap<u32, OptAction>,
    /// Check instructions rewritten by the hoisting pass.
    pub hoisted: u64,
    /// Check instructions rewritten by the widening pass.
    pub widened: u64,
    /// Natural loops found in the program's CFGs.
    pub loops_seen: u64,
}

impl OptResult {
    /// Folds another (per-function) result into this one. Site ids are
    /// globally unique, so the per-site maps of distinct functions never
    /// collide.
    pub fn merge(&mut self, other: OptResult) {
        self.elision.merge(other.elision);
        self.actions.extend(other.actions);
        self.hoisted += other.hoisted;
        self.widened += other.widened;
        self.loops_seen += other.loops_seen;
    }
}

/// Runs the full static optimization pipeline over `prog` in place:
/// check elimination, then (when `loop_opt`) loop-invariant hoisting and
/// SEQ bounds widening over every natural loop.
pub fn optimize_program(prog: &mut Program, loop_opt: bool) -> OptResult {
    let tracked = elim::tracked_globals(prog);
    let mut result = OptResult::default();
    for fi in 0..prog.functions.len() {
        result.merge(optimize_function(prog, fi, &tracked, loop_opt));
    }
    result
}

/// Runs the full static optimization pipeline over one function body:
/// elimination, then (when `loop_opt`) the loop passes. Both passes are
/// intraprocedural, so running this per function with the shared
/// `tracked_globals` set composes to exactly [`optimize_program`] — the
/// invariant the incremental recure path depends on.
pub fn optimize_function(
    prog: &mut Program,
    fi: usize,
    tracked_globals: &HashSet<u32>,
    loop_opt: bool,
) -> OptResult {
    let elision = elim::eliminate_checks_in_function(prog, fi, tracked_globals);
    let mut result = OptResult {
        elision,
        ..OptResult::default()
    };
    if !loop_opt {
        return result;
    }
    let Program {
        ref types,
        ref mut functions,
        ..
    } = *prog;
    let func = &mut functions[fi];
    result.loops_seen += Cfg::build(func).natural_loops().len() as u64;
    let mut cx = FnCx {
        types,
        aliased: elim::aliased_locals(func),
        label_gotos: HashMap::new(),
        next_slot: 0,
        hoisted: 0,
        widened: 0,
        actions: BTreeMap::new(),
    };
    count_gotos(&func.body, &mut cx.label_gotos);
    walk_stmts(&mut cx, &mut func.body);
    result.hoisted += cx.hoisted;
    result.widened += cx.widened;
    result.actions.extend(cx.actions);
    // The loop passes run after the eliminator's fixpoint, so their verdict
    // on a site supersedes the recorded keep-reason.
    for (site, action) in &result.actions {
        let why = match action {
            OptAction::Hoisted => {
                "hoisted: loop-invariant operand, evaluated once per loop entry".to_string()
            }
            OptAction::Widened => {
                "widened: per-iteration bounds folded into one whole-trip range probe".to_string()
            }
        };
        result.elision.site_keeps.insert(*site, why);
    }
    result
}

/// Per-function rewriting state shared by the hoisting and widening passes.
pub(crate) struct FnCx<'p> {
    /// The program's type table (for integer-cast reasoning).
    pub types: &'p TypeTable,
    /// Address-taken locals (from the eliminator's escape pre-pass): their
    /// values can change through memory, so they are never loop-invariant.
    pub aliased: HashSet<u32>,
    /// Function-wide goto counts per label, to detect entries into a loop
    /// subtree from outside it.
    label_gotos: HashMap<String, usize>,
    next_slot: u32,
    pub hoisted: u64,
    pub widened: u64,
    pub actions: BTreeMap<u32, OptAction>,
}

impl FnCx<'_> {
    /// Allocates a fresh frame-local guard slot.
    pub(crate) fn alloc_slot(&mut self) -> u32 {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    /// Records an action against `site` (ignoring synthetic sites).
    pub(crate) fn record(&mut self, site: SiteId, action: OptAction) {
        match action {
            OptAction::Hoisted => self.hoisted += 1,
            OptAction::Widened => self.widened += 1,
        }
        if let Some(i) = site.index() {
            self.actions.insert(i as u32, action);
        }
    }
}

/// Everything the passes need to know about a loop subtree at a glance.
pub(crate) struct SubtreeInfo {
    /// Locals assigned anywhere in the subtree (directly, including through
    /// offsets, or as a call result).
    pub assigned: HashSet<u32>,
    /// Labels defined in the subtree.
    pub labels: HashSet<String>,
    /// Goto counts per label, from gotos inside the subtree.
    pub gotos: HashMap<String, usize>,
    /// Calls (defined or external) anywhere in the subtree. Temporal checks
    /// are only hoistable out of call-free loops: any callee may `free` and
    /// flip the verdict between iterations.
    pub calls: usize,
}

fn walk_stmts(cx: &mut FnCx, stmts: &mut Vec<Stmt>) {
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::Loop(_) => {
                let slots = process_loop(cx, &mut stmts[i]);
                if !slots.is_empty() {
                    // Unlatch every slot right before the loop: re-entering
                    // re-establishes the guards (operands may have changed).
                    let resets = slots
                        .into_iter()
                        .map(|slot| {
                            Instr::Check(
                                Check::GuardReset { slot },
                                ccured_ast::Span::DUMMY,
                                SiteId::NONE,
                            )
                        })
                        .collect();
                    stmts.insert(i, Stmt::Instr(resets));
                    i += 1;
                }
            }
            Stmt::If(_, t, e) => {
                walk_stmts(cx, t);
                walk_stmts(cx, e);
            }
            Stmt::Block(b) => walk_stmts(cx, b),
            Stmt::Switch(_, arms) => {
                for arm in arms {
                    walk_stmts(cx, &mut arm.body);
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Optimizes one loop (widening first, then hoisting over the remaining
/// checks), then recurses into nested loops. Returns the guard slots whose
/// resets belong directly before this loop.
fn process_loop(cx: &mut FnCx, stmt: &mut Stmt) -> Vec<u32> {
    let Stmt::Loop(body) = stmt else {
        unreachable!("process_loop is only called on Stmt::Loop");
    };
    let info = subtree_info(body);
    let mut slots = Vec::new();
    // A goto from outside the subtree to a label inside it would enter the
    // loop without passing the guard reset or the probe's first-iteration
    // evaluation point; skip such loops entirely (nested ones may still be
    // well-formed).
    let externally_entered = info.labels.iter().any(|l| {
        cx.label_gotos.get(l).copied().unwrap_or(0) != info.gotos.get(l).copied().unwrap_or(0)
    });
    if !externally_entered {
        if let Some(slot) = crate::widen::try_widen(cx, body, &info) {
            slots.push(slot);
        }
        crate::hoist::hoist_invariant_checks(cx, body, &info, &mut slots);
    }
    walk_stmts(cx, body);
    slots
}

/// Collects assigned locals, labels, and goto counts for a subtree.
pub(crate) fn subtree_info(stmts: &[Stmt]) -> SubtreeInfo {
    let mut info = SubtreeInfo {
        assigned: HashSet::new(),
        labels: HashSet::new(),
        gotos: HashMap::new(),
        calls: 0,
    };
    collect_info(stmts, &mut info);
    info
}

fn collect_info(stmts: &[Stmt], info: &mut SubtreeInfo) {
    for s in stmts {
        match s {
            Stmt::Instr(instrs) => {
                for i in instrs {
                    match i {
                        Instr::Set(lv, _, _) => note_assign(lv, info),
                        Instr::Call(ret, _, _, _) => {
                            info.calls += 1;
                            if let Some(lv) = ret {
                                note_assign(lv, info);
                            }
                        }
                        Instr::Check(..) => {}
                    }
                }
            }
            Stmt::If(_, t, e) => {
                collect_info(t, info);
                collect_info(e, info);
            }
            Stmt::Loop(b) | Stmt::Block(b) => collect_info(b, info),
            Stmt::Switch(_, arms) => {
                for SwitchArm { body, .. } in arms {
                    collect_info(body, info);
                }
            }
            Stmt::Label(l) => {
                info.labels.insert(l.clone());
            }
            Stmt::Goto(l) => {
                *info.gotos.entry(l.clone()).or_insert(0) += 1;
            }
            Stmt::Break | Stmt::Continue | Stmt::Return(_) => {}
        }
    }
}

fn note_assign(lv: &Lval, info: &mut SubtreeInfo) {
    if let LvBase::Local(l) = &lv.base {
        info.assigned.insert(l.0);
    }
}

fn count_gotos(stmts: &[Stmt], counts: &mut HashMap<String, usize>) {
    for s in stmts {
        match s {
            Stmt::Goto(l) => *counts.entry(l.clone()).or_insert(0) += 1,
            Stmt::If(_, t, e) => {
                count_gotos(t, counts);
                count_gotos(e, counts);
            }
            Stmt::Loop(b) | Stmt::Block(b) => count_gotos(b, counts),
            Stmt::Switch(_, arms) => {
                for arm in arms {
                    count_gotos(&arm.body, counts);
                }
            }
            _ => {}
        }
    }
}

/// The inclusive value range of integer type `t`, or `None` for
/// non-integer types.
pub(crate) fn int_bounds(types: &TypeTable, t: TypeId) -> Option<(i128, i128)> {
    match types.get(t) {
        Type::Int(k) => {
            let bits = types.machine.int_size(*k) * 8;
            Some(if k.is_signed() {
                (-(1i128 << (bits - 1)), (1i128 << (bits - 1)) - 1)
            } else {
                (0, (1i128 << bits) - 1)
            })
        }
        _ => None,
    }
}

/// Strips casts that provably preserve the integer value: every value of
/// the source type is representable in the target type, so the cast is the
/// identity on the run-time value. Anything else (narrowing, or
/// signedness flips that can reinterpret negatives) stays — a wrapped index
/// must not be reasoned about as its pre-cast value.
pub(crate) fn strip_preserving_casts<'a>(types: &TypeTable, mut e: &'a Exp) -> &'a Exp {
    while let Exp::Cast(_, inner, t) = e {
        let (Some((flo, fhi)), Some((tlo, thi))) =
            (int_bounds(types, inner.ty()), int_bounds(types, *t))
        else {
            break;
        };
        if tlo <= flo && fhi <= thi {
            e = inner;
        } else {
            break;
        }
    }
    e
}

/// The local a direct (offset-free) load reads, after stripping
/// value-preserving casts.
pub(crate) fn direct_local_load<'a>(types: &TypeTable, e: &'a Exp) -> Option<(u32, &'a Exp)> {
    let e = strip_preserving_casts(types, e);
    match e {
        Exp::Load(lv, _) if lv.offsets.is_empty() => match &lv.base {
            LvBase::Local(l) => Some((l.0, e)),
            _ => None,
        },
        _ => None,
    }
}

/// Is `e` loop-invariant with respect to the subtree summarized by `info`?
///
/// * constants, `sizeof`, and function addresses always are;
/// * a direct load of an unaliased local the subtree never assigns is (no
///   store or call can change it);
/// * taking an address is invariant when the base address and every index
///   expression are (the *address* is what matters, not the pointee);
/// * operators are invariant when their operands are.
///
/// Loads through memory (derefs, fields, globals) are never invariant: any
/// store or call in the loop could change them.
pub(crate) fn exp_invariant(cx: &FnCx, info: &SubtreeInfo, e: &Exp) -> bool {
    match e {
        Exp::Const(..) | Exp::SizeOf(..) | Exp::FnAddr(..) => true,
        Exp::Load(lv, _) => {
            lv.offsets.is_empty()
                && matches!(&lv.base, LvBase::Local(l)
                    if !info.assigned.contains(&l.0) && !cx.aliased.contains(&l.0))
        }
        Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => lval_addr_invariant(cx, info, lv),
        Exp::Unop(_, x, _) | Exp::Cast(_, x, _) => exp_invariant(cx, info, x),
        Exp::Binop(_, a, b, _) => exp_invariant(cx, info, a) && exp_invariant(cx, info, b),
    }
}

fn lval_addr_invariant(cx: &FnCx, info: &SubtreeInfo, lv: &Lval) -> bool {
    let base_ok = match &lv.base {
        // Locals and globals live at fixed addresses for the whole call.
        LvBase::Local(_) | LvBase::Global(_) => true,
        LvBase::Deref(p) => exp_invariant(cx, info, p),
    };
    base_ok
        && lv.offsets.iter().all(|o| match o {
            Offset::Field(..) => true,
            Offset::Index(e) => exp_invariant(cx, info, e),
        })
}

/// Rewrites `instrs[at]` (a plain check) into its guarded residual and
/// plants the probe immediately before it, so the probe evaluates the
/// summarized checks at exactly the point the original check ran.
pub(crate) fn guard_check_at(
    instrs: &mut Vec<Instr>,
    at: usize,
    slot: u32,
    probe_inner: Vec<Check>,
) {
    let Instr::Check(original, span, site) = instrs[at].clone() else {
        unreachable!("guard_check_at is only called on check instructions");
    };
    instrs[at] = Instr::Check(
        Check::Guarded {
            slot,
            inner: Box::new(original),
        },
        span,
        site,
    );
    instrs.insert(
        at,
        Instr::Check(
            Check::Probe {
                slot,
                inner: probe_inner,
            },
            span,
            site,
        ),
    );
}
