//! Redundant-check elimination (dataflow client) and the static failure
//! detector.
//!
//! A must-analysis tracks, per scalar pointer variable, what the checks that
//! already executed have established: non-nullness, verified SEQ/WILD
//! bounds (valid while the pointer is unmoved), verified WILD tags, and
//! verified RTTI downcast targets. A [`Check`](ccured_cil::ir::Check) whose
//! fact already holds on every path is deleted — the run-time cost counters
//! drop, the verdict never changes, because a passing check is a pure
//! verification (the fat-pointer conversions happen at cast evaluation, not
//! in the check).
//!
//! The same facts power the static failure detector: a check that provably
//! *always* fails (constant out-of-bounds index, dereference of a pointer
//! that is null on every path) is reported as a compile-time diagnostic.
//! The check itself is kept so the run-time behaviour is unchanged.

use crate::cfg::{for_each_instr_mut, Cfg, InstrId};
use crate::dataflow::{forward, Analysis, Lattice};
use ccured_ast::Span;
use ccured_cil::ir::*;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// How many checks of each kind the optimizer deleted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElisionStats {
    /// Elided null checks.
    pub null: u64,
    /// Elided SEQ bounds checks.
    pub seq_bounds: u64,
    /// Elided SEQ-to-SAFE conversion checks.
    pub seq_to_safe: u64,
    /// Elided WILD bounds checks.
    pub wild_bounds: u64,
    /// Elided WILD tag checks.
    pub wild_tag: u64,
    /// Elided RTTI downcast checks.
    pub rtti: u64,
    /// Elided constant-index bounds checks.
    pub index_bound: u64,
}

impl ElisionStats {
    /// Total number of deleted checks.
    pub fn total(&self) -> u64 {
        self.null
            + self.seq_bounds
            + self.seq_to_safe
            + self.wild_bounds
            + self.wild_tag
            + self.rtti
            + self.index_bound
    }

    /// Accumulates another function's stats.
    pub fn add(&mut self, o: &ElisionStats) {
        self.null += o.null;
        self.seq_bounds += o.seq_bounds;
        self.seq_to_safe += o.seq_to_safe;
        self.wild_bounds += o.wild_bounds;
        self.wild_tag += o.wild_tag;
        self.rtti += o.rtti;
        self.index_bound += o.index_bound;
    }

    fn bump(&mut self, c: &Check) {
        match c {
            Check::Null { .. } => self.null += 1,
            Check::SeqBounds { .. } => self.seq_bounds += 1,
            Check::SeqToSafe { .. } => self.seq_to_safe += 1,
            Check::WildBounds { .. } => self.wild_bounds += 1,
            Check::WildTag { .. } => self.wild_tag += 1,
            Check::Rtti { .. } => self.rtti += 1,
            Check::IndexBound { .. } => self.index_bound += 1,
            Check::NoStackEscape { .. } => {}
        }
    }
}

/// A check that is statically guaranteed to fail whenever it executes.
#[derive(Debug, Clone)]
pub struct StaticFailure {
    /// Enclosing function.
    pub func: String,
    /// The check kind ([`Check::name`]).
    pub check: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Source location of the offending instruction.
    pub span: Span,
}

/// The result of running the optimizer over a program.
#[derive(Debug, Clone, Default)]
pub struct ElisionResult {
    /// Deleted-check counts.
    pub stats: ElisionStats,
    /// Checks that provably always fail (kept in the program; reported).
    pub failures: Vec<StaticFailure>,
    /// Deleted instructions per check site, keyed by the raw
    /// [`SiteId`](ccured_cil::ir::SiteId) index. Sites the instrumentation
    /// did not number ([`SiteId::NONE`](ccured_cil::ir::SiteId::NONE)) are
    /// not recorded.
    pub site_elides: BTreeMap<u32, u64>,
    /// Why the first surviving check of each site was kept, keyed like
    /// [`ElisionResult::site_elides`]. Feeds the profiler's "hot sites the
    /// optimizer could not elide" report.
    pub site_keeps: BTreeMap<u32, String>,
}

/// A trackable place: a whole scalar variable whose address is never taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Place {
    Local(u32),
    Global(u32),
}

/// The must-facts holding at a program point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Facts {
    /// Places verified non-null.
    nonnull: BTreeSet<Place>,
    /// Places that are null on every path (for the failure detector).
    null: BTreeSet<Place>,
    /// Largest verified SEQ access size per unmoved place.
    bounds: BTreeMap<Place, u64>,
    /// Largest verified WILD access size per unmoved place.
    wild_bounds: BTreeMap<Place, u64>,
    /// Places whose pointed-to word has a verified pointer tag.
    wild_tag: BTreeSet<Place>,
    /// Verified RTTI downcast target node per place.
    rtti: BTreeMap<Place, u32>,
}

fn meet_sets(a: &BTreeSet<Place>, b: &BTreeSet<Place>) -> BTreeSet<Place> {
    a.intersection(b).cloned().collect()
}

fn meet_min(a: &BTreeMap<Place, u64>, b: &BTreeMap<Place, u64>) -> BTreeMap<Place, u64> {
    a.iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| (*k, (*va).min(*vb))))
        .collect()
}

impl Lattice for Facts {
    fn meet(&self, other: &Self) -> Self {
        Facts {
            nonnull: meet_sets(&self.nonnull, &other.nonnull),
            null: meet_sets(&self.null, &other.null),
            bounds: meet_min(&self.bounds, &other.bounds),
            wild_bounds: meet_min(&self.wild_bounds, &other.wild_bounds),
            wild_tag: meet_sets(&self.wild_tag, &other.wild_tag),
            rtti: self
                .rtti
                .iter()
                .filter(|(k, v)| other.rtti.get(k) == Some(v))
                .map(|(k, v)| (*k, *v))
                .collect(),
        }
    }
}

impl Facts {
    fn kill(&mut self, p: Place) {
        self.nonnull.remove(&p);
        self.null.remove(&p);
        self.bounds.remove(&p);
        self.wild_bounds.remove(&p);
        self.wild_tag.remove(&p);
        self.rtti.remove(&p);
    }

    /// A store through a pointer or into an aggregate/untracked variable:
    /// globals may alias the written memory, and WILD heap facts (tags,
    /// area headers) can no longer be trusted.
    fn kill_memory_write(&mut self) {
        let keep = |p: &Place| matches!(p, Place::Local(_));
        self.nonnull.retain(keep);
        self.null.retain(keep);
        self.bounds.retain(|p, _| matches!(p, Place::Local(_)));
        self.rtti.retain(|p, _| matches!(p, Place::Local(_)));
        self.wild_tag.clear();
        self.wild_bounds.clear();
    }

    /// A call: the callee may write any global or any heap cell.
    fn kill_call(&mut self) {
        self.kill_memory_write();
    }

    fn copy_all(&mut self, src: Place, dst: Place) {
        if self.nonnull.contains(&src) {
            self.nonnull.insert(dst);
        }
        if self.null.contains(&src) {
            self.null.insert(dst);
        }
        if let Some(v) = self.bounds.get(&src).copied() {
            self.bounds.insert(dst, v);
        }
        if let Some(v) = self.wild_bounds.get(&src).copied() {
            self.wild_bounds.insert(dst, v);
        }
        if self.wild_tag.contains(&src) {
            self.wild_tag.insert(dst);
        }
        if let Some(v) = self.rtti.get(&src).copied() {
            self.rtti.insert(dst, v);
        }
    }

    /// Copy across a pointer cast: only value facts survive (the fat
    /// representation may differ, but the address — hence nullness — is
    /// preserved).
    fn copy_nullness(&mut self, src: Place, dst: Place) {
        if self.nonnull.contains(&src) {
            self.nonnull.insert(dst);
        }
        if self.null.contains(&src) {
            self.null.insert(dst);
        }
    }
}

/// Strips `Cast` layers off an expression.
fn strip_casts(e: &Exp) -> &Exp {
    match e {
        Exp::Cast(_, inner, _) => strip_casts(inner),
        _ => e,
    }
}

struct ElimAnalysis<'a> {
    prog: &'a Program,
    /// Locals of the current function whose address is never taken.
    tracked_locals: HashSet<u32>,
    /// Globals whose address is never taken anywhere in the program.
    tracked_globals: &'a HashSet<u32>,
}

impl ElimAnalysis<'_> {
    fn place_of_lval(&self, lv: &Lval) -> Option<Place> {
        if !lv.offsets.is_empty() {
            return None;
        }
        match &lv.base {
            LvBase::Local(l) if self.tracked_locals.contains(&l.0) => Some(Place::Local(l.0)),
            LvBase::Global(g) if self.tracked_globals.contains(&g.0) => Some(Place::Global(g.0)),
            _ => None,
        }
    }

    /// The tracked place an expression reads directly (no casts).
    fn direct_place(&self, e: &Exp) -> Option<Place> {
        match e {
            Exp::Load(lv, _) => self.place_of_lval(lv),
            _ => None,
        }
    }

    /// The tracked place behind any chain of casts.
    fn stripped_place(&self, e: &Exp) -> Option<Place> {
        self.direct_place(strip_casts(e))
    }

    fn is_ptr(&self, t: ccured_cil::types::TypeId) -> bool {
        self.prog.types.ptr_parts(t).is_some()
    }

    /// Applies the fact consequences of a *passing* check. Sound because a
    /// failing check aborts: the state after the instruction only exists on
    /// the passing outcome.
    fn gen_check(&self, c: &Check, fact: &mut Facts) {
        match c {
            Check::Null { ptr } => {
                if let Some(p) = self.stripped_place(ptr) {
                    fact.nonnull.insert(p);
                    fact.null.remove(&p);
                }
            }
            Check::SeqBounds { ptr, access_size } | Check::SeqToSafe { ptr, access_size } => {
                if let Some(p) = self.direct_place(ptr) {
                    let e = fact.bounds.entry(p).or_insert(0);
                    *e = (*e).max(*access_size);
                    fact.nonnull.insert(p);
                    fact.null.remove(&p);
                }
            }
            Check::WildBounds { ptr, access_size } => {
                if let Some(p) = self.direct_place(ptr) {
                    let e = fact.wild_bounds.entry(p).or_insert(0);
                    *e = (*e).max(*access_size);
                    fact.nonnull.insert(p);
                    fact.null.remove(&p);
                }
            }
            Check::WildTag { ptr } => {
                if let Some(p) = self.direct_place(ptr) {
                    fact.wild_tag.insert(p);
                }
            }
            Check::Rtti { ptr, target_node } => {
                if let Some(p) = self.stripped_place(ptr) {
                    fact.rtti.insert(p, *target_node);
                }
            }
            Check::NoStackEscape { .. } | Check::IndexBound { .. } => {}
        }
    }

    fn set_transfer(&self, lv: &Lval, e: &Exp, fact: &mut Facts) {
        let Some(dst) = self.place_of_lval(lv) else {
            // Store through a pointer, into an aggregate, or into an
            // address-taken/untracked variable.
            fact.kill_memory_write();
            return;
        };
        fact.kill(dst);
        let stripped = strip_casts(e);
        if stripped.is_zero() {
            fact.null.insert(dst);
            return;
        }
        match stripped {
            Exp::AddrOf(..) | Exp::StartOf(..) | Exp::FnAddr(..) => {
                fact.nonnull.insert(dst);
            }
            Exp::Load(..) => {
                if let Some(src) = self.direct_place(e) {
                    // `p = q` with identical representation: everything
                    // established about q holds for p.
                    fact.copy_all(src, dst);
                } else if let Some(src) = self.stripped_place(e) {
                    if self.is_ptr(e.ty()) && self.is_ptr(stripped.ty()) {
                        // `p = (T *)q`: the address is preserved, the fat
                        // representation may not be.
                        fact.copy_nullness(src, dst);
                    }
                }
            }
            _ => {}
        }
    }

    fn call_transfer(&self, ret: &Option<Lval>, fact: &mut Facts) {
        fact.kill_call();
        if let Some(lv) = ret {
            match self.place_of_lval(lv) {
                Some(dst) => fact.kill(dst),
                None => fact.kill_memory_write(),
            }
        }
    }
}

impl Analysis for ElimAnalysis<'_> {
    type Fact = Facts;

    fn entry_fact(&self) -> Facts {
        Facts::default()
    }

    fn transfer(&mut self, _id: InstrId, instr: &Instr, fact: &mut Facts) {
        match instr {
            Instr::Check(c, _, _) => self.gen_check(c, fact),
            Instr::Set(lv, e, _) => self.set_transfer(lv, e, fact),
            Instr::Call(ret, _, _, _) => self.call_transfer(ret, fact),
        }
    }
}

/// Deletes provably redundant checks from every function body of `prog` and
/// reports checks that provably always fail.
pub fn eliminate_checks(prog: &mut Program) -> ElisionResult {
    let tracked_globals = tracked_globals(prog);
    let mut result = ElisionResult::default();
    for fi in 0..prog.functions.len() {
        let plan = plan_function(prog, fi, &tracked_globals);
        result.stats.add(&plan.stats);
        result.failures.extend(plan.failures);
        for (site, n) in plan.site_elides {
            *result.site_elides.entry(site).or_insert(0) += n;
        }
        for (site, why) in plan.site_keeps {
            result.site_keeps.entry(site).or_insert(why);
        }
        let body = &mut prog.functions[fi].body;
        let delete = plan.delete;
        for_each_instr_mut(body, &mut |id, _| !delete.contains(&id));
    }
    result
}

struct Plan {
    delete: HashSet<InstrId>,
    stats: ElisionStats,
    failures: Vec<StaticFailure>,
    site_elides: BTreeMap<u32, u64>,
    site_keeps: BTreeMap<u32, String>,
}

fn plan_function(prog: &Program, fi: usize, tracked_globals: &HashSet<u32>) -> Plan {
    let func = &prog.functions[fi];
    let cfg = Cfg::build(func);
    let mut analysis = ElimAnalysis {
        prog,
        tracked_locals: tracked_locals(func),
        tracked_globals,
    };
    let entries = forward(&cfg, &mut analysis);

    let mut plan = Plan {
        delete: HashSet::new(),
        stats: ElisionStats::default(),
        failures: Vec::new(),
        site_elides: BTreeMap::new(),
        site_keeps: BTreeMap::new(),
    };
    for (bi, block) in cfg.blocks.iter().enumerate() {
        // Unreachable blocks keep their checks: we have no facts there and
        // deleting dead code is not this pass's job.
        let Some(mut fact) = entries[bi].clone() else {
            continue;
        };
        for (id, instr) in &block.instrs {
            if let Instr::Check(c, span, site) = instr {
                match decide(&analysis, func, c, &fact) {
                    Decision::Keep => {
                        if let Some(s) = site.index() {
                            plan.site_keeps
                                .entry(s as u32)
                                .or_insert_with(|| keep_reason(&analysis, c, &fact));
                        }
                    }
                    Decision::Elide => {
                        plan.delete.insert(*id);
                        plan.stats.bump(c);
                        if let Some(s) = site.index() {
                            *plan.site_elides.entry(s as u32).or_insert(0) += 1;
                        }
                    }
                    Decision::AlwaysFails(message) => {
                        if let Some(s) = site.index() {
                            plan.site_keeps
                                .entry(s as u32)
                                .or_insert_with(|| format!("provably always fails: {message}"));
                        }
                        plan.failures.push(StaticFailure {
                            func: func.name.clone(),
                            check: c.name(),
                            message,
                            span: *span,
                        });
                    }
                }
            }
            analysis.transfer(*id, instr, &mut fact);
        }
    }
    plan
}

enum Decision {
    Keep,
    Elide,
    AlwaysFails(String),
}

fn decide(a: &ElimAnalysis<'_>, func: &Function, c: &Check, fact: &Facts) -> Decision {
    match c {
        Check::Null { ptr } => {
            let stripped = strip_casts(ptr);
            if matches!(
                stripped,
                Exp::AddrOf(..) | Exp::StartOf(..) | Exp::FnAddr(..)
            ) {
                // The address of a variable or function is never null.
                return Decision::Elide;
            }
            if let Some(p) = a.stripped_place(ptr) {
                if fact.nonnull.contains(&p) {
                    return Decision::Elide;
                }
                if fact.null.contains(&p) {
                    return Decision::AlwaysFails(format!(
                        "dereference of `{}`, which is null on every path here",
                        place_name(a, func, p)
                    ));
                }
            }
            Decision::Keep
        }
        Check::SeqBounds { ptr, access_size } | Check::SeqToSafe { ptr, access_size } => {
            match a.direct_place(ptr) {
                Some(p) if fact.bounds.get(&p).is_some_and(|v| v >= access_size) => Decision::Elide,
                _ => Decision::Keep,
            }
        }
        Check::WildBounds { ptr, access_size } => match a.direct_place(ptr) {
            Some(p) if fact.wild_bounds.get(&p).is_some_and(|v| v >= access_size) => {
                Decision::Elide
            }
            _ => Decision::Keep,
        },
        Check::WildTag { ptr } => match a.direct_place(ptr) {
            Some(p) if fact.wild_tag.contains(&p) => Decision::Elide,
            _ => Decision::Keep,
        },
        Check::Rtti { ptr, target_node } => match a.stripped_place(ptr) {
            Some(p) if fact.rtti.get(&p) == Some(target_node) => Decision::Elide,
            _ => Decision::Keep,
        },
        Check::IndexBound { index, len } => {
            if let Exp::Const(Const::Int(v, _), _) = index {
                if *v < 0 || *v as u128 >= *len as u128 {
                    return Decision::AlwaysFails(format!(
                        "index {v} is always out of bounds for an array of length {len}"
                    ));
                }
                // A constant in-bounds index cannot fail.
                return Decision::Elide;
            }
            Decision::Keep
        }
        Check::NoStackEscape { .. } => Decision::Keep,
    }
}

/// Explains why [`decide`] returned [`Decision::Keep`] for `c` under `fact`
/// — the profiler's "hot site the optimizer could not elide" annotation.
/// Mirrors the `Keep` paths of [`decide`] exactly.
fn keep_reason(a: &ElimAnalysis<'_>, c: &Check, fact: &Facts) -> String {
    const UNTRACKED: &str =
        "pointer is not a trackable scalar (address taken, aggregate field, or loaded through memory)";
    match c {
        Check::Null { ptr } => match a.stripped_place(ptr) {
            None => UNTRACKED.into(),
            Some(_) => "pointer not proven non-null on every incoming path".into(),
        },
        Check::SeqBounds { ptr, access_size } | Check::SeqToSafe { ptr, access_size } => {
            match a.direct_place(ptr) {
                None => UNTRACKED.into(),
                Some(p) => match fact.bounds.get(&p) {
                    Some(v) => format!(
                        "an earlier bounds check only verified a {v}-byte access; this one needs {access_size} bytes"
                    ),
                    None => "no dominating bounds check on every incoming path".into(),
                },
            }
        }
        Check::WildBounds { ptr, access_size } => match a.direct_place(ptr) {
            None => UNTRACKED.into(),
            Some(p) => match fact.wild_bounds.get(&p) {
                Some(v) => format!(
                    "an earlier wild-bounds check only verified a {v}-byte access; this one needs {access_size} bytes"
                ),
                None => "no dominating wild-bounds check on every incoming path".into(),
            },
        },
        Check::WildTag { ptr } => match a.direct_place(ptr) {
            None => UNTRACKED.into(),
            Some(_) => "no dominating tag check on every incoming path (memory writes invalidate tag facts)".into(),
        },
        Check::Rtti { ptr, .. } => match a.stripped_place(ptr) {
            None => UNTRACKED.into(),
            Some(_) => "no dominating downcast to the same target on every incoming path".into(),
        },
        Check::IndexBound { .. } => "index is not a compile-time constant".into(),
        Check::NoStackEscape { .. } => {
            "stack-escape checks depend on the run-time value stored and are never elided".into()
        }
    }
}

fn place_name(a: &ElimAnalysis<'_>, func: &Function, p: Place) -> String {
    match p {
        Place::Local(l) => func.locals[l as usize].name.clone(),
        Place::Global(g) => a.prog.globals[g as usize].name.clone(),
    }
}

/// Locals of `func` whose address is never taken.
fn tracked_locals(func: &Function) -> HashSet<u32> {
    let mut taken = HashSet::new();
    visit_stmts(&func.body, &mut |e| {
        mark_addr_taken(e, &mut taken, &mut HashSet::new())
    });
    (0..func.locals.len() as u32)
        .filter(|l| !taken.contains(l))
        .collect()
}

/// Globals whose address is never taken anywhere in the program.
fn tracked_globals(prog: &Program) -> HashSet<u32> {
    let mut taken_locals = HashSet::new();
    let mut taken = HashSet::new();
    for f in &prog.functions {
        visit_stmts(&f.body, &mut |e| {
            mark_addr_taken(e, &mut taken_locals, &mut taken)
        });
    }
    for g in &prog.globals {
        if let Some(init) = &g.init {
            visit_init(init, &mut |e| {
                mark_addr_taken(e, &mut taken_locals, &mut taken)
            });
        }
    }
    (0..prog.globals.len() as u32)
        .filter(|g| !taken.contains(g))
        .collect()
}

fn mark_addr_taken(e: &Exp, locals: &mut HashSet<u32>, globals: &mut HashSet<u32>) {
    if let Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) = e {
        match &lv.base {
            LvBase::Local(l) => {
                locals.insert(l.0);
            }
            LvBase::Global(g) => {
                globals.insert(g.0);
            }
            LvBase::Deref(_) => {}
        }
    }
}

/// Calls `f` on every expression node (including subexpressions) in `body`.
fn visit_stmts(body: &[Stmt], f: &mut impl FnMut(&Exp)) {
    for s in body {
        match s {
            Stmt::Instr(is) => {
                for i in is {
                    match i {
                        Instr::Set(lv, e, _) => {
                            visit_lval(lv, f);
                            visit_exp(e, f);
                        }
                        Instr::Call(ret, callee, args, _) => {
                            if let Some(lv) = ret {
                                visit_lval(lv, f);
                            }
                            if let Callee::Ptr(e) = callee {
                                visit_exp(e, f);
                            }
                            for a in args {
                                visit_exp(a, f);
                            }
                        }
                        Instr::Check(c, _, _) => match c {
                            Check::Null { ptr }
                            | Check::SeqBounds { ptr, .. }
                            | Check::SeqToSafe { ptr, .. }
                            | Check::WildBounds { ptr, .. }
                            | Check::WildTag { ptr }
                            | Check::Rtti { ptr, .. } => visit_exp(ptr, f),
                            Check::NoStackEscape { value } => visit_exp(value, f),
                            Check::IndexBound { index, .. } => visit_exp(index, f),
                        },
                    }
                }
            }
            Stmt::If(c, t, e) => {
                visit_exp(c, f);
                visit_stmts(t, f);
                visit_stmts(e, f);
            }
            Stmt::Loop(b) | Stmt::Block(b) => visit_stmts(b, f),
            Stmt::Return(Some(e)) => visit_exp(e, f),
            Stmt::Switch(e, arms) => {
                visit_exp(e, f);
                for arm in arms {
                    visit_stmts(&arm.body, f);
                }
            }
            _ => {}
        }
    }
}

fn visit_exp(e: &Exp, f: &mut impl FnMut(&Exp)) {
    f(e);
    match e {
        Exp::Load(lv, _) | Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => visit_lval(lv, f),
        Exp::Unop(_, x, _) | Exp::Cast(_, x, _) => visit_exp(x, f),
        Exp::Binop(_, x, y, _) => {
            visit_exp(x, f);
            visit_exp(y, f);
        }
        _ => {}
    }
}

fn visit_lval(lv: &Lval, f: &mut impl FnMut(&Exp)) {
    if let LvBase::Deref(e) = &lv.base {
        visit_exp(e, f);
    }
    for off in &lv.offsets {
        if let Offset::Index(e) = off {
            visit_exp(e, f);
        }
    }
}

fn visit_init(init: &Init, f: &mut impl FnMut(&Exp)) {
    match init {
        Init::Scalar(e) => visit_exp(e, f),
        Init::Compound(items) => {
            for i in items {
                visit_init(i, f);
            }
        }
        Init::String(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_cil::ir::{Check, Instr, Stmt};

    fn lower(src: &str) -> Program {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        ccured_cil::lower_translation_unit(&tu).expect("lower")
    }

    /// `Load` of a named local of function 0.
    fn load(prog: &Program, name: &str) -> Exp {
        let f = &prog.functions[0];
        let (i, l) = f
            .locals
            .iter()
            .enumerate()
            .find(|(_, l)| l.name == name)
            .expect("local");
        Exp::Load(Box::new(Lval::local(LocalId(i as u32))), l.ty)
    }

    fn null_check(prog: &Program, name: &str) -> Instr {
        Instr::Check(
            Check::Null {
                ptr: load(prog, name),
            },
            Span::DUMMY,
            SiteId::NONE,
        )
    }

    fn count_checks(prog: &Program) -> usize {
        let mut n = 0;
        for f in &prog.functions {
            visit_checks(&f.body, &mut n);
        }
        n
    }

    fn visit_checks(body: &[Stmt], n: &mut usize) {
        for s in body {
            match s {
                Stmt::Instr(is) => {
                    *n += is.iter().filter(|i| matches!(i, Instr::Check(..))).count()
                }
                Stmt::If(_, t, e) => {
                    visit_checks(t, n);
                    visit_checks(e, n);
                }
                Stmt::Loop(b) | Stmt::Block(b) => visit_checks(b, n),
                Stmt::Switch(_, arms) => {
                    for arm in arms {
                        visit_checks(&arm.body, n);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn dominated_null_check_is_elided() {
        let mut prog = lower("int f(int *p) { return 0; }");
        let c1 = null_check(&prog, "p");
        let c2 = null_check(&prog, "p");
        prog.functions[0].body.insert(0, Stmt::Instr(vec![c1, c2]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "the second identical check is redundant");
        assert_eq!(count_checks(&prog), 1);
        assert!(r.failures.is_empty());
    }

    #[test]
    fn check_after_both_armed_if_is_elided() {
        let mut prog = lower("int f(int *p, int c) { return 0; }");
        let cond = load(&prog, "c");
        let both = Stmt::If(
            cond.clone(),
            vec![Stmt::Instr(vec![null_check(&prog, "p")])],
            vec![Stmt::Instr(vec![null_check(&prog, "p")])],
        );
        let after = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.splice(0..0, [both, after]);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "only the join check is dominated");
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn check_after_one_armed_if_is_kept() {
        let mut prog = lower("int f(int *p, int c) { return 0; }");
        let cond = load(&prog, "c");
        let one = Stmt::If(
            cond,
            vec![Stmt::Instr(vec![null_check(&prog, "p")])],
            vec![],
        );
        let after = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.splice(0..0, [one, after]);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 0, "the fact does not hold on the else path");
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn reassignment_kills_the_fact() {
        let mut prog = lower("int f(int *p, int *q) { p = q; return 0; }");
        // check p; p = q; check p  — the second check must survive.
        let assign = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(..)))),
            )
            .expect("assignment stmt");
        let c1 = Stmt::Instr(vec![null_check(&prog, "p")]);
        let c2 = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.insert(assign + 1, c2);
        prog.functions[0].body.insert(assign, c1);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 0);
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn copy_propagates_nonnull() {
        let mut prog = lower("int f(int *p, int *q) { q = p; return 0; }");
        // check p; q = p; check q  — q inherits p's fact.
        let assign = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(..)))),
            )
            .expect("assignment stmt");
        let c1 = Stmt::Instr(vec![null_check(&prog, "p")]);
        let c2 = Stmt::Instr(vec![null_check(&prog, "q")]);
        prog.functions[0].body.insert(assign + 1, c2);
        prog.functions[0].body.insert(assign, c1);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "q = p transfers p's nonnull fact");
        assert_eq!(count_checks(&prog), 1);
    }

    #[test]
    fn seq_bounds_elided_only_up_to_verified_size() {
        let mut prog = lower("int f(int *p) { return 0; }");
        let mk = |prog: &Program, size| {
            Instr::Check(
                Check::SeqBounds {
                    ptr: load(prog, "p"),
                    access_size: size,
                },
                Span::DUMMY,
                SiteId::NONE,
            )
        };
        let c8 = mk(&prog, 8);
        let c4 = mk(&prog, 4);
        let c16 = mk(&prog, 16);
        prog.functions[0]
            .body
            .insert(0, Stmt::Instr(vec![c8, c4, c16]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(
            r.stats.seq_bounds, 1,
            "only the smaller re-check is covered"
        );
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn must_null_deref_is_a_static_failure() {
        let mut prog = lower("int f(void) { int *p; p = 0; return 0; }");
        let assign = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(..)))),
            )
            .expect("assignment stmt");
        let c = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.insert(assign + 1, c);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].message.contains("null on every path"));
        assert_eq!(count_checks(&prog), 1, "the failing check is kept");
    }

    #[test]
    fn constant_oob_index_is_a_static_failure() {
        let mut prog = lower("int f(int i) { return 0; }");
        let idx = load(&prog, "i");
        let int_ty = idx.ty();
        let c = Instr::Check(
            Check::IndexBound {
                index: Exp::int(7, ccured_cil::types::IntKind::Int, int_ty),
                len: 4,
            },
            Span::DUMMY,
            SiteId::NONE,
        );
        prog.functions[0].body.insert(0, Stmt::Instr(vec![c]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].message.contains("out of bounds"));
    }

    #[test]
    fn call_preserves_local_facts_but_kills_globals() {
        let mut prog = lower(
            "int *gp;\n\
             void g(void) { }\n\
             int f(int *p) { g(); return 0; }",
        );
        // f is function index 1 here; rebuild helpers against it.
        let fidx = prog.find_function("f").unwrap().idx();
        let (pi, pl) = prog.functions[fidx]
            .locals
            .iter()
            .enumerate()
            .find(|(_, l)| l.name == "p")
            .unwrap();
        let pload = Exp::Load(Box::new(Lval::local(LocalId(pi as u32))), pl.ty);
        let gid = prog.find_global("gp").unwrap();
        let gty = prog.globals[gid.idx()].ty;
        let gload = Exp::Load(Box::new(Lval::global(gid)), gty);
        let chk = |e: &Exp| Instr::Check(Check::Null { ptr: e.clone() }, Span::DUMMY, SiteId::NONE);
        let call = prog.functions[fidx]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Call(..)))),
            )
            .expect("call stmt");
        prog.functions[fidx]
            .body
            .insert(call + 1, Stmt::Instr(vec![chk(&pload), chk(&gload)]));
        prog.functions[fidx]
            .body
            .insert(call, Stmt::Instr(vec![chk(&pload), chk(&gload)]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "p's fact survives the call, gp's does not");
    }

    #[test]
    fn address_of_is_never_null() {
        let mut prog = lower("int f(void) { int x; x = 1; return x; }");
        let f = &prog.functions[0];
        let (xi, xl) = f
            .locals
            .iter()
            .enumerate()
            .find(|(_, l)| l.name == "x")
            .unwrap();
        let ptr_ty = xl.ty; // type is irrelevant to the decision
        let c = Instr::Check(
            Check::Null {
                ptr: Exp::AddrOf(Box::new(Lval::local(LocalId(xi as u32))), ptr_ty),
            },
            Span::DUMMY,
            SiteId::NONE,
        );
        prog.functions[0].body.insert(0, Stmt::Instr(vec![c]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1);
        assert_eq!(count_checks(&prog), 0);
    }

    #[test]
    fn address_taken_local_is_untracked() {
        let mut prog = lower("int f(int *p) { int **pp; pp = &p; return 0; }");
        let c1 = Stmt::Instr(vec![null_check(&prog, "p")]);
        let c2 = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.splice(0..0, [c1, c2]);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 0, "&p escapes: p is not trackable");
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn loop_body_check_of_loop_invariant_pointer_is_kept_first_elided_after() {
        // check p inside a loop: the back edge carries the fact, so the
        // in-loop check is elided only if it also holds on loop entry.
        let mut prog =
            lower("int f(int *p, int n) { int i; i = 0; while (i < n) { i = i + 1; } return 0; }");
        let pre = Stmt::Instr(vec![null_check(&prog, "p")]);
        // Insert the pre-loop check at the very start, and one inside the
        // loop body.
        let inner = null_check(&prog, "p");
        // Clippy's guard suggestion needs a mutable borrow in the pattern
        // guard, which does not borrow-check.
        #[allow(clippy::collapsible_match)]
        fn push_into_loop(body: &mut [Stmt], inner: &Instr) -> bool {
            for s in body {
                match s {
                    Stmt::Loop(b) => {
                        b.insert(0, Stmt::Instr(vec![inner.clone()]));
                        return true;
                    }
                    Stmt::Block(b) | Stmt::If(_, b, _) => {
                        if push_into_loop(b, inner) {
                            return true;
                        }
                    }
                    _ => {}
                }
            }
            false
        }
        assert!(push_into_loop(&mut prog.functions[0].body, &inner));
        prog.functions[0].body.insert(0, pre);
        let r = eliminate_checks(&mut prog);
        assert_eq!(
            r.stats.null, 1,
            "the in-loop check is dominated by the pre-loop check"
        );
    }
}
