//! Redundant-check elimination (dataflow client) and the static failure
//! detector.
//!
//! A must-analysis tracks, per scalar pointer variable, what the checks that
//! already executed have established: non-nullness, verified SEQ/WILD
//! bounds (valid while the pointer is unmoved), verified WILD tags, and
//! verified RTTI downcast targets. A [`Check`](ccured_cil::ir::Check) whose
//! fact already holds on every path is deleted — the run-time cost counters
//! drop, the verdict never changes, because a passing check is a pure
//! verification (the fat-pointer conversions happen at cast evaluation, not
//! in the check).
//!
//! The same facts power the static failure detector: a check that provably
//! *always* fails (constant out-of-bounds index, dereference of a pointer
//! that is null on every path) is reported as a compile-time diagnostic.
//! The check itself is kept so the run-time behaviour is unchanged.

use crate::cfg::{for_each_instr_mut, Cfg, InstrId};
use crate::dataflow::{forward, Analysis, Lattice};
use ccured_ast::Span;
use ccured_cil::ir::*;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// How many checks of each kind the optimizer deleted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElisionStats {
    /// Elided null checks.
    pub null: u64,
    /// Elided SEQ bounds checks.
    pub seq_bounds: u64,
    /// Elided SEQ-to-SAFE conversion checks.
    pub seq_to_safe: u64,
    /// Elided WILD bounds checks.
    pub wild_bounds: u64,
    /// Elided WILD tag checks.
    pub wild_tag: u64,
    /// Elided RTTI downcast checks.
    pub rtti: u64,
    /// Elided constant-index bounds checks.
    pub index_bound: u64,
    /// Elided temporal lock-and-key checks.
    pub temporal: u64,
}

impl ElisionStats {
    /// Total number of deleted checks.
    pub fn total(&self) -> u64 {
        self.null
            + self.seq_bounds
            + self.seq_to_safe
            + self.wild_bounds
            + self.wild_tag
            + self.rtti
            + self.index_bound
            + self.temporal
    }

    /// Accumulates another function's stats.
    pub fn add(&mut self, o: &ElisionStats) {
        self.null += o.null;
        self.seq_bounds += o.seq_bounds;
        self.seq_to_safe += o.seq_to_safe;
        self.wild_bounds += o.wild_bounds;
        self.wild_tag += o.wild_tag;
        self.rtti += o.rtti;
        self.index_bound += o.index_bound;
        self.temporal += o.temporal;
    }

    fn bump(&mut self, c: &Check) {
        match c {
            Check::Null { .. } => self.null += 1,
            Check::SeqBounds { .. } => self.seq_bounds += 1,
            Check::SeqToSafe { .. } => self.seq_to_safe += 1,
            Check::WildBounds { .. } => self.wild_bounds += 1,
            Check::WildTag { .. } => self.wild_tag += 1,
            Check::Rtti { .. } => self.rtti += 1,
            Check::IndexBound { .. } => self.index_bound += 1,
            Check::Temporal { .. } => self.temporal += 1,
            Check::NoStackEscape { .. } => {}
            // Loop-optimizer artifacts are placed after elimination and are
            // never deleted by this pass.
            Check::Probe { .. } | Check::Guarded { .. } | Check::GuardReset { .. } => {}
        }
    }
}

/// A check that is statically guaranteed to fail whenever it executes.
#[derive(Debug, Clone)]
pub struct StaticFailure {
    /// Enclosing function.
    pub func: String,
    /// The check kind ([`Check::name`]).
    pub check: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Source location of the offending instruction.
    pub span: Span,
}

/// The result of running the optimizer over a program.
#[derive(Debug, Clone, Default)]
pub struct ElisionResult {
    /// Deleted-check counts.
    pub stats: ElisionStats,
    /// Checks that provably always fail (kept in the program; reported).
    pub failures: Vec<StaticFailure>,
    /// Deleted instructions per check site, keyed by the raw
    /// [`SiteId`](ccured_cil::ir::SiteId) index. Sites the instrumentation
    /// did not number ([`SiteId::NONE`](ccured_cil::ir::SiteId::NONE)) are
    /// not recorded.
    pub site_elides: BTreeMap<u32, u64>,
    /// Why the first surviving check of each site was kept, keyed like
    /// [`ElisionResult::site_elides`]. Feeds the profiler's "hot sites the
    /// optimizer could not elide" report.
    pub site_keeps: BTreeMap<u32, String>,
}

/// A trackable place: a whole scalar variable. Address-taken locals are
/// tracked too — the escape pre-pass records them in
/// [`ElimAnalysis::aliased_locals`], and any store through memory (or any
/// call) kills their facts, so a stale fact can never survive a write
/// through an alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Place {
    Local(u32),
    Global(u32),
}

/// An inclusive integer interval, with `i128::MIN`/`i128::MAX` standing in
/// for −∞/+∞. The value-range domain lets index facts survive arithmetic:
/// `i = i + 2` shifts the interval instead of destroying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Range {
    pub lo: i128,
    pub hi: i128,
}

impl Range {
    const FULL: Range = Range {
        lo: i128::MIN,
        hi: i128::MAX,
    };

    fn exact(v: i128) -> Range {
        Range { lo: v, hi: v }
    }

    fn is_full(&self) -> bool {
        *self == Range::FULL
    }

    /// Whether every value of `self` lies inside `[lo, hi]`.
    fn within(&self, lo: i128, hi: i128) -> bool {
        self.lo >= lo && self.hi <= hi
    }

    fn intersect(&self, o: &Range) -> Range {
        Range {
            lo: self.lo.max(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    /// Join with widening against the previously stored interval: a bound
    /// that grows jumps straight to its infinity, so each stored bound
    /// changes at most twice and the fixpoint terminates. (This is the
    /// sanctioned non-commutative meet documented on
    /// [`Lattice`](crate::dataflow::Lattice): `self` is the old fact.)
    fn widen_join(&self, new: &Range) -> Range {
        Range {
            lo: if new.lo < self.lo { i128::MIN } else { self.lo },
            hi: if new.hi > self.hi { i128::MAX } else { self.hi },
        }
    }

    fn add(&self, o: &Range) -> Range {
        let lo = self.lo.checked_add(o.lo);
        let hi = self.hi.checked_add(o.hi);
        match (lo, hi) {
            (Some(lo), Some(hi)) => Range { lo, hi },
            _ => Range::FULL,
        }
    }

    fn sub(&self, o: &Range) -> Range {
        let lo = self.lo.checked_sub(o.hi);
        let hi = self.hi.checked_sub(o.lo);
        match (lo, hi) {
            (Some(lo), Some(hi)) => Range { lo, hi },
            _ => Range::FULL,
        }
    }

    fn mul(&self, o: &Range) -> Range {
        let corners = [
            self.lo.checked_mul(o.lo),
            self.lo.checked_mul(o.hi),
            self.hi.checked_mul(o.lo),
            self.hi.checked_mul(o.hi),
        ];
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for c in corners {
            match c {
                Some(v) => {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                None => return Range::FULL,
            }
        }
        Range { lo, hi }
    }
}

/// The must-facts holding at a program point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Facts {
    /// Places verified non-null.
    nonnull: BTreeSet<Place>,
    /// Places that are null on every path (for the failure detector).
    null: BTreeSet<Place>,
    /// Largest verified SEQ access size per unmoved place.
    bounds: BTreeMap<Place, u64>,
    /// Largest verified WILD access size per unmoved place.
    wild_bounds: BTreeMap<Place, u64>,
    /// Places whose pointed-to word has a verified pointer tag.
    wild_tag: BTreeSet<Place>,
    /// Verified RTTI downcast target node per place.
    rtti: BTreeMap<Place, u32>,
    /// Known value intervals of integer places (absent = unknown).
    ranges: BTreeMap<Place, Range>,
    /// Places whose temporal capability key is verified valid. Unlike every
    /// other fact, a *call* is what invalidates these (the callee may
    /// `free`), so [`Facts::kill_call`] clears the whole set.
    temporal: BTreeSet<Place>,
}

fn meet_sets(a: &BTreeSet<Place>, b: &BTreeSet<Place>) -> BTreeSet<Place> {
    a.intersection(b).cloned().collect()
}

fn meet_min(a: &BTreeMap<Place, u64>, b: &BTreeMap<Place, u64>) -> BTreeMap<Place, u64> {
    a.iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| (*k, (*va).min(*vb))))
        .collect()
}

impl Lattice for Facts {
    fn meet(&self, other: &Self) -> Self {
        Facts {
            nonnull: meet_sets(&self.nonnull, &other.nonnull),
            null: meet_sets(&self.null, &other.null),
            bounds: meet_min(&self.bounds, &other.bounds),
            wild_bounds: meet_min(&self.wild_bounds, &other.wild_bounds),
            wild_tag: meet_sets(&self.wild_tag, &other.wild_tag),
            rtti: self
                .rtti
                .iter()
                .filter(|(k, v)| other.rtti.get(k) == Some(v))
                .map(|(k, v)| (*k, *v))
                .collect(),
            ranges: self
                .ranges
                .iter()
                .filter_map(|(k, old)| {
                    let r = old.widen_join(other.ranges.get(k)?);
                    (!r.is_full()).then_some((*k, r))
                })
                .collect(),
            temporal: meet_sets(&self.temporal, &other.temporal),
        }
    }
}

impl Facts {
    fn kill(&mut self, p: Place) {
        self.nonnull.remove(&p);
        self.null.remove(&p);
        self.bounds.remove(&p);
        self.wild_bounds.remove(&p);
        self.wild_tag.remove(&p);
        self.rtti.remove(&p);
        self.ranges.remove(&p);
        self.temporal.remove(&p);
    }

    /// A store through a pointer or into an aggregate/untracked variable:
    /// globals and address-taken locals may alias the written memory (the
    /// escape pre-pass computed `aliased`), and WILD heap facts (tags,
    /// area headers) can no longer be trusted. Only facts about locals
    /// whose address is never taken survive.
    fn kill_memory_write(&mut self, aliased: &HashSet<u32>) {
        let keep = |p: &Place| matches!(p, Place::Local(l) if !aliased.contains(l));
        self.nonnull.retain(keep);
        self.null.retain(keep);
        self.bounds.retain(|p, _| keep(p));
        self.rtti.retain(|p, _| keep(p));
        self.ranges.retain(|p, _| keep(p));
        // A store cannot free, so a temporal key verified for an unaliased
        // local stays valid; an aliased place may have been overwritten
        // with a different (possibly dead) pointer.
        self.temporal.retain(keep);
        self.wild_tag.clear();
        self.wild_bounds.clear();
    }

    /// A call: the callee may write any global or any heap cell — including
    /// any local whose address has escaped — and, crucially for temporal
    /// safety, may `free` *any* heap allocation, so every temporal fact
    /// dies regardless of aliasing.
    fn kill_call(&mut self, aliased: &HashSet<u32>) {
        self.kill_memory_write(aliased);
        self.temporal.clear();
    }

    fn copy_all(&mut self, src: Place, dst: Place) {
        if self.nonnull.contains(&src) {
            self.nonnull.insert(dst);
        }
        if self.null.contains(&src) {
            self.null.insert(dst);
        }
        if let Some(v) = self.bounds.get(&src).copied() {
            self.bounds.insert(dst, v);
        }
        if let Some(v) = self.wild_bounds.get(&src).copied() {
            self.wild_bounds.insert(dst, v);
        }
        if self.wild_tag.contains(&src) {
            self.wild_tag.insert(dst);
        }
        if let Some(v) = self.rtti.get(&src).copied() {
            self.rtti.insert(dst, v);
        }
        if let Some(v) = self.ranges.get(&src).copied() {
            self.ranges.insert(dst, v);
        }
        if self.temporal.contains(&src) {
            self.temporal.insert(dst);
        }
    }

    /// Copy across a pointer cast: only value facts survive (the fat
    /// representation may differ, but the address — hence nullness — is
    /// preserved).
    fn copy_nullness(&mut self, src: Place, dst: Place) {
        if self.nonnull.contains(&src) {
            self.nonnull.insert(dst);
        }
        if self.null.contains(&src) {
            self.null.insert(dst);
        }
        // A cast preserves the address, hence the allocation the pointer
        // names — temporal validity travels with it.
        if self.temporal.contains(&src) {
            self.temporal.insert(dst);
        }
    }
}

/// Strips `Cast` layers off an expression.
fn strip_casts(e: &Exp) -> &Exp {
    match e {
        Exp::Cast(_, inner, _) => strip_casts(inner),
        _ => e,
    }
}

struct ElimAnalysis<'a> {
    prog: &'a Program,
    /// Locals of the current function whose address is taken somewhere in
    /// the body (the escape pre-pass). Their facts are tracked between
    /// memory writes but die at every store through memory and every call.
    aliased_locals: HashSet<u32>,
    /// Globals whose address is never taken anywhere in the program.
    tracked_globals: &'a HashSet<u32>,
}

impl ElimAnalysis<'_> {
    fn place_of_lval(&self, lv: &Lval) -> Option<Place> {
        if !lv.offsets.is_empty() {
            return None;
        }
        match &lv.base {
            LvBase::Local(l) => Some(Place::Local(l.0)),
            LvBase::Global(g) if self.tracked_globals.contains(&g.0) => Some(Place::Global(g.0)),
            _ => None,
        }
    }

    /// The tracked place an expression reads directly (no casts).
    fn direct_place(&self, e: &Exp) -> Option<Place> {
        match e {
            Exp::Load(lv, _) => self.place_of_lval(lv),
            _ => None,
        }
    }

    /// The tracked place behind any chain of casts.
    fn stripped_place(&self, e: &Exp) -> Option<Place> {
        self.direct_place(strip_casts(e))
    }

    fn is_ptr(&self, t: ccured_cil::types::TypeId) -> bool {
        self.prog.types.ptr_parts(t).is_some()
    }

    /// The representable interval of an integer type, or `None` for
    /// non-integer types.
    fn int_bounds(&self, t: ccured_cil::types::TypeId) -> Option<(i128, i128)> {
        match self.prog.types.get(t) {
            ccured_cil::types::Type::Int(k) => {
                let bits = self.prog.types.machine.int_size(*k) * 8;
                Some(if k.is_signed() {
                    (-(1i128 << (bits - 1)), (1i128 << (bits - 1)) - 1)
                } else {
                    (0, (1i128 << bits) - 1)
                })
            }
            _ => None,
        }
    }

    /// The conservative value interval of `e` under `fact`. Arithmetic whose
    /// interval escapes the expression's own type is widened to the full
    /// range (the evaluator wraps; a wrapped value is anywhere), so the
    /// returned interval always contains the run-time value.
    fn exp_range(&self, e: &Exp, fact: &Facts) -> Range {
        let r = match e {
            Exp::Const(Const::Int(v, _), _) => Range::exact(*v),
            Exp::Load(lv, _) => {
                return self
                    .place_of_lval(lv)
                    .and_then(|p| fact.ranges.get(&p).copied())
                    .unwrap_or(Range::FULL)
            }
            Exp::Cast(_, inner, t) => {
                let r = self.exp_range(inner, fact);
                return match self.int_bounds(*t) {
                    Some((lo, hi)) if r.within(lo, hi) => r,
                    _ => Range::FULL,
                };
            }
            Exp::Binop(op, a, b, _) => {
                let ra = self.exp_range(a, fact);
                let rb = self.exp_range(b, fact);
                match op {
                    BinOp::Add => ra.add(&rb),
                    BinOp::Sub => ra.sub(&rb),
                    BinOp::Mul => ra.mul(&rb),
                    _ => Range::FULL,
                }
            }
            _ => Range::FULL,
        };
        // Wrap safety: trust the interval only when it fits the type the
        // expression evaluates at.
        match self.int_bounds(e.ty()) {
            Some((lo, hi)) if r.within(lo, hi) => r,
            _ => Range::FULL,
        }
    }

    /// Applies the fact consequences of a *passing* check. Sound because a
    /// failing check aborts: the state after the instruction only exists on
    /// the passing outcome.
    fn gen_check(&self, c: &Check, fact: &mut Facts) {
        match c {
            Check::Null { ptr } => {
                if let Some(p) = self.stripped_place(ptr) {
                    fact.nonnull.insert(p);
                    fact.null.remove(&p);
                }
            }
            Check::SeqBounds { ptr, access_size } | Check::SeqToSafe { ptr, access_size } => {
                if let Some(p) = self.direct_place(ptr) {
                    let e = fact.bounds.entry(p).or_insert(0);
                    *e = (*e).max(*access_size);
                    fact.nonnull.insert(p);
                    fact.null.remove(&p);
                }
            }
            Check::WildBounds { ptr, access_size } => {
                if let Some(p) = self.direct_place(ptr) {
                    let e = fact.wild_bounds.entry(p).or_insert(0);
                    *e = (*e).max(*access_size);
                    fact.nonnull.insert(p);
                    fact.null.remove(&p);
                }
            }
            Check::WildTag { ptr } => {
                if let Some(p) = self.direct_place(ptr) {
                    fact.wild_tag.insert(p);
                }
            }
            Check::Rtti { ptr, target_node } => {
                if let Some(p) = self.stripped_place(ptr) {
                    fact.rtti.insert(p, *target_node);
                }
            }
            Check::IndexBound { index, len } => {
                // A passing index check proves `0 ≤ index < len`.
                if let Some(p) = self.direct_place(index) {
                    let cur = fact.ranges.get(&p).copied().unwrap_or(Range::FULL);
                    let proved = Range {
                        lo: 0,
                        hi: *len as i128 - 1,
                    };
                    fact.ranges.insert(p, cur.intersect(&proved));
                }
            }
            Check::Temporal { ptr } => {
                if let Some(p) = self.stripped_place(ptr) {
                    fact.temporal.insert(p);
                }
            }
            Check::NoStackEscape { .. } => {}
            // A passing guarded check certifies exactly what its original
            // would have; probes and resets certify nothing (a probe's
            // failure does not abort).
            Check::Guarded { inner, .. } => self.gen_check(inner, fact),
            Check::Probe { .. } | Check::GuardReset { .. } => {}
        }
    }

    fn set_transfer(&self, lv: &Lval, e: &Exp, fact: &mut Facts) {
        let Some(dst) = self.place_of_lval(lv) else {
            // Store through a pointer, into an aggregate, or into an
            // untracked global.
            fact.kill_memory_write(&self.aliased_locals);
            return;
        };
        // Evaluate the range before the kill: `i = i + 1` reads the old i.
        let range = self.exp_range(e, fact);
        fact.kill(dst);
        if !range.is_full() && self.int_bounds(e.ty()).is_some() {
            fact.ranges.insert(dst, range);
        }
        let stripped = strip_casts(e);
        if stripped.is_zero() {
            fact.null.insert(dst);
            return;
        }
        match stripped {
            Exp::AddrOf(..) | Exp::StartOf(..) | Exp::FnAddr(..) => {
                fact.nonnull.insert(dst);
            }
            Exp::Load(..) => {
                if let Some(src) = self.direct_place(e) {
                    // `p = q` with identical representation: everything
                    // established about q holds for p.
                    fact.copy_all(src, dst);
                } else if let Some(src) = self.stripped_place(e) {
                    if self.is_ptr(e.ty()) && self.is_ptr(stripped.ty()) {
                        // `p = (T *)q`: the address is preserved, the fat
                        // representation may not be.
                        fact.copy_nullness(src, dst);
                    }
                }
            }
            _ => {}
        }
    }

    fn call_transfer(&self, ret: &Option<Lval>, fact: &mut Facts) {
        fact.kill_call(&self.aliased_locals);
        if let Some(lv) = ret {
            match self.place_of_lval(lv) {
                Some(dst) => fact.kill(dst),
                None => fact.kill_memory_write(&self.aliased_locals),
            }
        }
    }

    /// Narrows `p`'s interval with `[lo, hi]`.
    fn narrow(&self, fact: &mut Facts, p: Place, lo: i128, hi: i128) {
        let cur = fact.ranges.get(&p).copied().unwrap_or(Range::FULL);
        let n = cur.intersect(&Range { lo, hi });
        if !n.is_full() {
            fact.ranges.insert(p, n);
        }
    }

    /// Refines one side of a comparison `a OP b` along a branch edge. Only
    /// *direct* loads are refined — a cast may have wrapped the value, so
    /// the comparison outcome says nothing about the un-cast variable.
    fn refine_cmp(&self, op: BinOp, a: &Exp, b: &Exp, taken: bool, fact: &mut Facts) {
        let Some(p) = self.direct_place(a) else {
            return;
        };
        let rb = self.exp_range(b, fact);
        let (lo, hi) = match (op, taken) {
            // a < b holds: a ≤ max(b) − 1. Fails: a ≥ min(b).
            (BinOp::Lt, true) => (i128::MIN, rb.hi.saturating_sub(1)),
            (BinOp::Lt, false) => (rb.lo, i128::MAX),
            (BinOp::Le, true) => (i128::MIN, rb.hi),
            (BinOp::Le, false) => (rb.lo.saturating_add(1), i128::MAX),
            (BinOp::Gt, true) => (rb.lo.saturating_add(1), i128::MAX),
            (BinOp::Gt, false) => (i128::MIN, rb.hi),
            (BinOp::Ge, true) => (rb.lo, i128::MAX),
            (BinOp::Ge, false) => (i128::MIN, rb.hi.saturating_sub(1)),
            (BinOp::Eq, true) | (BinOp::Ne, false) => (rb.lo, rb.hi),
            _ => return,
        };
        self.narrow(fact, p, lo, hi);
    }
}

/// Flips a comparison operator so `a OP b ⇔ b OP' a`.
fn mirror(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        BinOp::Eq => BinOp::Eq,
        BinOp::Ne => BinOp::Ne,
        _ => return None,
    })
}

impl Analysis for ElimAnalysis<'_> {
    type Fact = Facts;

    fn entry_fact(&self) -> Facts {
        Facts::default()
    }

    fn transfer(&mut self, _id: InstrId, instr: &Instr, fact: &mut Facts) {
        match instr {
            Instr::Check(c, _, _) => self.gen_check(c, fact),
            Instr::Set(lv, e, _) => self.set_transfer(lv, e, fact),
            Instr::Call(ret, _, _, _) => self.call_transfer(ret, fact),
        }
    }

    fn refine_edge(&mut self, cond: &Exp, taken: bool, fact: &mut Facts) {
        if let Exp::Binop(op, a, b, _) = cond {
            self.refine_cmp(*op, a, b, taken, fact);
            if let Some(m) = mirror(*op) {
                self.refine_cmp(m, b, a, taken, fact);
            }
        }
    }
}

impl ElisionResult {
    /// Folds another (per-function) result into this one. Site ids are
    /// globally unique across a program, so per-site maps never collide
    /// when merging results of distinct functions.
    pub fn merge(&mut self, other: ElisionResult) {
        self.stats.add(&other.stats);
        self.failures.extend(other.failures);
        for (site, n) in other.site_elides {
            *self.site_elides.entry(site).or_insert(0) += n;
        }
        for (site, why) in other.site_keeps {
            // Last writer wins: the reason recorded for a site must be the
            // one computed at the final fixpoint, not a stale early answer.
            self.site_keeps.insert(site, why);
        }
    }
}

/// Deletes provably redundant checks from every function body of `prog` and
/// reports checks that provably always fail.
pub fn eliminate_checks(prog: &mut Program) -> ElisionResult {
    let tracked_globals = tracked_globals(prog);
    let mut result = ElisionResult::default();
    for fi in 0..prog.functions.len() {
        result.merge(eliminate_checks_in_function(prog, fi, &tracked_globals));
    }
    result
}

/// Deletes provably redundant checks from one function body. The analysis
/// is intraprocedural, so per-function results compose: running this over
/// every function (with the shared `tracked_globals` set from
/// [`tracked_globals`]) is exactly [`eliminate_checks`]. The incremental
/// recure path uses this to re-optimize only changed functions.
pub fn eliminate_checks_in_function(
    prog: &mut Program,
    fi: usize,
    tracked_globals: &HashSet<u32>,
) -> ElisionResult {
    let plan = plan_function(prog, fi, tracked_globals);
    let result = ElisionResult {
        stats: plan.stats,
        failures: plan.failures,
        site_elides: plan.site_elides,
        site_keeps: plan.site_keeps,
    };
    let body = &mut prog.functions[fi].body;
    let delete = plan.delete;
    for_each_instr_mut(body, &mut |id, _| !delete.contains(&id));
    result
}

struct Plan {
    delete: HashSet<InstrId>,
    stats: ElisionStats,
    failures: Vec<StaticFailure>,
    site_elides: BTreeMap<u32, u64>,
    site_keeps: BTreeMap<u32, String>,
}

fn plan_function(prog: &Program, fi: usize, tracked_globals: &HashSet<u32>) -> Plan {
    let func = &prog.functions[fi];
    let cfg = Cfg::build(func);
    let mut analysis = ElimAnalysis {
        prog,
        aliased_locals: aliased_locals(func),
        tracked_globals,
    };
    let entries = forward(&cfg, &mut analysis);

    let mut plan = Plan {
        delete: HashSet::new(),
        stats: ElisionStats::default(),
        failures: Vec::new(),
        site_elides: BTreeMap::new(),
        site_keeps: BTreeMap::new(),
    };
    for (bi, block) in cfg.blocks.iter().enumerate() {
        // Unreachable blocks keep their checks: we have no facts there and
        // deleting dead code is not this pass's job.
        let Some(mut fact) = entries[bi].clone() else {
            continue;
        };
        for (id, instr) in &block.instrs {
            if let Instr::Check(c, span, site) = instr {
                match decide(&analysis, func, c, &fact) {
                    Decision::Keep => {
                        if let Some(s) = site.index() {
                            let why = keep_reason(&analysis, c, &fact);
                            plan.site_keeps.insert(s as u32, why);
                        }
                    }
                    Decision::Elide => {
                        plan.delete.insert(*id);
                        plan.stats.bump(c);
                        if let Some(s) = site.index() {
                            *plan.site_elides.entry(s as u32).or_insert(0) += 1;
                        }
                    }
                    Decision::AlwaysFails(message) => {
                        if let Some(s) = site.index() {
                            plan.site_keeps
                                .insert(s as u32, format!("provably always fails: {message}"));
                        }
                        plan.failures.push(StaticFailure {
                            func: func.name.clone(),
                            check: c.name(),
                            message,
                            span: *span,
                        });
                    }
                }
            }
            analysis.transfer(*id, instr, &mut fact);
        }
    }
    plan
}

enum Decision {
    Keep,
    Elide,
    AlwaysFails(String),
}

fn decide(a: &ElimAnalysis<'_>, func: &Function, c: &Check, fact: &Facts) -> Decision {
    match c {
        Check::Null { ptr } => {
            let stripped = strip_casts(ptr);
            if matches!(
                stripped,
                Exp::AddrOf(..) | Exp::StartOf(..) | Exp::FnAddr(..)
            ) {
                // The address of a variable or function is never null.
                return Decision::Elide;
            }
            if let Some(p) = a.stripped_place(ptr) {
                if fact.nonnull.contains(&p) {
                    return Decision::Elide;
                }
                if fact.null.contains(&p) {
                    return Decision::AlwaysFails(format!(
                        "dereference of `{}`, which is null on every path here",
                        place_name(a, func, p)
                    ));
                }
            }
            Decision::Keep
        }
        Check::SeqBounds { ptr, access_size } | Check::SeqToSafe { ptr, access_size } => {
            match a.direct_place(ptr) {
                Some(p) if fact.bounds.get(&p).is_some_and(|v| v >= access_size) => Decision::Elide,
                _ => Decision::Keep,
            }
        }
        Check::WildBounds { ptr, access_size } => match a.direct_place(ptr) {
            Some(p) if fact.wild_bounds.get(&p).is_some_and(|v| v >= access_size) => {
                Decision::Elide
            }
            _ => Decision::Keep,
        },
        Check::WildTag { ptr } => match a.direct_place(ptr) {
            Some(p) if fact.wild_tag.contains(&p) => Decision::Elide,
            _ => Decision::Keep,
        },
        Check::Rtti { ptr, target_node } => match a.stripped_place(ptr) {
            Some(p) if fact.rtti.get(&p) == Some(target_node) => Decision::Elide,
            _ => Decision::Keep,
        },
        Check::IndexBound { index, len } => {
            if let Exp::Const(Const::Int(v, _), _) = index {
                if *v < 0 || *v as u128 >= *len as u128 {
                    return Decision::AlwaysFails(format!(
                        "index {v} is always out of bounds for an array of length {len}"
                    ));
                }
                // A constant in-bounds index cannot fail.
                return Decision::Elide;
            }
            if let Some(p) = a.direct_place(index) {
                if let Some(r) = fact.ranges.get(&p) {
                    let len = *len as i128;
                    if r.within(0, len - 1) {
                        // The interval proves every value in bounds.
                        return Decision::Elide;
                    }
                    if r.hi < 0 || r.lo >= len {
                        return Decision::AlwaysFails(format!(
                            "index is always out of bounds for an array of length {len}: its value lies in [{}, {}]",
                            r.lo, r.hi
                        ));
                    }
                }
            }
            Decision::Keep
        }
        Check::Temporal { ptr } => match a.stripped_place(ptr) {
            Some(p) if fact.temporal.contains(&p) => Decision::Elide,
            _ => Decision::Keep,
        },
        Check::NoStackEscape { .. } => Decision::Keep,
        // Loop-optimizer artifacts: placed after this pass ran; never
        // rejudged.
        Check::Probe { .. } | Check::Guarded { .. } | Check::GuardReset { .. } => Decision::Keep,
    }
}

/// Explains why [`decide`] returned [`Decision::Keep`] for `c` under `fact`
/// — the profiler's "hot site the optimizer could not elide" annotation.
/// Mirrors the `Keep` paths of [`decide`] exactly.
fn keep_reason(a: &ElimAnalysis<'_>, c: &Check, fact: &Facts) -> String {
    const UNTRACKED: &str =
        "pointer is not a trackable scalar (address taken, aggregate field, or loaded through memory)";
    match c {
        Check::Null { ptr } => match a.stripped_place(ptr) {
            None => UNTRACKED.into(),
            Some(_) => "pointer not proven non-null on every incoming path".into(),
        },
        Check::SeqBounds { ptr, access_size } | Check::SeqToSafe { ptr, access_size } => {
            match a.direct_place(ptr) {
                None => UNTRACKED.into(),
                Some(p) => match fact.bounds.get(&p) {
                    Some(v) => format!(
                        "an earlier bounds check only verified a {v}-byte access; this one needs {access_size} bytes"
                    ),
                    None => "no dominating bounds check on every incoming path".into(),
                },
            }
        }
        Check::WildBounds { ptr, access_size } => match a.direct_place(ptr) {
            None => UNTRACKED.into(),
            Some(p) => match fact.wild_bounds.get(&p) {
                Some(v) => format!(
                    "an earlier wild-bounds check only verified a {v}-byte access; this one needs {access_size} bytes"
                ),
                None => "no dominating wild-bounds check on every incoming path".into(),
            },
        },
        Check::WildTag { ptr } => match a.direct_place(ptr) {
            None => UNTRACKED.into(),
            Some(_) => "no dominating tag check on every incoming path (memory writes invalidate tag facts)".into(),
        },
        Check::Rtti { ptr, .. } => match a.stripped_place(ptr) {
            None => UNTRACKED.into(),
            Some(_) => "no dominating downcast to the same target on every incoming path".into(),
        },
        Check::IndexBound { index, len } => match a.direct_place(index) {
            None => "index is not a compile-time constant".into(),
            Some(p) => match fact.ranges.get(&p) {
                Some(r) => format!(
                    "index is not a compile-time constant and its value range [{}, {}] is not contained in [0, {}]",
                    r.lo,
                    r.hi,
                    *len as i128 - 1
                ),
                None => "index is not a compile-time constant and its value range is unknown".into(),
            },
        },
        Check::Temporal { ptr } => match a.stripped_place(ptr) {
            None => UNTRACKED.into(),
            Some(_) => {
                "no dominating temporal check on every incoming path (an intervening call may free the allocation)"
                    .into()
            }
        },
        Check::NoStackEscape { .. } => {
            "stack-escape checks depend on the run-time value stored and are never elided".into()
        }
        Check::Probe { slot, .. } => format!(
            "loop-optimizer probe for guard slot {slot} (runs at most once per loop entry)"
        ),
        Check::Guarded { slot, .. } => format!(
            "residual of a hoisted/widened check (skipped while guard slot {slot} holds)"
        ),
        Check::GuardReset { .. } => "loop-optimizer guard reset (no run-time cost)".into(),
    }
}

fn place_name(a: &ElimAnalysis<'_>, func: &Function, p: Place) -> String {
    match p {
        Place::Local(l) => func.locals[l as usize].name.clone(),
        Place::Global(g) => a.prog.globals[g as usize].name.clone(),
    }
}

/// Locals of `func` whose address is taken somewhere in the body — the
/// escape pre-pass shared by the eliminator and the loop optimizer.
pub(crate) fn aliased_locals(func: &Function) -> HashSet<u32> {
    let mut taken = HashSet::new();
    visit_stmts(&func.body, &mut |e| {
        mark_addr_taken(e, &mut taken, &mut HashSet::new())
    });
    taken
}

/// Globals whose address is never taken anywhere in the program — the
/// whole-program input of the per-function passes. Checks only clone
/// expressions that already exist, so this set is identical whether it is
/// computed before or after instrumentation.
pub fn tracked_globals(prog: &Program) -> HashSet<u32> {
    let mut taken_locals = HashSet::new();
    let mut taken = HashSet::new();
    for f in &prog.functions {
        visit_stmts(&f.body, &mut |e| {
            mark_addr_taken(e, &mut taken_locals, &mut taken)
        });
    }
    for g in &prog.globals {
        if let Some(init) = &g.init {
            visit_init(init, &mut |e| {
                mark_addr_taken(e, &mut taken_locals, &mut taken)
            });
        }
    }
    (0..prog.globals.len() as u32)
        .filter(|g| !taken.contains(g))
        .collect()
}

fn mark_addr_taken(e: &Exp, locals: &mut HashSet<u32>, globals: &mut HashSet<u32>) {
    if let Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) = e {
        match &lv.base {
            LvBase::Local(l) => {
                locals.insert(l.0);
            }
            LvBase::Global(g) => {
                globals.insert(g.0);
            }
            LvBase::Deref(_) => {}
        }
    }
}

/// Calls `f` on every expression node (including subexpressions) in `body`.
fn visit_stmts(body: &[Stmt], f: &mut impl FnMut(&Exp)) {
    for s in body {
        match s {
            Stmt::Instr(is) => {
                for i in is {
                    match i {
                        Instr::Set(lv, e, _) => {
                            visit_lval(lv, f);
                            visit_exp(e, f);
                        }
                        Instr::Call(ret, callee, args, _) => {
                            if let Some(lv) = ret {
                                visit_lval(lv, f);
                            }
                            if let Callee::Ptr(e) = callee {
                                visit_exp(e, f);
                            }
                            for a in args {
                                visit_exp(a, f);
                            }
                        }
                        Instr::Check(c, _, _) => visit_check(c, f),
                    }
                }
            }
            Stmt::If(c, t, e) => {
                visit_exp(c, f);
                visit_stmts(t, f);
                visit_stmts(e, f);
            }
            Stmt::Loop(b) | Stmt::Block(b) => visit_stmts(b, f),
            Stmt::Return(Some(e)) => visit_exp(e, f),
            Stmt::Switch(e, arms) => {
                visit_exp(e, f);
                for arm in arms {
                    visit_stmts(&arm.body, f);
                }
            }
            _ => {}
        }
    }
}

/// Calls `f` on every expression inside a check, recursing through the
/// loop-optimizer wrappers.
pub(crate) fn visit_check(c: &Check, f: &mut impl FnMut(&Exp)) {
    match c {
        Check::Null { ptr }
        | Check::SeqBounds { ptr, .. }
        | Check::SeqToSafe { ptr, .. }
        | Check::WildBounds { ptr, .. }
        | Check::WildTag { ptr }
        | Check::Rtti { ptr, .. }
        | Check::Temporal { ptr } => visit_exp(ptr, f),
        Check::NoStackEscape { value } => visit_exp(value, f),
        Check::IndexBound { index, .. } => visit_exp(index, f),
        Check::Probe { inner, .. } => {
            for c in inner {
                visit_check(c, f);
            }
        }
        Check::Guarded { inner, .. } => visit_check(inner, f),
        Check::GuardReset { .. } => {}
    }
}

fn visit_exp(e: &Exp, f: &mut impl FnMut(&Exp)) {
    f(e);
    match e {
        Exp::Load(lv, _) | Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => visit_lval(lv, f),
        Exp::Unop(_, x, _) | Exp::Cast(_, x, _) => visit_exp(x, f),
        Exp::Binop(_, x, y, _) => {
            visit_exp(x, f);
            visit_exp(y, f);
        }
        _ => {}
    }
}

fn visit_lval(lv: &Lval, f: &mut impl FnMut(&Exp)) {
    if let LvBase::Deref(e) = &lv.base {
        visit_exp(e, f);
    }
    for off in &lv.offsets {
        if let Offset::Index(e) = off {
            visit_exp(e, f);
        }
    }
}

fn visit_init(init: &Init, f: &mut impl FnMut(&Exp)) {
    match init {
        Init::Scalar(e) => visit_exp(e, f),
        Init::Compound(items) => {
            for i in items {
                visit_init(i, f);
            }
        }
        Init::String(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_cil::ir::{Check, Instr, Stmt};

    fn lower(src: &str) -> Program {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        ccured_cil::lower_translation_unit(&tu).expect("lower")
    }

    /// `Load` of a named local of function 0.
    fn load(prog: &Program, name: &str) -> Exp {
        let f = &prog.functions[0];
        let (i, l) = f
            .locals
            .iter()
            .enumerate()
            .find(|(_, l)| l.name == name)
            .expect("local");
        Exp::Load(Box::new(Lval::local(LocalId(i as u32))), l.ty)
    }

    fn null_check(prog: &Program, name: &str) -> Instr {
        Instr::Check(
            Check::Null {
                ptr: load(prog, name),
            },
            Span::DUMMY,
            SiteId::NONE,
        )
    }

    fn count_checks(prog: &Program) -> usize {
        let mut n = 0;
        for f in &prog.functions {
            visit_checks(&f.body, &mut n);
        }
        n
    }

    fn visit_checks(body: &[Stmt], n: &mut usize) {
        for s in body {
            match s {
                Stmt::Instr(is) => {
                    *n += is.iter().filter(|i| matches!(i, Instr::Check(..))).count()
                }
                Stmt::If(_, t, e) => {
                    visit_checks(t, n);
                    visit_checks(e, n);
                }
                Stmt::Loop(b) | Stmt::Block(b) => visit_checks(b, n),
                Stmt::Switch(_, arms) => {
                    for arm in arms {
                        visit_checks(&arm.body, n);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn dominated_null_check_is_elided() {
        let mut prog = lower("int f(int *p) { return 0; }");
        let c1 = null_check(&prog, "p");
        let c2 = null_check(&prog, "p");
        prog.functions[0].body.insert(0, Stmt::Instr(vec![c1, c2]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "the second identical check is redundant");
        assert_eq!(count_checks(&prog), 1);
        assert!(r.failures.is_empty());
    }

    fn temporal_check(prog: &Program, name: &str) -> Instr {
        Instr::Check(
            Check::Temporal {
                ptr: load(prog, name),
            },
            Span::DUMMY,
            SiteId::NONE,
        )
    }

    #[test]
    fn dominated_temporal_check_is_elided() {
        let mut prog = lower("int f(int *p) { return 0; }");
        let c1 = temporal_check(&prog, "p");
        let c2 = temporal_check(&prog, "p");
        prog.functions[0].body.insert(0, Stmt::Instr(vec![c1, c2]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.temporal, 1, "back-to-back key checks are redundant");
        assert_eq!(count_checks(&prog), 1);
    }

    #[test]
    fn any_call_kills_the_temporal_fact_but_not_nullness() {
        // temporal+null before a call, temporal+null after: the callee may
        // `free` p's allocation (temporal check survives elimination), but
        // it cannot change what the unaliased local p points to (the second
        // null check is still dominated).
        let mut prog = lower("extern int g(void);\nint f(int *p, int x) { x = g(); return x; }");
        let call = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Call(..)))),
            )
            .expect("call stmt");
        let before = Stmt::Instr(vec![temporal_check(&prog, "p"), null_check(&prog, "p")]);
        let after = Stmt::Instr(vec![temporal_check(&prog, "p"), null_check(&prog, "p")]);
        prog.functions[0].body.insert(call + 1, after);
        prog.functions[0].body.insert(call, before);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.temporal, 0, "the callee may free p's allocation");
        assert_eq!(r.stats.null, 1, "nullness of an unaliased local survives");
        assert_eq!(count_checks(&prog), 3);
    }

    #[test]
    fn memory_write_spares_unaliased_temporal_fact() {
        // A store through some *other* pointer cannot free an allocation,
        // and cannot retarget the unaliased local p — the second key check
        // stays redundant across `*q = 1`.
        let mut prog = lower("int f(int *p, int *q) { *q = 1; return 0; }");
        let store = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(lv, ..) if !matches!(lv.base, ccured_cil::ir::LvBase::Local(_))))),
            )
            .expect("indirect store stmt");
        let before = Stmt::Instr(vec![temporal_check(&prog, "p")]);
        let after = Stmt::Instr(vec![temporal_check(&prog, "p")]);
        prog.functions[0].body.insert(store + 1, after);
        prog.functions[0].body.insert(store, before);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.temporal, 1, "a plain store frees nothing");
        assert_eq!(count_checks(&prog), 1);
    }

    #[test]
    fn check_after_both_armed_if_is_elided() {
        let mut prog = lower("int f(int *p, int c) { return 0; }");
        let cond = load(&prog, "c");
        let both = Stmt::If(
            cond.clone(),
            vec![Stmt::Instr(vec![null_check(&prog, "p")])],
            vec![Stmt::Instr(vec![null_check(&prog, "p")])],
        );
        let after = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.splice(0..0, [both, after]);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "only the join check is dominated");
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn check_after_one_armed_if_is_kept() {
        let mut prog = lower("int f(int *p, int c) { return 0; }");
        let cond = load(&prog, "c");
        let one = Stmt::If(
            cond,
            vec![Stmt::Instr(vec![null_check(&prog, "p")])],
            vec![],
        );
        let after = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.splice(0..0, [one, after]);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 0, "the fact does not hold on the else path");
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn reassignment_kills_the_fact() {
        let mut prog = lower("int f(int *p, int *q) { p = q; return 0; }");
        // check p; p = q; check p  — the second check must survive.
        let assign = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(..)))),
            )
            .expect("assignment stmt");
        let c1 = Stmt::Instr(vec![null_check(&prog, "p")]);
        let c2 = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.insert(assign + 1, c2);
        prog.functions[0].body.insert(assign, c1);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 0);
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn copy_propagates_nonnull() {
        let mut prog = lower("int f(int *p, int *q) { q = p; return 0; }");
        // check p; q = p; check q  — q inherits p's fact.
        let assign = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(..)))),
            )
            .expect("assignment stmt");
        let c1 = Stmt::Instr(vec![null_check(&prog, "p")]);
        let c2 = Stmt::Instr(vec![null_check(&prog, "q")]);
        prog.functions[0].body.insert(assign + 1, c2);
        prog.functions[0].body.insert(assign, c1);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "q = p transfers p's nonnull fact");
        assert_eq!(count_checks(&prog), 1);
    }

    #[test]
    fn seq_bounds_elided_only_up_to_verified_size() {
        let mut prog = lower("int f(int *p) { return 0; }");
        let mk = |prog: &Program, size| {
            Instr::Check(
                Check::SeqBounds {
                    ptr: load(prog, "p"),
                    access_size: size,
                },
                Span::DUMMY,
                SiteId::NONE,
            )
        };
        let c8 = mk(&prog, 8);
        let c4 = mk(&prog, 4);
        let c16 = mk(&prog, 16);
        prog.functions[0]
            .body
            .insert(0, Stmt::Instr(vec![c8, c4, c16]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(
            r.stats.seq_bounds, 1,
            "only the smaller re-check is covered"
        );
        assert_eq!(count_checks(&prog), 2);
    }

    #[test]
    fn must_null_deref_is_a_static_failure() {
        let mut prog = lower("int f(void) { int *p; p = 0; return 0; }");
        let assign = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(..)))),
            )
            .expect("assignment stmt");
        let c = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.insert(assign + 1, c);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].message.contains("null on every path"));
        assert_eq!(count_checks(&prog), 1, "the failing check is kept");
    }

    #[test]
    fn constant_oob_index_is_a_static_failure() {
        let mut prog = lower("int f(int i) { return 0; }");
        let idx = load(&prog, "i");
        let int_ty = idx.ty();
        let c = Instr::Check(
            Check::IndexBound {
                index: Exp::int(7, ccured_cil::types::IntKind::Int, int_ty),
                len: 4,
            },
            Span::DUMMY,
            SiteId::NONE,
        );
        prog.functions[0].body.insert(0, Stmt::Instr(vec![c]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].message.contains("out of bounds"));
    }

    #[test]
    fn call_preserves_local_facts_but_kills_globals() {
        let mut prog = lower(
            "int *gp;\n\
             void g(void) { }\n\
             int f(int *p) { g(); return 0; }",
        );
        // f is function index 1 here; rebuild helpers against it.
        let fidx = prog.find_function("f").unwrap().idx();
        let (pi, pl) = prog.functions[fidx]
            .locals
            .iter()
            .enumerate()
            .find(|(_, l)| l.name == "p")
            .unwrap();
        let pload = Exp::Load(Box::new(Lval::local(LocalId(pi as u32))), pl.ty);
        let gid = prog.find_global("gp").unwrap();
        let gty = prog.globals[gid.idx()].ty;
        let gload = Exp::Load(Box::new(Lval::global(gid)), gty);
        let chk = |e: &Exp| Instr::Check(Check::Null { ptr: e.clone() }, Span::DUMMY, SiteId::NONE);
        let call = prog.functions[fidx]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Call(..)))),
            )
            .expect("call stmt");
        prog.functions[fidx]
            .body
            .insert(call + 1, Stmt::Instr(vec![chk(&pload), chk(&gload)]));
        prog.functions[fidx]
            .body
            .insert(call, Stmt::Instr(vec![chk(&pload), chk(&gload)]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "p's fact survives the call, gp's does not");
    }

    #[test]
    fn address_of_is_never_null() {
        let mut prog = lower("int f(void) { int x; x = 1; return x; }");
        let f = &prog.functions[0];
        let (xi, xl) = f
            .locals
            .iter()
            .enumerate()
            .find(|(_, l)| l.name == "x")
            .unwrap();
        let ptr_ty = xl.ty; // type is irrelevant to the decision
        let c = Instr::Check(
            Check::Null {
                ptr: Exp::AddrOf(Box::new(Lval::local(LocalId(xi as u32))), ptr_ty),
            },
            Span::DUMMY,
            SiteId::NONE,
        );
        prog.functions[0].body.insert(0, Stmt::Instr(vec![c]));
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1);
        assert_eq!(count_checks(&prog), 0);
    }

    #[test]
    fn address_taken_local_is_tracked_between_memory_writes() {
        // &p escapes, but between the two checks nothing writes memory, so
        // the second check is still provably redundant (the escape pre-pass
        // tracks p and kills it only at stores through memory and calls).
        let mut prog = lower("int f(int *p) { int **pp; pp = &p; return 0; }");
        let c1 = Stmt::Instr(vec![null_check(&prog, "p")]);
        let c2 = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.splice(0..0, [c1, c2]);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 1, "no write can intervene: still redundant");
        assert_eq!(count_checks(&prog), 1);
    }

    #[test]
    fn write_through_alias_invalidates_stale_fact() {
        // check p; *pp = q (pp aliases p); check p — the second check must
        // survive: the store through pp may have overwritten p with q,
        // whose nullness is unknown. This is the satellite regression for
        // the old `kill_memory_write` that kept facts for *all* locals.
        let mut prog = lower(
            "int f(int *p, int *q) {\n\
               int **pp;\n\
               pp = &p;\n\
               *pp = q;\n\
               return 0;\n\
             }",
        );
        // Find the store-through-pp instruction (a Set whose destination
        // derefs).
        let store = prog.functions[0]
            .body
            .iter()
            .position(|s| {
                matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(
                    i,
                    Instr::Set(lv, _, _) if matches!(lv.base, LvBase::Deref(_))
                )))
            })
            .expect("store through alias");
        let c2 = Stmt::Instr(vec![null_check(&prog, "p")]);
        let c1 = Stmt::Instr(vec![null_check(&prog, "p")]);
        prog.functions[0].body.insert(store + 1, c2);
        prog.functions[0].body.insert(store, c1);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.null, 0, "the aliasing store kills the nonnull fact");
        assert_eq!(count_checks(&prog), 2);
    }

    fn index_check(prog: &Program, name: &str, len: u64) -> Instr {
        Instr::Check(
            Check::IndexBound {
                index: load(prog, name),
                len,
            },
            Span::DUMMY,
            SiteId::NONE,
        )
    }

    #[test]
    fn range_facts_survive_arithmetic() {
        // i = 1; i = i + 2; a[i] with len 4: the interval [3, 3] proves the
        // index in bounds even though i is not a constant expression at the
        // check.
        let mut prog = lower("int f(void) { int i; i = 1; i = i + 2; return i; }");
        let c = Stmt::Instr(vec![index_check(&prog, "i", 4)]);
        let last_set = prog.functions[0]
            .body
            .iter()
            .rposition(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(..)))),
            )
            .expect("assignment");
        prog.functions[0].body.insert(last_set + 1, c);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.stats.index_bound, 1, "interval [3,3] is within [0,3]");
        assert!(r.failures.is_empty());
    }

    #[test]
    fn branch_refinement_bounds_the_index() {
        // f(int i): nothing is known about i, but inside
        // `if (0 <= i) if (i < 4) ...` the branch edges pin i to [0, 3].
        let mut prog = lower(
            "int f(int i) {\n\
               if (0 <= i) { if (i < 4) { i = i + 0; } }\n\
               return i;\n\
             }",
        );
        let chk = index_check(&prog, "i", 4);
        fn push_into_innermost_if(body: &mut [Stmt], chk: &Instr) -> bool {
            for s in body {
                if let Stmt::If(_, t, _) = s {
                    if push_into_innermost_if(t, chk) {
                        return true;
                    }
                    t.insert(0, Stmt::Instr(vec![chk.clone()]));
                    return true;
                }
                if let Stmt::Block(b) = s {
                    if push_into_innermost_if(b, chk) {
                        return true;
                    }
                }
            }
            false
        }
        assert!(push_into_innermost_if(&mut prog.functions[0].body, &chk));
        let r = eliminate_checks(&mut prog);
        assert_eq!(
            r.stats.index_bound, 1,
            "both guarding branches prove 0 <= i < 4"
        );
    }

    #[test]
    fn range_disjoint_from_array_is_a_static_failure() {
        let mut prog = lower("int f(void) { int i; i = 9; return i; }");
        let c = Stmt::Instr(vec![index_check(&prog, "i", 4)]);
        let set = prog.functions[0]
            .body
            .iter()
            .position(
                |s| matches!(s, Stmt::Instr(is) if is.iter().any(|i| matches!(i, Instr::Set(..)))),
            )
            .expect("assignment");
        prog.functions[0].body.insert(set + 1, c);
        let r = eliminate_checks(&mut prog);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].message.contains("out of bounds"));
        assert_eq!(count_checks(&prog), 1, "the failing check is kept");
    }

    #[test]
    fn loop_body_check_of_loop_invariant_pointer_is_kept_first_elided_after() {
        // check p inside a loop: the back edge carries the fact, so the
        // in-loop check is elided only if it also holds on loop entry.
        let mut prog =
            lower("int f(int *p, int n) { int i; i = 0; while (i < n) { i = i + 1; } return 0; }");
        let pre = Stmt::Instr(vec![null_check(&prog, "p")]);
        // Insert the pre-loop check at the very start, and one inside the
        // loop body.
        let inner = null_check(&prog, "p");
        // Clippy's guard suggestion needs a mutable borrow in the pattern
        // guard, which does not borrow-check.
        #[allow(clippy::collapsible_match)]
        fn push_into_loop(body: &mut [Stmt], inner: &Instr) -> bool {
            for s in body {
                match s {
                    Stmt::Loop(b) => {
                        b.insert(0, Stmt::Instr(vec![inner.clone()]));
                        return true;
                    }
                    Stmt::Block(b) | Stmt::If(_, b, _) => {
                        if push_into_loop(b, inner) {
                            return true;
                        }
                    }
                    _ => {}
                }
            }
            false
        }
        assert!(push_into_loop(&mut prog.functions[0].body, &inner));
        prog.functions[0].body.insert(0, pre);
        let r = eliminate_checks(&mut prog);
        assert_eq!(
            r.stats.null, 1,
            "the in-loop check is dominated by the pre-loop check"
        );
    }
}
