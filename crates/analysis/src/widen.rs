//! SEQ bounds-check widening for monotone strided loops.
//!
//! For the canonical counted-loop shape the frontend lowers `for`/`while`
//! loops into, the per-iteration SEQ bounds check `CHECK_SEQ(b + i)` is
//! replaced by a [`Check::Probe`] that runs exactly twice' worth of checks
//! on the first iteration — the original check (at the entry index) plus a
//! check of the *last* index the loop can reach — and latches a guard that
//! skips the per-iteration residual for the rest of the trip.
//!
//! # The matched shape
//!
//! ```text
//! loop {
//!   if (i < bound) {} else { break; }   // spine[0]: the guard
//!   ... straight-line instrs, no writes to i ...
//!   CHECK_SEQ(base + i, size)           // the widened check
//!   ...
//!   i = i + 1                           // the only write to i anywhere
//! }
//! ```
//!
//! with `i` an unaliased local, `base` loop-invariant, and `bound` either
//! an integer constant or a direct load of an unaliased local the subtree
//! never assigns. Casts are looked through only when value-preserving
//! (see [`crate::loops::strip_preserving_casts`]).
//!
//! # Soundness
//!
//! Let `i₀` be `i`'s value when the probe runs (the first iteration that
//! reaches the check). The probe verifies `base + i₀` (the original check,
//! so the entry offset is in bounds) and `base + (bound − 1)` (the last
//! index the guard can ever let through). Because the subtree's only write
//! to `i` is a single `+1` step and every path to the access re-passes the
//! `i < bound` guard, every later access index lies in `[i₀, bound − 1]`.
//! A SEQ region is one contiguous `[b, e)` interval and the offset is
//! monotone in the index, so both endpoints in bounds implies every
//! intermediate index is in bounds. If either endpoint check fails the
//! guard latches "fail" and the residual runs per-iteration, aborting at
//! the first actually-out-of-bounds index with the original site blame —
//! a conservatively-widened probe can never abort a program the
//! unoptimized one would not.
//!
//! `bound − 1` cannot wrap: the subtraction is evaluated at `bound`'s own
//! integer type, and it underflows only when `bound` is the type's
//! minimum — but then `i < bound` is unsatisfiable, the body never runs,
//! and the probe (which sits *inside* the loop) never executes.
//!
//! The prefix between the guard and the check must be straight-line
//! instructions: a label there could let an in-loop goto re-enter between
//! guard and access without re-checking `i < bound`.

use crate::loops::{
    direct_local_load, exp_invariant, guard_check_at, strip_preserving_casts, FnCx, OptAction,
    SubtreeInfo,
};
use ccured_cil::ir::{BinOp, Check, Const, Exp, Instr, LvBase, Stmt};
use ccured_cil::types::Type;

/// Tries to widen the first matching per-iteration SEQ bounds check of
/// this loop. Returns the allocated guard slot on success.
pub(crate) fn try_widen(cx: &mut FnCx, body: &mut [Stmt], info: &SubtreeInfo) -> Option<u32> {
    // spine[0]: `if (i < bound) {} else { break; }`.
    let Some(Stmt::If(cond, then_b, else_b)) = body.first() else {
        return None;
    };
    if !then_b.is_empty() || !matches!(else_b.as_slice(), [Stmt::Break]) {
        return None;
    }
    let Exp::Binop(BinOp::Lt, lhs, bound, _) = cond else {
        return None;
    };
    let (idx_local, _) = direct_local_load(cx.types, lhs)?;
    if cx.aliased.contains(&idx_local) {
        return None;
    }
    let bound = strip_preserving_casts(cx.types, bound);
    let bound_ok = match bound {
        Exp::Const(Const::Int(..), _) => true,
        _ => matches!(direct_local_load(cx.types, bound),
            Some((l, _)) if !info.assigned.contains(&l) && !cx.aliased.contains(&l)),
    };
    if !bound_ok {
        return None;
    }
    let Type::Int(bound_kind) = cx.types.get(bound.ty()) else {
        return None;
    };
    let bound_kind = *bound_kind;

    // The single-increment rule: exactly one write to i in the whole
    // subtree, and it is the canonical `i = i + 1` step.
    if !single_unit_increment(cx, body, idx_local) {
        return None;
    }

    // Find the check along the straight-line prefix after the guard.
    let (pos, at, base, ptr_ty, access_size) = find_check(cx, body, info, idx_local)?;

    // Build the endpoint check: `base + (bound - 1)` at the original
    // access size. The subtraction happens at `bound`'s own type (wrap
    // analyzed in the module docs).
    let endpoint_idx = Exp::Binop(
        BinOp::Sub,
        Box::new(bound.clone()),
        Box::new(Exp::int(1, bound_kind, bound.ty())),
        bound.ty(),
    );
    let endpoint = Check::SeqBounds {
        ptr: Exp::Binop(
            BinOp::PlusPI,
            Box::new(base),
            Box::new(endpoint_idx),
            ptr_ty,
        ),
        access_size,
    };

    let Stmt::Instr(instrs) = &mut body[pos] else {
        unreachable!("find_check only returns Instr positions");
    };
    let Instr::Check(original, _, site) = &instrs[at] else {
        unreachable!("find_check only returns check instructions");
    };
    let (site, original) = (*site, original.clone());
    let slot = cx.alloc_slot();
    guard_check_at(instrs, at, slot, vec![original, endpoint]);
    cx.record(site, OptAction::Widened);
    Some(slot)
}

/// Locates the first `CHECK_SEQ(base + i)` reachable from the guard
/// through straight-line instructions with no intervening write to `i`.
/// Returns `(spine position, instr index, base clone, ptr type, size)`.
fn find_check(
    cx: &FnCx,
    body: &[Stmt],
    info: &SubtreeInfo,
    idx_local: u32,
) -> Option<(usize, usize, Exp, ccured_cil::types::TypeId, u64)> {
    for (pos, s) in body.iter().enumerate().skip(1) {
        let Stmt::Instr(instrs) = s else {
            // Anything else (a label, a branch) ends the provably
            // straight-line prefix.
            return None;
        };
        for (at, instr) in instrs.iter().enumerate() {
            match instr {
                Instr::Set(lv, _, _) | Instr::Call(Some(lv), _, _, _) if matches!(&lv.base, LvBase::Local(l) if l.0 == idx_local) =>
                {
                    // The increment (or another write) precedes any
                    // matchable check on this path.
                    return None;
                }
                Instr::Check(Check::SeqBounds { ptr, access_size }, _, _) => {
                    let Exp::Binop(BinOp::PlusPI, base, idx, ptr_ty) =
                        strip_preserving_casts(cx.types, ptr)
                    else {
                        continue;
                    };
                    let matches_idx =
                        matches!(direct_local_load(cx.types, idx), Some((l, _)) if l == idx_local);
                    if matches_idx && exp_invariant(cx, info, base) {
                        return Some((pos, at, (**base).clone(), *ptr_ty, *access_size));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Does the subtree write `i` exactly once, via the canonical
/// `i = i + 1`?
fn single_unit_increment(cx: &FnCx, body: &[Stmt], idx_local: u32) -> bool {
    let mut writes = Vec::new();
    collect_writes(body, idx_local, &mut writes);
    let [Some(e)] = writes.as_slice() else {
        return false;
    };
    let Exp::Binop(BinOp::Add, a, b, _) = strip_preserving_casts(cx.types, e) else {
        return false;
    };
    matches!(direct_local_load(cx.types, a), Some((l, _)) if l == idx_local)
        && matches!(
            strip_preserving_casts(cx.types, b),
            Exp::Const(Const::Int(1, _), _)
        )
}

/// Collects the RHS of every write to `idx_local` in the subtree
/// (`None` for call results, which are never the canonical step).
fn collect_writes<'a>(body: &'a [Stmt], idx_local: u32, out: &mut Vec<Option<&'a Exp>>) {
    for s in body {
        match s {
            Stmt::Instr(instrs) => {
                for i in instrs {
                    match i {
                        Instr::Set(lv, e, _) if matches!(&lv.base, LvBase::Local(l) if l.0 == idx_local) =>
                        {
                            out.push(Some(e));
                        }
                        Instr::Call(Some(lv), _, _, _) if matches!(&lv.base, LvBase::Local(l) if l.0 == idx_local) =>
                        {
                            out.push(None);
                        }
                        _ => {}
                    }
                }
            }
            Stmt::If(_, t, e) => {
                collect_writes(t, idx_local, out);
                collect_writes(e, idx_local, out);
            }
            Stmt::Loop(b) | Stmt::Block(b) => collect_writes(b, idx_local, out),
            Stmt::Switch(_, arms) => {
                for arm in arms {
                    collect_writes(&arm.body, idx_local, out);
                }
            }
            _ => {}
        }
    }
}
