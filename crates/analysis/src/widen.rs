//! SEQ bounds-check widening for monotone strided loops.
//!
//! For the counted-loop shapes the frontend lowers `for`/`while` loops
//! into, the per-iteration SEQ bounds check `CHECK_SEQ(b + i)` is replaced
//! by a [`Check::Probe`] that runs exactly twice' worth of checks on the
//! first iteration — the original check (at the entry index) plus a check
//! of the *extreme* index the guard can ever admit — and latches a guard
//! that skips the per-iteration residual for the rest of the trip.
//!
//! The pass is direction- and stride-agnostic: the guard and the step are
//! canonicalized into an induction form `(direction, stride, extreme)`
//! first, and the same two-endpoint probe argument applies to every form.
//!
//! # The matched shapes
//!
//! ```text
//! loop {
//!   if (i REL bound) {} else { break; }  // spine[0]: the guard
//!   ... straight-line instrs, no writes to i ...
//!   CHECK_SEQ(base + i, size)            // the widened check
//!   ...
//!   i = i ± c                            // the only write to i anywhere
//! }
//! ```
//!
//! * `REL` is `<` or `<=` (an up-counting loop) or `>` or `>=` (a
//!   down-counting loop); the index may sit on either side (`i < n` and
//!   `n > i` canonicalize identically).
//! * the step is a single constant stride `c >= 1` whose direction agrees
//!   with the guard (`+c` under `<`/`<=`, `-c` under `>`/`>=`); steps
//!   written as `i = i + (-c)` or `i = c + i` canonicalize too.
//! * `i` is an unaliased local, `base` is loop-invariant, and `bound` is
//!   either an integer constant or a direct load of an unaliased local the
//!   subtree never assigns. Casts are looked through only when
//!   value-preserving (see [`crate::loops::strip_preserving_casts`]).
//!
//! # Soundness
//!
//! Let `i₀` be `i`'s value when the probe runs (the first iteration that
//! reaches the check), and let `E` be the extreme index the guard can
//! admit: `bound − 1` under `<`, `bound` under `<=` or `>=`, `bound + 1`
//! under `>`. The probe verifies `base + i₀` (the original check, so the
//! entry offset is in bounds) and `base + E`. Because the subtree's only
//! write to `i` is the single monotone step and every path to the access
//! re-passes the guard, every later access index lies between `i₀` and
//! `E` — for any stride: a stride-`c` orbit visits a subset of the indices
//! the stride-1 orbit would, never more. A SEQ region is one contiguous
//! `[b, e)` interval and the offset is monotone in the index, so both
//! endpoints in bounds implies every intermediate index is in bounds. If
//! either endpoint check fails the guard latches "fail" and the residual
//! runs per-iteration, aborting at the first actually-out-of-bounds index
//! with the original site blame — a conservatively-widened probe can never
//! abort a program the unoptimized one would not.
//!
//! # Wrap analysis
//!
//! Two distinct wraps are reasoned about:
//!
//! * **The endpoint expression.** `bound − 1` underflows only when `bound`
//!   is its type's minimum and `bound + 1` overflows only at the maximum —
//!   but then the guard (`i < min` resp. `i > max`) is unsatisfiable, the
//!   body never runs, and the probe (which sits *inside* the loop) never
//!   executes. The `<=`/`>=` endpoints involve no arithmetic at all. When
//!   a *variable* bound takes the extreme value at run time, the wrapped
//!   endpoint at worst makes the probe fail, which only disables the
//!   optimization.
//! * **The induction variable.** If `i ± c` can wrap past its type's
//!   range, a guard-passing value could jump to the far end of the index
//!   space and reach offsets the two endpoints never covered. The pass
//!   therefore requires a no-wrap proof:
//!   - a **signed** step type carries the standard C license: signed
//!     overflow of the induction step is undefined behavior, so the pass
//!     assumes it does not occur (the assumption every optimizing C
//!     compiler makes). A guest program that *does* overflow a signed
//!     index inside a widened loop executes under UB and may see the
//!     probe pass where the per-iteration check would have aborted.
//!   - an **unsigned** step type has defined wraparound, so the proof must
//!     be static: with `B` the bound's maximal (up) or minimal (down)
//!     possible value — its constant value, or its own type's range when
//!     variable — the pass demands `E(B) + c <= max(step type)` going up
//!     and `E(B) − c >= 0` going down. This admits the common
//!     `while (i > 0) i--` and every constant-bound loop, and rejects
//!     forms like `for (unsigned char i = 0; i <= 255; i++)` whose guard
//!     can never exit.
//!
//!   In both cases the step's result type must span exactly the index
//!   local's declared range, so the store-back normalization cannot
//!   introduce a second, unanalyzed wrap point.
//!
//! The prefix between the guard and the check must be straight-line
//! instructions: a label there could let an in-loop goto re-enter between
//! guard and access without re-checking the guard.

use crate::loops::{
    direct_local_load, exp_invariant, guard_check_at, int_bounds, strip_preserving_casts, FnCx,
    OptAction, SubtreeInfo,
};
use ccured_cil::ir::{BinOp, Check, Const, Exp, Instr, LvBase, Stmt};
use ccured_cil::types::{Type, TypeTable};

/// The integer value of `e` when it is a compile-time constant, looking
/// through casts that preserve this *specific* value: the frontend lowers
/// `unsigned i = 0; i > 0` with the literal as `(uint)(0)`, and while
/// int→uint is not value-preserving in general, it is for `0`. Each cast
/// along the chain must keep the value representable — a truncating
/// constant cast (`(unsigned char)(300)`) conservatively refuses.
fn const_int_value(types: &TypeTable, e: &Exp) -> Option<i128> {
    match e {
        Exp::Const(Const::Int(v, _), _) => Some(*v),
        Exp::Cast(_, inner, t) => {
            let v = const_int_value(types, inner)?;
            let (lo, hi) = int_bounds(types, *t)?;
            (lo <= v && v <= hi).then_some(v)
        }
        _ => None,
    }
}

/// Which way the induction variable moves.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Up,
    Down,
}

/// The canonicalized guard: index local, direction, and the offset from
/// `bound` to the extreme admissible index (`-1`, `0`, or `+1`).
struct Guard<'e> {
    idx_local: u32,
    /// The index local's declared integer range (from the guard's load).
    idx_range: (i128, i128),
    dir: Dir,
    bound: &'e Exp,
    /// `E = bound + adj`: the extreme index the guard can admit.
    adj: i128,
}

/// Tries to widen the first matching per-iteration SEQ bounds check of
/// this loop. Returns the allocated guard slot on success.
pub(crate) fn try_widen(cx: &mut FnCx, body: &mut [Stmt], info: &SubtreeInfo) -> Option<u32> {
    // spine[0]: `if (i REL bound) {} else { break; }`.
    let Some(Stmt::If(cond, then_b, else_b)) = body.first() else {
        return None;
    };
    if !then_b.is_empty() || !matches!(else_b.as_slice(), [Stmt::Break]) {
        return None;
    }
    let guard = canonical_guard(cx, cond)?;
    if cx.aliased.contains(&guard.idx_local) {
        return None;
    }
    let bound = strip_preserving_casts(cx.types, guard.bound);
    let bound_const = const_int_value(cx.types, bound);
    let bound_ok = bound_const.is_some()
        || matches!(direct_local_load(cx.types, bound),
            Some((l, _)) if !info.assigned.contains(&l) && !cx.aliased.contains(&l));
    if !bound_ok {
        return None;
    }
    let Type::Int(bound_kind) = cx.types.get(bound.ty()) else {
        return None;
    };
    let bound_kind = *bound_kind;

    // The single-step rule: exactly one write to i in the whole subtree,
    // a constant stride in the guard's direction.
    let (stride, step_signed, step_range) = induction_step(cx, body, &guard)?;

    // No-wrap proof for the induction variable (see the module docs).
    if !step_signed {
        let (bound_lo, bound_hi) = match bound_const {
            Some(v) => (v, v),
            None => int_bounds(cx.types, bound.ty())?,
        };
        // Saturating arithmetic: saturation only makes the comparison
        // fail, i.e. conservatively refuses the widening.
        let ok = match guard.dir {
            Dir::Up => bound_hi.saturating_add(guard.adj).saturating_add(stride) <= step_range.1,
            Dir::Down => bound_lo.saturating_add(guard.adj).saturating_sub(stride) >= step_range.0,
        };
        if !ok {
            return None;
        }
    }

    // Find the check along the straight-line prefix after the guard.
    let (pos, at, base, ptr_ty, access_size) = find_check(cx, body, info, guard.idx_local)?;

    // Build the endpoint check: `base + E` at the original access size,
    // with `E` the extreme admissible index. The `±1` adjustment happens
    // at `bound`'s own type (wrap analyzed in the module docs).
    let endpoint_idx = match guard.adj {
        0 => bound.clone(),
        adj => Exp::Binop(
            if adj < 0 { BinOp::Sub } else { BinOp::Add },
            Box::new(bound.clone()),
            Box::new(Exp::int(1, bound_kind, bound.ty())),
            bound.ty(),
        ),
    };
    let endpoint = Check::SeqBounds {
        ptr: Exp::Binop(
            BinOp::PlusPI,
            Box::new(base),
            Box::new(endpoint_idx),
            ptr_ty,
        ),
        access_size,
    };

    let Stmt::Instr(instrs) = &mut body[pos] else {
        unreachable!("find_check only returns Instr positions");
    };
    let Instr::Check(original, _, site) = &instrs[at] else {
        unreachable!("find_check only returns check instructions");
    };
    let (site, original) = (*site, original.clone());
    let slot = cx.alloc_slot();
    guard_check_at(instrs, at, slot, vec![original, endpoint]);
    cx.record(site, OptAction::Widened);
    Some(slot)
}

/// Canonicalizes the guard condition into index-on-the-left form, trying
/// both operand orders (`i < n` and `n > i` describe the same loop).
fn canonical_guard<'e>(cx: &FnCx, cond: &'e Exp) -> Option<Guard<'e>> {
    let Exp::Binop(op, lhs, rhs, _) = cond else {
        return None;
    };
    let forms = [(lhs, *op, rhs), (rhs, flip(*op)?, lhs)];
    for (idx_e, op, bound) in forms {
        let Some((idx_local, load)) = direct_local_load(cx.types, idx_e) else {
            continue;
        };
        let Some(idx_range) = int_bounds(cx.types, load.ty()) else {
            continue;
        };
        let (dir, adj) = match op {
            BinOp::Lt => (Dir::Up, -1),
            BinOp::Le => (Dir::Up, 0),
            BinOp::Ge => (Dir::Down, 0),
            BinOp::Gt => (Dir::Down, 1),
            _ => return None,
        };
        return Some(Guard {
            idx_local,
            idx_range,
            dir,
            bound,
            adj,
        });
    }
    None
}

/// The comparison with its operands swapped (`a REL b` == `b REL' a`).
fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

/// Locates the first `CHECK_SEQ(base + i)` reachable from the guard
/// through straight-line instructions with no intervening write to `i`.
/// Returns `(spine position, instr index, base clone, ptr type, size)`.
fn find_check(
    cx: &FnCx,
    body: &[Stmt],
    info: &SubtreeInfo,
    idx_local: u32,
) -> Option<(usize, usize, Exp, ccured_cil::types::TypeId, u64)> {
    for (pos, s) in body.iter().enumerate().skip(1) {
        let Stmt::Instr(instrs) = s else {
            // Anything else (a label, a branch) ends the provably
            // straight-line prefix.
            return None;
        };
        for (at, instr) in instrs.iter().enumerate() {
            match instr {
                Instr::Set(lv, _, _) | Instr::Call(Some(lv), _, _, _) if matches!(&lv.base, LvBase::Local(l) if l.0 == idx_local) =>
                {
                    // The increment (or another write) precedes any
                    // matchable check on this path.
                    return None;
                }
                Instr::Check(Check::SeqBounds { ptr, access_size }, _, _) => {
                    let Exp::Binop(BinOp::PlusPI, base, idx, ptr_ty) =
                        strip_preserving_casts(cx.types, ptr)
                    else {
                        continue;
                    };
                    let matches_idx =
                        matches!(direct_local_load(cx.types, idx), Some((l, _)) if l == idx_local);
                    if matches_idx && exp_invariant(cx, info, base) {
                        return Some((pos, at, (**base).clone(), *ptr_ty, *access_size));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Does the subtree write `i` exactly once, via a constant stride in the
/// guard's direction? Returns `(stride, step type is signed, step type
/// range)` with `stride >= 1`.
fn induction_step(cx: &FnCx, body: &[Stmt], guard: &Guard) -> Option<(i128, bool, (i128, i128))> {
    let mut writes = Vec::new();
    collect_writes(body, guard.idx_local, &mut writes);
    let [Some(e)] = writes.as_slice() else {
        return None;
    };
    let Exp::Binop(op, a, b, step_ty) = strip_preserving_casts(cx.types, e) else {
        return None;
    };
    // `i = i ± c` or `i = c + i`.
    let is_idx =
        |e: &Exp| matches!(direct_local_load(cx.types, e), Some((l, _)) if l == guard.idx_local);
    let c = match (op, is_idx(a), is_idx(b)) {
        (BinOp::Add | BinOp::Sub, true, _) => {
            let v = const_int_value(cx.types, b)?;
            if *op == BinOp::Sub {
                v.checked_neg()?
            } else {
                v
            }
        }
        (BinOp::Add, _, true) => const_int_value(cx.types, a)?,
        _ => return None,
    };
    let (dir, stride) = match c {
        0 => return None,
        c if c > 0 => (Dir::Up, c),
        c => (Dir::Down, c.checked_neg()?),
    };
    if dir != guard.dir {
        return None;
    }
    // The step's result type must span exactly the index local's declared
    // range: the store-back to `i` normalizes to `i`'s type, and a
    // mismatch would add a wrap point the proof above never examined.
    let step_range = int_bounds(cx.types, *step_ty)?;
    if step_range != guard.idx_range {
        return None;
    }
    let signed = match cx.types.get(*step_ty) {
        Type::Int(k) => k.is_signed(),
        _ => return None,
    };
    Some((stride, signed, step_range))
}

/// Collects the RHS of every write to `idx_local` in the subtree
/// (`None` for call results, which are never the canonical step).
fn collect_writes<'a>(body: &'a [Stmt], idx_local: u32, out: &mut Vec<Option<&'a Exp>>) {
    for s in body {
        match s {
            Stmt::Instr(instrs) => {
                for i in instrs {
                    match i {
                        Instr::Set(lv, e, _) if matches!(&lv.base, LvBase::Local(l) if l.0 == idx_local) =>
                        {
                            out.push(Some(e));
                        }
                        Instr::Call(Some(lv), _, _, _) if matches!(&lv.base, LvBase::Local(l) if l.0 == idx_local) =>
                        {
                            out.push(None);
                        }
                        _ => {}
                    }
                }
            }
            Stmt::If(_, t, e) => {
                collect_writes(t, idx_local, out);
                collect_writes(e, idx_local, out);
            }
            Stmt::Loop(b) | Stmt::Block(b) => collect_writes(b, idx_local, out),
            Stmt::Switch(_, arms) => {
                for arm in arms {
                    collect_writes(&arm.body, idx_local, out);
                }
            }
            _ => {}
        }
    }
}
