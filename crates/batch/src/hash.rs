//! Stable content hashing for cache keys and report digests.
//!
//! `std::hash` is deliberately avoided: `DefaultHasher` is documented to be
//! allowed to change between releases, and `RandomState` is seeded per
//! process — both would make on-disk cache keys meaningless. FNV-1a is
//! tiny, stable, and fast enough for whole-file hashing.

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Fixed-width lowercase hex rendering, used for cache file names.
pub fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Parses [`hex`] output back to the hash value.
///
/// Strictly the inverse of [`hex`]: exactly 16 ASCII hex digits.
/// `from_str_radix` alone would also accept a leading `+`, letting a
/// malformed cache file name like `+fffffffffffffff` pass as a key.
pub fn from_hex(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_across_calls_and_sensitive_to_content() {
        let a = fnv1a(b"int main(void) { return 0; }");
        assert_eq!(a, fnv1a(b"int main(void) { return 0; }"));
        assert_ne!(a, fnv1a(b"int main(void) { return 1; }"));
        // Known FNV-1a vector: the empty string hashes to the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn hex_round_trips() {
        for h in [0u64, 1, 0xdead_beef, u64::MAX, fnv1a(b"x")] {
            assert_eq!(from_hex(&hex(h)), Some(h));
        }
        assert_eq!(from_hex("xyz"), None);
        assert_eq!(from_hex("00"), None, "wrong width rejected");
        // Shapes from_str_radix would happily accept but hex() never emits.
        assert_eq!(from_hex("+fffffffffffffff"), None, "sign rejected");
        assert_eq!(from_hex("-fffffffffffffff"), None, "sign rejected");
        assert_eq!(from_hex("deadbeef deadbee"), None, "space rejected");
        assert_eq!(from_hex("00000000000000g0"), None, "non-hex rejected");
        assert_eq!(from_hex("ＡＢ"), None, "non-ASCII rejected");
    }
}
