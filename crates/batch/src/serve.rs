//! `ccured serve` — a fault-tolerant, long-lived cure daemon.
//!
//! A batch run pays the pool spin-up, cache open, and (on every changed
//! unit) a full cure per invocation. The daemon keeps everything
//! resident instead: a worker pool, the content-addressed whole-unit
//! cache, and — the piece batch cannot exploit — a shared
//! [`ccured::FnCache`], so a warm server re-cures only the *functions*
//! an edit touched and splices cached renderings around them,
//! byte-identical to a cold cure.
//!
//! ## Protocol
//!
//! One UTF-8 request line per reply line over a unix domain socket:
//!
//! | request            | reply (single JSON line)                        |
//! |--------------------|-------------------------------------------------|
//! | `cure <path>`      | verdict, digest, check counts, fn hit/miss      |
//! | `profile <path>`   | cure + execute, top hot check sites             |
//! | `explain <path>`   | static failures and optimizer attribution       |
//! | `status`           | lifetime counters, cache stats, worker health   |
//! | `reset`            | clears quarantine and the function cache        |
//! | `shutdown`         | acknowledges, then stops the server             |
//!
//! Every reply is **terminal**: `{"status":"ok",...}`,
//! `{"status":"error",...}`, or `{"status":"busy"}` — a client never
//! hangs on a wedged worker.
//!
//! ## Robustness model
//!
//! * **Per-request isolation** — every cure runs inside
//!   [`ccured::isolated`] under the configured wall-clock deadline
//!   ([`ccured::Curer::deadline`]); a pathological unit becomes a
//!   structured error, not a wedged worker.
//! * **Retry with backoff** — transient failures (worker panics
//!   surfaced as `Internal`, deadline overruns) are retried with capped
//!   exponential backoff; frontend and link errors are permanent and
//!   returned immediately. A timed-out cure's completed functions stay
//!   in the function cache, so the retry starts further along.
//! * **Load shedding** — when the request queue is at capacity the
//!   server answers `busy` immediately instead of queueing unboundedly.
//! * **Supervision** — a supervisor thread respawns any worker that
//!   dies outside a cure (e.g. injected faults); the in-flight
//!   request's reply channel drops, which the connection handler turns
//!   into a terminal error for that client.
//! * **Quarantine** — a unit whose requests repeatedly kill workers or
//!   fail is quarantined: further requests for it are refused with a
//!   terminal error until a `reset`.
//!
//! Concurrency note: each unit has its own function cache (a cache
//! models one whole program, so sharing one across units would thrash).
//! A worker checks the unit's cache out of the shared map for the
//! duration of the cure, so cures for different units run fully in
//! parallel; two simultaneous cures of the *same* unit both complete,
//! one merely warming a cache the other's check-in discards.

#![cfg(unix)]

use crate::cache::{Cache, CachedUnit};
use crate::engine::profile_unit;
use crate::hash::{fnv1a, hex};
use crate::report::{json_str, UnitReport};
use ccured::{isolated, CureError, Curer, FnCache};
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration for one serve instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The curer every request is cured with. Its deadline (if any) is
    /// taken from `limits.deadline`, exactly as in a batch run.
    pub curer: Curer,
    /// Socket path; created on start, removed on stop.
    pub socket: PathBuf,
    /// Whole-unit cache directory (`None` disables the disk cache; the
    /// in-memory function cache is always on).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads processing requests. 0 means 2.
    pub workers: usize,
    /// Per-request resource bounds: `deadline` bounds each cure,
    /// `max_stack_depth` sizes worker stacks, all four bound `profile`
    /// executions.
    pub limits: ccured_rt::Limits,
    /// Queue capacity before the server sheds load with `busy`.
    pub queue_cap: usize,
    /// Retries for transient failures (0 = no retry).
    pub max_retries: u32,
    /// Base backoff between retries; doubles per attempt, capped at
    /// 8 × base.
    pub backoff: Duration,
    /// Consecutive terminal failures before a unit is quarantined.
    pub quarantine_threshold: u32,
    /// Fault injection: a worker thread panics (outside the cure's
    /// isolation) when the request's source contains this substring.
    /// Exercises the supervisor/respawn path; tests only.
    pub fault_poison: Option<String>,
}

impl ServeConfig {
    /// A serve configuration with the default curer and limits.
    pub fn new(socket: PathBuf) -> Self {
        ServeConfig {
            curer: Curer::new(),
            socket,
            cache_dir: Some(PathBuf::from(".ccured-cache")),
            workers: 0,
            limits: ccured_rt::Limits::default(),
            queue_cap: 1024,
            max_retries: 2,
            backoff: Duration::from_millis(10),
            quarantine_threshold: 3,
            fault_poison: None,
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            2
        } else {
            self.workers
        }
    }
}

/// One queued request: the raw line plus the channel the worker answers
/// on. If the worker dies mid-request the sender drops and the
/// connection handler observes `RecvError` — a guaranteed terminal
/// reply for the client.
struct Job {
    line: String,
    reply: mpsc::Sender<String>,
}

/// Lifetime counters, all atomic so a panicking worker can never poison
/// them.
#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    cured: AtomicU64,
    errors: AtomicU64,
    busy: AtomicU64,
    respawns: AtomicU64,
    unit_hits: AtomicU64,
    unit_misses: AtomicU64,
    retries: AtomicU64,
}

/// State shared by handlers, workers, and the supervisor.
struct Shared {
    cfg: ServeConfig,
    curer: Curer,
    config_fp: String,
    cache: Option<Cache>,
    /// One function cache per unit path. A [`FnCache`] models a single
    /// whole program (a new environment fingerprint clears it), so sharing
    /// one across units would thrash; per-unit caches also let cures for
    /// different units run concurrently — a worker checks its unit's cache
    /// out of the map, cures without holding the map lock, and puts it
    /// back.
    fn_caches: Mutex<HashMap<String, FnCache>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Consecutive-failure counts per request target; at
    /// `quarantine_threshold` the unit is refused until `reset`.
    quarantine: Mutex<HashMap<String, u32>>,
    stats: Stats,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    /// Locks a mutex, recovering from poisoning: every protected value
    /// here (queue of jobs, counters map, the function cache) stays
    /// internally consistent across a panic, and the daemon must keep
    /// serving after one.
    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Checks the unit's function cache out of the map so the cure runs
    /// without holding the map lock. Concurrent requests for the *same*
    /// unit each get a cache (the second a fresh one); the last check-in
    /// wins, which costs warmth, never correctness.
    fn take_fn_cache(&self, path: &str) -> FnCache {
        self.lock(&self.fn_caches)
            .remove(path)
            .unwrap_or_else(|| FnCache::with_hasher(fnv1a))
    }

    fn put_fn_cache(&self, path: &str, cache: FnCache) {
        self.lock(&self.fn_caches).insert(path.to_string(), cache);
    }
}

/// A running cure daemon. Dropping the handle stops it.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the socket and starts the acceptor, worker pool, and
    /// supervisor.
    ///
    /// # Errors
    ///
    /// Socket bind/permission errors, cache-directory creation errors.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let cache = match &cfg.cache_dir {
            Some(d) => Some(Cache::open(d)?),
            None => None,
        };
        let _ = fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;

        let mut curer = cfg.curer.clone();
        curer.deadline(cfg.limits.deadline);
        let config_fp = cfg.curer.config_fingerprint();
        let shared = Arc::new(Shared {
            curer,
            config_fp,
            cache,
            fn_caches: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            quarantine: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            cfg,
        });

        let workers = shared.cfg.effective_workers();
        let stack = (shared.cfg.limits.max_stack_depth * 64 * 1024).max(8 << 20);
        let handles: Vec<std::thread::JoinHandle<()>> = (0..workers)
            .map(|w| spawn_worker(&shared, w, stack))
            .collect::<io::Result<_>>()?;

        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ccured-serve-supervisor".to_string())
                .spawn(move || supervise(shared, handles, stack))?
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ccured-serve-accept".to_string())
                .spawn(move || accept_loop(shared, listener))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.shared.cfg.socket
    }

    /// Whether the server has begun shutting down.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins every thread. Idempotent.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let _ = fs::remove_file(&self.shared.cfg.socket);
    }

    /// Blocks until the server shuts down (a `shutdown` request or
    /// [`Server::stop`] from another thread).
    pub fn wait(&mut self) {
        while !self.is_shutdown() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.stop();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sends one request line and returns the one-line reply — the client
/// side of the protocol, used by `ccured client` and the tests.
///
/// # Errors
///
/// Connection or I/O errors; a server-side failure is an `"error"`
/// reply, not an `Err`.
pub fn request(socket: &Path, line: &str) -> io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

fn spawn_worker(
    shared: &Arc<Shared>,
    idx: usize,
    stack: usize,
) -> io::Result<std::thread::JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("ccured-serve-worker-{idx}"))
        .stack_size(stack)
        .spawn(move || worker_loop(shared))
}

/// Respawns dead workers until shutdown, then joins the pool.
fn supervise(shared: Arc<Shared>, mut handles: Vec<std::thread::JoinHandle<()>>, stack: usize) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        for slot in handles.iter_mut() {
            if slot.is_finished() && !shared.shutdown.load(Ordering::SeqCst) {
                if let Ok(fresh) = spawn_worker(&shared, usize::MAX, stack) {
                    let dead = std::mem::replace(slot, fresh);
                    let _ = dead.join(); // collect the panic payload
                    shared.stats.respawns.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    shared.queue_cv.notify_all();
    for h in handles {
        let _ = h.join();
    }
}

fn accept_loop(shared: Arc<Shared>, listener: UnixListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("ccured-serve-conn".to_string())
                    .spawn(move || handle_connection(shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Keep this short: an idle accept poll is pure latency on
                // the front of every request, and the warm fast path it
                // delays is itself well under a millisecond.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Reads request lines until EOF; every line gets exactly one terminal
/// reply line, whatever happens to the worker that serves it.
fn handle_connection(shared: Arc<Shared>, stream: UnixStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim().to_string();
        if line.is_empty() {
            continue;
        }
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let reply = dispatch(&shared, line);
        if writer.write_all(reply.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
}

/// Routes one request line to a terminal reply: control requests answer
/// inline; cure-family requests go through the queue to a worker.
fn dispatch(shared: &Arc<Shared>, line: String) -> String {
    // Control-plane requests never queue: they must work even when every
    // worker is wedged or the queue is full.
    match line.as_str() {
        "status" => return status_json(shared),
        "reset" => {
            shared.lock(&shared.quarantine).clear();
            shared.lock(&shared.fn_caches).clear();
            return r#"{"status":"ok","kind":"reset"}"#.to_string();
        }
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            return r#"{"status":"ok","kind":"shutdown"}"#.to_string();
        }
        _ => {}
    }

    if shared.shutdown.load(Ordering::SeqCst) {
        shared.stats.busy.fetch_add(1, Ordering::Relaxed);
        return r#"{"status":"busy","reason":"shutting down"}"#.to_string();
    }

    let target = line.split_once(' ').map(|(_, p)| p.trim().to_string());
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.lock(&shared.queue);
        if q.len() >= shared.cfg.queue_cap {
            // Load shedding: an explicit busy beats an unbounded queue.
            shared.stats.busy.fetch_add(1, Ordering::Relaxed);
            return r#"{"status":"busy","reason":"queue full"}"#.to_string();
        }
        q.push_back(Job { line, reply: tx });
    }
    shared.queue_cv.notify_one();

    // A worker that panics drops the sender mid-request; turn that into
    // a terminal error (and the supervisor respawns the worker). The
    // request's target unit takes the blame: a unit that keeps killing
    // workers quarantines just like one that keeps failing.
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(reply) => reply,
        Err(_) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            if let Some(path) = &target {
                note_failure(shared, path);
            }
            r#"{"status":"error","error":"worker died while serving this request"}"#.to_string()
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.lock(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        let reply = serve_request(&shared, &job.line);
        // The client may have given up (recv timeout); a dead receiver
        // is not a worker problem.
        let _ = job.reply.send(reply);
    }
}

/// Parses and serves one data-plane request.
fn serve_request(shared: &Arc<Shared>, line: &str) -> String {
    let (cmd, arg) = match line.split_once(' ') {
        Some((c, a)) => (c, a.trim()),
        None => (line, ""),
    };
    match (cmd, arg.is_empty()) {
        ("cure", false) => cure_request(shared, arg),
        ("profile", false) => profile_request(shared, arg),
        ("explain", false) => explain_request(shared, arg),
        _ => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            format!(
                r#"{{"status":"error","error":{}}}"#,
                json_str(&format!(
                    "unknown request `{line}` (expected cure|profile|explain|status|reset|shutdown <path>)"
                ))
            )
        }
    }
}

/// Reads the unit, honoring quarantine and the fault-injection flag.
fn read_unit(shared: &Arc<Shared>, path: &str) -> Result<String, String> {
    if let Some(n) = shared.lock(&shared.quarantine).get(path) {
        if *n >= shared.cfg.quarantine_threshold {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            return Err(format!(
                r#"{{"status":"error","kind":"quarantined","path":{},"error":{}}}"#,
                json_str(path),
                json_str(&format!(
                    "unit quarantined after {n} consecutive failures; `reset` to retry"
                ))
            ));
        }
    }
    let source = fs::read_to_string(path).map_err(|e| {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        format!(
            r#"{{"status":"error","kind":"unreadable","path":{},"error":{}}}"#,
            json_str(path),
            json_str(&e.to_string())
        )
    })?;
    if let Some(poison) = &shared.cfg.fault_poison {
        if source.contains(poison.as_str()) {
            // Deliberately OUTSIDE `ccured::isolated`: this kills the
            // worker thread itself, exercising the supervisor respawn
            // and the reply-channel-drop path end to end.
            panic!("injected fault: poisoned unit `{path}`");
        }
    }
    Ok(source)
}

/// Classifies a cure error: transient failures are worth a retry.
fn transient(e: &CureError) -> bool {
    matches!(e, CureError::Internal(_) | CureError::Timeout { .. })
}

/// Notes a terminal failure against `path`; at the threshold the unit
/// is quarantined.
fn note_failure(shared: &Arc<Shared>, path: &str) {
    *shared
        .lock(&shared.quarantine)
        .entry(path.to_string())
        .or_insert(0) += 1;
}

fn cure_request(shared: &Arc<Shared>, path: &str) -> String {
    let source = match read_unit(shared, path) {
        Ok(s) => s,
        Err(reply) => return reply,
    };
    let started = Instant::now();
    let key = Cache::unit_key(&source, &shared.config_fp);

    // Fast path: a byte-identical unit served straight from the resident
    // whole-unit cache — no locks, no cure.
    if let Some(cache) = &shared.cache {
        if let Some(hit) = cache.load(key) {
            shared.stats.unit_hits.fetch_add(1, Ordering::Relaxed);
            shared.stats.cured.fetch_add(1, Ordering::Relaxed);
            shared.lock(&shared.quarantine).remove(path);
            return format!(
                r#"{{"status":"ok","kind":"cure","path":{},"from_cache":true,"digest":{},"checks_inserted":{},"fn_hits":0,"fn_misses":0,"elapsed_ns":{}}}"#,
                json_str(path),
                json_str(&hex(hit.report_digest)),
                hit.report.checks_inserted,
                started.elapsed().as_nanos()
            );
        }
    }
    shared.stats.unit_misses.fetch_add(1, Ordering::Relaxed);

    // Incremental cure with capped exponential backoff on transient
    // failures. The unit's function cache persists across requests — that
    // IS the warm path — and across retry attempts, so a timed-out cure's
    // completed functions make the retry start further along.
    let mut fn_cache = shared.take_fn_cache(path);
    let mut attempt = 0u32;
    let outcome = loop {
        let result =
            ccured::cure_source_incremental_isolated(&shared.curer, &source, &mut fn_cache);
        match result {
            Ok(incr) => break Ok(incr),
            Err(e) if transient(&e) && attempt < shared.cfg.max_retries => {
                attempt += 1;
                shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                let backoff = shared.cfg.backoff * 2u32.pow(attempt - 1).min(8);
                std::thread::sleep(backoff);
            }
            Err(e) => break Err(e),
        }
    };
    shared.put_fn_cache(path, fn_cache);

    match outcome {
        Ok(incr) => {
            let digest = fnv1a(incr.report.canonical().as_bytes());
            if let Some(cache) = &shared.cache {
                // A failed write only costs future hit rate.
                let _ = cache.store(
                    key,
                    &CachedUnit {
                        cured_text: incr.text.clone(),
                        report: UnitReport::from_cure(&incr.report),
                        report_digest: digest,
                        timings_ns: incr.timings.as_ns(),
                    },
                );
            }
            shared.stats.cured.fetch_add(1, Ordering::Relaxed);
            shared.lock(&shared.quarantine).remove(path);
            format!(
                r#"{{"status":"ok","kind":"cure","path":{},"from_cache":false,"digest":{},"checks_inserted":{},"fn_hits":{},"fn_misses":{},"retries":{attempt},"elapsed_ns":{}}}"#,
                json_str(path),
                json_str(&hex(digest)),
                incr.report.checks_inserted.total(),
                incr.fn_hits,
                incr.fn_misses,
                started.elapsed().as_nanos()
            )
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            note_failure(shared, path);
            let kind = match &e {
                CureError::Frontend(_) => "frontend-error",
                CureError::Link(_) => "link-error",
                CureError::Internal(_) => "internal-error",
                CureError::Timeout { .. } => "resource-exhausted",
            };
            format!(
                r#"{{"status":"error","kind":"{kind}","path":{},"retries":{attempt},"error":{}}}"#,
                json_str(path),
                json_str(&e.to_string())
            )
        }
    }
}

fn profile_request(shared: &Arc<Shared>, path: &str) -> String {
    let source = match read_unit(shared, path) {
        Ok(s) => s,
        Err(reply) => return reply,
    };
    // Profiling needs the in-memory program and site table, so this is a
    // full (isolated, deadline-bounded) cure plus a sandboxed execution.
    match isolated(|| shared.curer.cure_source(&source)) {
        Ok(cured) => {
            let rows = isolated(|| Ok(profile_unit(&cured, shared.cfg.limits))).unwrap_or_default();
            shared.stats.cured.fetch_add(1, Ordering::Relaxed);
            shared.lock(&shared.quarantine).remove(path);
            let mut s = format!(
                r#"{{"status":"ok","kind":"profile","path":{},"sites":["#,
                json_str(path)
            );
            for (i, r) in rows.iter().take(10).enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    r#"{{"func":{},"check":"{}","hits":{},"cost":{:.1}}}"#,
                    json_str(&r.site.func),
                    r.site.check,
                    r.hits,
                    r.cost
                ));
            }
            s.push_str("]}");
            s
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            note_failure(shared, path);
            format!(
                r#"{{"status":"error","kind":"cure-failed","path":{},"error":{}}}"#,
                json_str(path),
                json_str(&e.to_string())
            )
        }
    }
}

fn explain_request(shared: &Arc<Shared>, path: &str) -> String {
    let source = match read_unit(shared, path) {
        Ok(s) => s,
        Err(reply) => return reply,
    };
    let mut fn_cache = shared.take_fn_cache(path);
    let result = ccured::cure_source_incremental_isolated(&shared.curer, &source, &mut fn_cache);
    shared.put_fn_cache(path, fn_cache);
    match result {
        Ok(incr) => {
            shared.stats.cured.fetch_add(1, Ordering::Relaxed);
            shared.lock(&shared.quarantine).remove(path);
            let r = &incr.report;
            let mut s = format!(
                r#"{{"status":"ok","kind":"explain","path":{},"wild":{},"checks_inserted":{},"checks_elided":{},"hoisted":{},"widened":{},"static_failures":["#,
                json_str(path),
                r.kind_counts.wild,
                r.checks_inserted.total(),
                r.checks_elided.total(),
                r.checks_hoisted,
                r.checks_widened
            );
            for (i, f) in r.static_failures.iter().take(20).enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    r#"{{"func":{},"check":"{}","message":{}}}"#,
                    json_str(&f.func),
                    f.check,
                    json_str(&f.message)
                ));
            }
            s.push_str("]}");
            s
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            note_failure(shared, path);
            format!(
                r#"{{"status":"error","kind":"cure-failed","path":{},"error":{}}}"#,
                json_str(path),
                json_str(&e.to_string())
            )
        }
    }
}

fn status_json(shared: &Arc<Shared>) -> String {
    // Sum over the per-unit caches (ones checked out by an in-flight cure
    // are simply not counted this instant).
    let (fn_entries, fn_hits, fn_misses, fn_invalidations) = {
        let caches = shared.lock(&shared.fn_caches);
        caches.values().fold((0, 0, 0, 0), |acc, c| {
            (
                acc.0 + c.len(),
                acc.1 + c.hits(),
                acc.2 + c.misses(),
                acc.3 + c.invalidations(),
            )
        })
    };
    let quarantined = shared
        .lock(&shared.quarantine)
        .values()
        .filter(|n| **n >= shared.cfg.quarantine_threshold)
        .count();
    let s = &shared.stats;
    format!(
        r#"{{"status":"ok","kind":"status","requests":{},"cured":{},"errors":{},"busy":{},"retries":{},"respawns":{},"quarantined":{quarantined},"queue_depth":{},"workers":{},"unit_cache":{{"hits":{},"misses":{}}},"fn_cache":{{"entries":{fn_entries},"hits":{fn_hits},"misses":{fn_misses},"invalidations":{fn_invalidations}}},"uptime_ms":{}}}"#,
        s.requests.load(Ordering::Relaxed),
        s.cured.load(Ordering::Relaxed),
        s.errors.load(Ordering::Relaxed),
        s.busy.load(Ordering::Relaxed),
        s.retries.load(Ordering::Relaxed),
        s.respawns.load(Ordering::Relaxed),
        shared.lock(&shared.queue).len(),
        shared.cfg.effective_workers(),
        s.unit_hits.load(Ordering::Relaxed),
        s.unit_misses.load(Ordering::Relaxed),
        shared.started.elapsed().as_millis()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ccured-serve-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn start(dir: &Path) -> Server {
        let mut cfg = ServeConfig::new(dir.join("s.sock"));
        cfg.cache_dir = Some(dir.join("cache"));
        cfg.workers = 2;
        Server::start(cfg).unwrap()
    }

    #[test]
    fn serves_cure_status_and_shuts_down() {
        let d = scratch("basic");
        let unit = d.join("u.c");
        fs::write(
            &unit,
            "int main(void) { int x; int *p; p = &x; *p = 3; return *p; }",
        )
        .unwrap();
        let mut srv = start(&d);
        let sock = srv.socket().to_path_buf();

        let r1 = request(&sock, &format!("cure {}", unit.display())).unwrap();
        assert!(r1.contains(r#""status":"ok""#), "{r1}");
        assert!(r1.contains(r#""from_cache":false"#), "{r1}");
        // Same bytes: whole-unit cache hit.
        let r2 = request(&sock, &format!("cure {}", unit.display())).unwrap();
        assert!(r2.contains(r#""from_cache":true"#), "{r2}");
        // Same digest both ways.
        let digest = |r: &str| {
            r.split(r#""digest":""#)
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(digest(&r1), digest(&r2));

        let st = request(&sock, "status").unwrap();
        assert!(st.contains(r#""kind":"status""#), "{st}");
        assert!(st.contains(r#""unit_cache":{"hits":1,"misses":1}"#), "{st}");

        let bad = request(&sock, "cure /nonexistent.c").unwrap();
        assert!(bad.contains(r#""kind":"unreadable""#), "{bad}");
        let unknown = request(&sock, "frobnicate x").unwrap();
        assert!(unknown.contains(r#""status":"error""#), "{unknown}");

        let down = request(&sock, "shutdown").unwrap();
        assert!(down.contains(r#""kind":"shutdown""#), "{down}");
        srv.wait();
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn function_level_warm_path_recures_only_the_edit() {
        let d = scratch("incr");
        let unit = d.join("u.c");
        let v = |k: u32| {
            format!(
                "int f(int *p) {{ return *p + {k}; }}\n\
                 int g(int *p) {{ return *p * 2; }}\n\
                 int main(void) {{ int x; x = 1; return f(&x) + g(&x); }}\n"
            )
        };
        fs::write(&unit, v(0)).unwrap();
        let mut srv = start(&d);
        let sock = srv.socket().to_path_buf();
        let r = request(&sock, &format!("cure {}", unit.display())).unwrap();
        assert!(r.contains(r#""fn_misses":3"#), "{r}");
        fs::write(&unit, v(1)).unwrap();
        let r = request(&sock, &format!("cure {}", unit.display())).unwrap();
        assert!(r.contains(r#""fn_hits":2"#), "{r}");
        assert!(r.contains(r#""fn_misses":1"#), "{r}");
        srv.stop();
        let _ = fs::remove_dir_all(&d);
    }
}
