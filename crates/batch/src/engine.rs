//! The work-stealing parallel cure engine.
//!
//! Units are distributed round-robin across per-worker deques; each worker
//! pops from the front of its own deque and, when empty, steals from the
//! *back* of its siblings' — the classic work-stealing shape, with plain
//! `Mutex<VecDeque>`s instead of lock-free deques (unit granularity is a
//! whole cure, so queue contention is negligible).
//!
//! Every cure runs inside [`ccured::isolated`], so one poisoned input
//! becomes a per-unit `internal-error` verdict instead of sinking the
//! batch, and each worker thread gets a bounded stack sized from the
//! configured [`ccured_rt::Limits`] so a pathological unit cannot blow the
//! host stack either.

use crate::cache::{Cache, CachedUnit};
use crate::hash::fnv1a;
use crate::report::{BatchReport, UnitOutcome, UnitReport, Verdict};
use ccured::{isolated, CureError, Curer, StageTimings};
use ccured_rt::Limits;
use std::collections::VecDeque;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for one batch run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// The curer every unit is cured with (its
    /// [`Curer::config_fingerprint`] is part of the cache key).
    pub curer: Curer,
    /// Worker threads; 0 means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Cache directory (created on demand).
    pub cache_dir: PathBuf,
    /// Whether to consult/populate the cache (`--no-cache` turns this off).
    pub use_cache: bool,
    /// Per-worker resource bounds. Curing is static, so only
    /// `max_stack_depth` applies here: it sizes each worker's thread stack
    /// (the same cliff the interpreter sandbox guards; see
    /// `ccured_rt::Limits`). Runs of cured programs launched from a batch
    /// should reuse these limits.
    pub limits: Limits,
    /// Execute every cured unit with per-site check profiling and attach
    /// the ranked hot-site rows to its [`UnitOutcome`]. Observation-only:
    /// verdicts, cured text, digests and cache behaviour are unchanged (a
    /// cache hit re-cures the unit just to have a program to execute).
    pub profile: bool,
}

impl BatchConfig {
    /// A batch configuration with the default curer, cache at
    /// `.ccured-cache/`, and one worker per core.
    pub fn new(curer: Curer) -> Self {
        BatchConfig {
            curer,
            jobs: 0,
            cache_dir: PathBuf::from(".ccured-cache"),
            use_cache: true,
            limits: Limits::default(),
            profile: false,
        }
    }

    /// The effective worker count for `n_units` units.
    pub fn effective_jobs(&self, n_units: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.jobs == 0 { hw } else { self.jobs };
        requested.clamp(1, n_units.max(1))
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::new(Curer::new())
    }
}

/// Expands a batch input path into the list of units to cure.
///
/// A **directory** yields every `*.c` file directly inside it, sorted by
/// name. A **file** is a manifest: one unit path per line (relative paths
/// resolve against the manifest's directory), blank lines and `#` comments
/// ignored.
///
/// # Errors
///
/// I/O errors reading the directory or manifest, or an empty unit list.
pub fn discover_units(path: &Path) -> io::Result<Vec<PathBuf>> {
    let meta = fs::metadata(path)?;
    let mut units = Vec::new();
    if meta.is_dir() {
        for entry in fs::read_dir(path)? {
            let p = entry?.path();
            if p.extension().is_some_and(|e| e == "c") && p.is_file() {
                units.push(p);
            }
        }
        units.sort();
    } else {
        let base = path.parent().unwrap_or(Path::new("."));
        for line in fs::read_to_string(path)?.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let p = PathBuf::from(line);
            units.push(if p.is_absolute() { p } else { base.join(p) });
        }
    }
    if units.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("no units found in `{}`", path.display()),
        ));
    }
    Ok(units)
}

/// Cures every unit and assembles the aggregate report.
///
/// # Errors
///
/// Only infrastructure failures (cache directory creation, worker spawn);
/// per-unit cure failures are verdicts inside the report.
pub fn run_batch(cfg: &BatchConfig, units: &[PathBuf]) -> io::Result<BatchReport> {
    let cache = if cfg.use_cache {
        Some(Cache::open(&cfg.cache_dir)?)
    } else {
        None
    };
    let config_fp = cfg.curer.config_fingerprint();
    let jobs = cfg.effective_jobs(units.len());
    // The wall-clock budget rides on `Limits` (it bounds the cure the same
    // way fuel bounds execution) and is deliberately outside the config
    // fingerprint: a deadline can only abort a cure, never change the
    // output of one that completes, so cache entries stay valid across
    // deadline changes.
    let curer = {
        let mut c = cfg.curer.clone();
        c.deadline(cfg.limits.deadline);
        c
    };

    // Round-robin seeding: unit i starts on worker i % jobs.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| {
            Mutex::new(
                (0..units.len())
                    .filter(|i| i % jobs == w)
                    .collect::<VecDeque<_>>(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<UnitOutcome>>> = units.iter().map(|_| Mutex::new(None)).collect();

    // Workers recurse while parsing/lowering deep inputs; give them the
    // same healthy margin per guest frame the interpreter sandbox assumes.
    let stack_bytes = (cfg.limits.max_stack_depth * 64 * 1024).max(8 << 20);

    let wall_start = Instant::now();
    std::thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::with_capacity(jobs);
        for w in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let cache = cache.as_ref();
            let curer = &curer;
            let config_fp = config_fp.as_str();
            let profile = cfg.profile.then_some(cfg.limits);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ccured-batch-{w}"))
                    .stack_size(stack_bytes)
                    .spawn_scoped(scope, move || {
                        while let Some(i) = next_unit(queues, w) {
                            let out = cure_unit(&units[i], curer, config_fp, cache, profile);
                            // A sibling that panicked mid-store poisons the
                            // slot mutex; the data is a plain Option, so
                            // recover it rather than cascading the panic.
                            *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
                        }
                    })?,
            );
        }
        let mut worker_died = false;
        for h in handles {
            // Cures run inside `ccured::isolated`, so a panicking join means
            // a worker died *outside* a cure (infrastructure bug or fault
            // injection). The batch still completes: whatever the dead
            // worker left queued is drained by a recovery pass below.
            worker_died |= h.join().is_err();
        }
        if worker_died {
            let queues = &queues;
            let slots = &slots;
            let cache = cache.as_ref();
            let curer = &curer;
            let config_fp = config_fp.as_str();
            let profile = cfg.profile.then_some(cfg.limits);
            let h = std::thread::Builder::new()
                .name("ccured-batch-recover".to_string())
                .stack_size(stack_bytes)
                .spawn_scoped(scope, move || {
                    while let Some(i) = next_unit(queues, 0) {
                        let out = cure_unit(&units[i], curer, config_fp, cache, profile);
                        *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
                    }
                })?;
            let _ = h.join();
        }
        Ok(())
    })?;
    let wall = wall_start.elapsed();

    let outcomes: Vec<UnitOutcome> = slots
        .into_iter()
        .zip(units)
        .map(|(s, path)| {
            // Every queued unit normally records an outcome; if a worker
            // died between claiming a unit and storing its result, report
            // that unit as an internal error instead of aborting the batch.
            s.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(|| UnitOutcome {
                    path: path.display().to_string(),
                    verdict: Verdict::Internal(
                        "batch worker died before recording an outcome".to_string(),
                    ),
                    from_cache: false,
                    cured_text: String::new(),
                    report: None,
                    report_digest: 0,
                    cure_timings: StageTimings::default(),
                    elapsed: std::time::Duration::ZERO,
                    site_profile: Vec::new(),
                })
        })
        .collect();
    Ok(BatchReport::new(outcomes, jobs, wall, cfg.use_cache))
}

/// Convenience entry point: discover units under `path` and run the batch.
///
/// # Errors
///
/// As [`discover_units`] and [`run_batch`].
pub fn run_path(cfg: &BatchConfig, path: &Path) -> io::Result<BatchReport> {
    let units = discover_units(path)?;
    run_batch(cfg, &units)
}

/// Pop from our own deque's front, else steal from a sibling's back.
/// Queue mutexes hold plain indices, so a poisoned lock (a sibling
/// panicked while holding it) is recovered, not propagated.
fn next_unit(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(i) = queues[me]
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .pop_front()
    {
        return Some(i);
    }
    let n = queues.len();
    for d in 1..n {
        let victim = (me + d) % n;
        if let Some(i) = queues[victim]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_back()
        {
            return Some(i);
        }
    }
    None
}

/// Cures one unit: cache probe, then an isolated live cure on a miss.
/// `profile` carries the execution limits when the batch profiles check
/// sites; it forces a live cure even on a hit (the cache stores cured
/// *text*, but execution needs the in-memory program and site table).
fn cure_unit(
    path: &Path,
    curer: &Curer,
    config_fp: &str,
    cache: Option<&Cache>,
    profile: Option<Limits>,
) -> UnitOutcome {
    let started = Instant::now();
    let display = path.display().to_string();
    let mut out = UnitOutcome {
        path: display,
        verdict: Verdict::Cured,
        from_cache: false,
        cured_text: String::new(),
        report: None,
        report_digest: 0,
        cure_timings: StageTimings::default(),
        elapsed: std::time::Duration::ZERO,
        site_profile: Vec::new(),
    };

    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            out.verdict = Verdict::Unreadable(e.to_string());
            out.elapsed = started.elapsed();
            return out;
        }
    };

    let key = Cache::unit_key(&source, config_fp);
    if let Some(cache) = cache {
        if let Some(hit) = cache.load(key) {
            out.from_cache = true;
            out.cured_text = hit.cured_text;
            out.report = Some(hit.report);
            out.report_digest = hit.report_digest;
            out.cure_timings = StageTimings::from_ns(hit.timings_ns);
            if profile.is_none() {
                out.elapsed = started.elapsed();
                return out;
            }
        }
    }

    match isolated(|| curer.cure_source(&source)) {
        Ok(cured) => {
            if !out.from_cache {
                out.cured_text = ccured_cil::pretty::dump_program(&cured.program);
                out.report_digest = fnv1a(cured.report.canonical().as_bytes());
                out.report = Some(UnitReport::from_cure(&cured.report));
                out.cure_timings = cured.timings;
                if let Some(cache) = cache {
                    // A failed write only costs future hit-rate, not this run.
                    let _ = cache.store(
                        key,
                        &CachedUnit {
                            cured_text: out.cured_text.clone(),
                            report: out.report.unwrap(),
                            report_digest: out.report_digest,
                            timings_ns: out.cure_timings.as_ns(),
                        },
                    );
                }
            }
            if let Some(limits) = profile {
                out.site_profile =
                    isolated(|| Ok(profile_unit(&cured, limits))).unwrap_or_default();
            }
        }
        Err(e) if !out.from_cache => {
            out.verdict = match e {
                CureError::Frontend(d) => Verdict::Frontend(d.to_string()),
                CureError::Link(issues) => Verdict::Link(issues.len()),
                CureError::Internal(m) => Verdict::Internal(m),
                CureError::Timeout { .. } => Verdict::ResourceExhausted(e.to_string()),
            }
        }
        // The curer is deterministic, so a re-cure of a cached unit cannot
        // fail; if it somehow does, keep the cached verdict and skip the
        // profile rather than contradicting the cache.
        Err(_) => {}
    }
    out.elapsed = started.elapsed();
    out
}

/// Executes one cured unit with per-site profiling and returns the ranked
/// hot-site rows. Observation-only: the run's outcome (check failure, fuel
/// exhaustion, even a missing `main`) never alters the unit's verdict — the
/// profile simply records whatever executed before the run stopped.
pub(crate) fn profile_unit(cured: &ccured::Cured, limits: Limits) -> Vec<ccured_rt::SiteReport> {
    let mut interp = ccured_rt::Interp::new(&cured.program, ccured_rt::ExecMode::cured(cured));
    interp.set_limits(limits);
    interp.enable_profile(cured.sites.len());
    let _ = interp.run();
    let profile = interp.profile().cloned().unwrap_or_default();
    ccured_rt::profile::rank_sites(&cured.sites, &profile, &ccured_rt::CostModel::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("ccured-batch-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
        let p = dir.join(name);
        fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn discovers_directory_sorted_and_manifest_relative() {
        let d = scratch("discover");
        write(&d, "b.c", "int main(void){return 0;}");
        write(&d, "a.c", "int main(void){return 0;}");
        write(&d, "notes.txt", "not a unit");
        let units = discover_units(&d).unwrap();
        assert_eq!(units.len(), 2);
        assert!(units[0].ends_with("a.c") && units[1].ends_with("b.c"));

        let m = write(&d, "manifest.txt", "# comment\n\nb.c\na.c\n");
        let units = discover_units(&m).unwrap();
        assert_eq!(units.len(), 2, "manifest preserves listed order");
        assert!(units[0].ends_with("b.c"));

        let empty = scratch("discover-empty");
        assert!(discover_units(&empty).is_err(), "no units is an error");
        let _ = fs::remove_dir_all(&d);
        let _ = fs::remove_dir_all(&empty);
    }

    #[test]
    fn batch_cures_units_and_reports_failures_individually() {
        let d = scratch("mixed");
        write(
            &d,
            "good.c",
            "int main(void) { int x; int *p; p = &x; *p = 3; return *p; }",
        );
        write(&d, "bad.c", "int main( {");
        let mut cfg = BatchConfig::new(Curer::new());
        cfg.cache_dir = d.join("cache");
        cfg.jobs = 2;
        let rep = run_path(&cfg, &d).unwrap();
        assert_eq!(rep.units.len(), 2);
        assert_eq!(rep.cured(), 1);
        assert_eq!(rep.failed(), 1);
        assert!(rep.units[0].path.ends_with("bad.c"));
        assert!(matches!(rep.units[0].verdict, Verdict::Frontend(_)));
        let good = &rep.units[1];
        assert!(good.verdict.is_cured());
        assert!(!good.cured_text.is_empty());
        assert!(good.report.unwrap().checks_inserted > 0);
        assert!(good.cure_timings.total().as_nanos() > 0, "stages timed");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn second_run_is_served_from_cache_with_identical_bytes() {
        let d = scratch("warm");
        write(
            &d,
            "u.c",
            "int f(int *p) { return *p; }\nint main(void) { int x; x = 4; return f(&x); }",
        );
        let mut cfg = BatchConfig {
            jobs: 1,
            ..BatchConfig::default()
        };
        cfg.cache_dir = d.join("cache");
        let cold = run_path(&cfg, &d).unwrap();
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.entries_written, 1);
        let warm = run_path(&cfg, &d).unwrap();
        assert_eq!(warm.cache.hits, 1);
        assert!((warm.hit_rate() - 1.0).abs() < 1e-9);
        assert!(warm.units[0].from_cache);
        assert_eq!(warm.units[0].cured_text, cold.units[0].cured_text);
        assert_eq!(warm.units[0].report, cold.units[0].report);
        assert_eq!(warm.units[0].report_digest, cold.units[0].report_digest);
        // A config change re-keys every unit.
        let mut ablated = cfg.clone();
        ablated.curer.optimize(false);
        let rekeyed = run_path(&ablated, &d).unwrap();
        assert_eq!(rekeyed.cache.hits, 0, "config is part of the key");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn profiled_batch_attaches_site_rows_even_on_cache_hits() {
        let d = scratch("profile");
        write(
            &d,
            "hot.c",
            "int sum(int *a, int n) { int s; int i; s = 0; \
             for (i = 0; i < n; i++) s += a[i]; return s; }\n\
             int main(void) { int v[8]; int i; \
             for (i = 0; i < 8; i++) v[i] = i; return sum(v, 8); }",
        );
        write(&d, "cold.c", "int main(void) { return 0; }");
        let mut cfg = BatchConfig::new(Curer::new());
        cfg.cache_dir = d.join("cache");
        cfg.jobs = 1;
        cfg.profile = true;
        let cold = run_path(&cfg, &d).unwrap();
        assert_eq!(cold.cured(), 2);
        assert!(cold.profiled());
        let hot_unit = cold
            .units
            .iter()
            .find(|u| u.path.ends_with("hot.c"))
            .unwrap();
        assert!(!hot_unit.site_profile.is_empty());
        assert!(hot_unit.site_profile[0].hits > 0, "hottest row executed");
        let hot = cold.hot_sites(5);
        assert!(!hot.is_empty() && hot[0].0.ends_with("hot.c"));

        // A warm run serves the cure from cache yet still profiles, and the
        // aggregate ranking is identical.
        let warm = run_path(&cfg, &d).unwrap();
        assert_eq!(warm.cache.hits, 2);
        assert!(warm.units.iter().all(|u| u.from_cache));
        let key = |rows: Vec<(&str, &ccured_rt::SiteReport)>| {
            rows.iter()
                .map(|(p, r)| (p.to_string(), r.site.id, r.hits, r.cost.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(warm.hot_sites(10)), key(cold.hot_sites(10)));
        assert_eq!(warm.units[1].cured_text, cold.units[1].cured_text);

        // Profiling off: no rows, nothing else changes.
        cfg.profile = false;
        let plain = run_path(&cfg, &d).unwrap();
        assert!(!plain.profiled());
        assert_eq!(plain.units[1].report, cold.units[1].report);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn no_cache_disables_lookups_and_writes() {
        let d = scratch("nocache");
        write(&d, "u.c", "int main(void) { return 0; }");
        let mut cfg = BatchConfig {
            use_cache: false,
            ..BatchConfig::default()
        };
        cfg.cache_dir = d.join("cache");
        let rep = run_path(&cfg, &d).unwrap();
        assert!(!rep.cache.enabled);
        assert_eq!(rep.cache.lookups, 0);
        assert!(!cfg.cache_dir.exists(), "no cache dir created");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn work_stealing_queue_drains_exactly_once() {
        let queues: Vec<Mutex<VecDeque<usize>>> = vec![
            Mutex::new((0..7).collect()),
            Mutex::new(VecDeque::new()),
            Mutex::new(VecDeque::new()),
        ];
        let mut seen = Vec::new();
        // Worker 2 owns nothing and must steal everything from worker 0.
        while let Some(i) = next_unit(&queues, 2) {
            seen.push(i);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(next_unit(&queues, 0).is_none());
    }

    #[test]
    fn effective_jobs_clamps_to_units() {
        let mut cfg = BatchConfig {
            jobs: 8,
            ..BatchConfig::default()
        };
        assert_eq!(cfg.effective_jobs(3), 3);
        assert_eq!(cfg.effective_jobs(0), 1);
        cfg.jobs = 0;
        assert!(cfg.effective_jobs(64) >= 1);
    }
}
