//! # ccured-batch
//!
//! The parallel batch cure engine: take a directory (or manifest) of `.c`
//! translation units, fan each unit's `cure_source` pipeline out across a
//! work-stealing thread pool, and layer a content-addressed on-disk cache
//! over the expensive stages so unchanged units are served from cache.
//!
//! This is the scaling layer the ROADMAP's production north star asks for:
//! whole-suite runs (the paper's ftpd/sendmail/Olden experiments, a CI
//! tree, an editor save-loop) are many independent units with mostly
//! unchanged inputs — exactly the shape that parallelism plus incremental
//! caching accelerates.
//!
//! * **Parallel**: per-worker deques with work stealing
//!   ([`engine::run_batch`]); one slow unit cannot serialize the tail.
//! * **Isolated**: every cure runs under `ccured::isolated` with a bounded
//!   worker stack, so a hostile unit yields a per-unit verdict, never a
//!   sunk batch.
//! * **Incremental**: cache keys are `hash(source ⊕ curer config ⊕ crate
//!   version)` ([`cache::Cache::unit_key`]) — no paths or mtimes, so moves
//!   and rebuilds still hit, while any semantic change misses exactly the
//!   affected units.
//! * **Observable**: [`BatchReport`] carries per-unit verdicts, summed
//!   pointer-kind histograms, per-stage hit/miss/elapsed/saved counters
//!   (from the `StageTimings` hooks in the core pipeline), and wall vs.
//!   CPU time.
//!
//! # Examples
//!
//! ```no_run
//! use ccured_batch::{BatchConfig, run_path};
//! use std::path::Path;
//!
//! let mut cfg = BatchConfig::default();
//! cfg.jobs = 4;
//! let report = run_path(&cfg, Path::new("examples/c")).unwrap();
//! println!("{}", report.render());
//! assert_eq!(report.failed(), 0);
//! ```

pub mod cache;
pub mod engine;
pub mod hash;
pub mod report;
#[cfg(unix)]
pub mod serve;

pub use cache::{Cache, CachedUnit};
pub use engine::{discover_units, run_batch, run_path, BatchConfig};
pub use report::{BatchReport, CacheStats, StageStat, UnitOutcome, UnitReport, Verdict};
#[cfg(unix)]
pub use serve::{request, ServeConfig, Server};
