//! Per-unit outcomes and the aggregate [`BatchReport`].

use crate::cache::NSTAGES;
use ccured::{CureReport, StageTimings};
use ccured_rt::SiteReport;
use std::time::Duration;

/// Stage names in pipeline order, indexing the per-stage cache counters.
pub const STAGE_NAMES: [&str; NSTAGES] = ["parse", "lower", "infer", "instrument", "optimize"];

/// The flat, comparable summary of one unit's [`CureReport`] — exactly the
/// numbers the batch report aggregates and the cache persists. Two cures of
/// the same unit under the same configuration produce equal `UnitReport`s
/// (asserted by the differential batch test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitReport {
    /// Declared pointers inferred SAFE.
    pub safe: u64,
    /// Declared pointers inferred SEQ.
    pub seq: u64,
    /// Declared pointers inferred WILD.
    pub wild: u64,
    /// Declared pointers inferred RTTI.
    pub rtti: u64,
    /// Run-time checks inserted (before elimination).
    pub checks_inserted: u64,
    /// Checks the optimizer deleted.
    pub checks_elided: u64,
    /// Bad (WILD-forcing) casts in the census.
    pub bad_casts: u64,
    /// Programmer-asserted trusted casts.
    pub trusted_casts: u64,
    /// Checks provable to always fail (compile-time warnings).
    pub static_failures: u64,
    /// Wrapper redirections applied.
    pub wrappers_applied: u64,
    /// Link-audit findings.
    pub link_issues: u64,
    /// SPLIT qualifiers.
    pub split_quals: u64,
}

impl UnitReport {
    /// Extracts the summary from a full cure report.
    pub fn from_cure(r: &CureReport) -> Self {
        UnitReport {
            safe: r.kind_counts.safe as u64,
            seq: r.kind_counts.seq as u64,
            wild: r.kind_counts.wild as u64,
            rtti: r.kind_counts.rtti as u64,
            checks_inserted: r.checks_inserted.total() as u64,
            checks_elided: r.checks_elided.total(),
            bad_casts: r.census.bad as u64,
            trusted_casts: r.trusted_casts as u64,
            static_failures: r.static_failures.len() as u64,
            wrappers_applied: r.wrappers_applied.len() as u64,
            link_issues: r.link_issues.len() as u64,
            split_quals: r.split_quals as u64,
        }
    }

    /// Field names and values in a fixed order (cache serialization).
    pub fn as_pairs(&self) -> [(&'static str, u64); 12] {
        [
            ("safe", self.safe),
            ("seq", self.seq),
            ("wild", self.wild),
            ("rtti", self.rtti),
            ("checks_inserted", self.checks_inserted),
            ("checks_elided", self.checks_elided),
            ("bad_casts", self.bad_casts),
            ("trusted_casts", self.trusted_casts),
            ("static_failures", self.static_failures),
            ("wrappers_applied", self.wrappers_applied),
            ("link_issues", self.link_issues),
            ("split_quals", self.split_quals),
        ]
    }

    /// Sets a field by its [`UnitReport::as_pairs`] name; `false` if the
    /// name is unknown (cache deserialization).
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "safe" => &mut self.safe,
            "seq" => &mut self.seq,
            "wild" => &mut self.wild,
            "rtti" => &mut self.rtti,
            "checks_inserted" => &mut self.checks_inserted,
            "checks_elided" => &mut self.checks_elided,
            "bad_casts" => &mut self.bad_casts,
            "trusted_casts" => &mut self.trusted_casts,
            "static_failures" => &mut self.static_failures,
            "wrappers_applied" => &mut self.wrappers_applied,
            "link_issues" => &mut self.link_issues,
            "split_quals" => &mut self.split_quals,
            _ => return false,
        };
        *slot = value;
        true
    }

    /// Element-wise sum (corpus aggregation).
    pub fn add(&mut self, other: &UnitReport) {
        self.safe += other.safe;
        self.seq += other.seq;
        self.wild += other.wild;
        self.rtti += other.rtti;
        self.checks_inserted += other.checks_inserted;
        self.checks_elided += other.checks_elided;
        self.bad_casts += other.bad_casts;
        self.trusted_casts += other.trusted_casts;
        self.static_failures += other.static_failures;
        self.wrappers_applied += other.wrappers_applied;
        self.link_issues += other.link_issues;
        self.split_quals += other.split_quals;
    }
}

/// How curing one unit ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Cured successfully.
    Cured,
    /// The file could not be read.
    Unreadable(String),
    /// Parse/lower/type error.
    Frontend(String),
    /// Strict link audit failed (`n` issues).
    Link(usize),
    /// The curer panicked (caught by `ccured::isolated`).
    Internal(String),
    /// The cure blew its wall-clock budget (`--deadline-ms`): a
    /// structured, terminal outcome with its own exit code, so one
    /// pathological unit cannot wedge a batch or a serve worker.
    ResourceExhausted(String),
}

impl Verdict {
    /// Whether the unit cured.
    pub fn is_cured(&self) -> bool {
        matches!(self, Verdict::Cured)
    }

    /// Short machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Cured => "cured",
            Verdict::Unreadable(_) => "unreadable",
            Verdict::Frontend(_) => "frontend-error",
            Verdict::Link(_) => "link-error",
            Verdict::Internal(_) => "internal-error",
            Verdict::ResourceExhausted(_) => "resource-exhausted",
        }
    }

    /// Human-readable detail (empty for [`Verdict::Cured`]).
    pub fn detail(&self) -> String {
        match self {
            Verdict::Cured => String::new(),
            Verdict::Unreadable(m)
            | Verdict::Frontend(m)
            | Verdict::Internal(m)
            | Verdict::ResourceExhausted(m) => m.clone(),
            Verdict::Link(n) => format!("{n} link-audit issues"),
        }
    }
}

/// What happened to one unit in one batch run.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// The unit path as listed in the directory/manifest.
    pub path: String,
    /// How the cure ended.
    pub verdict: Verdict,
    /// Whether this run served the unit from the content-addressed cache.
    pub from_cache: bool,
    /// The cured program, pretty-printed (empty on failure). Byte-identical
    /// across `--jobs` settings and cache hits.
    pub cured_text: String,
    /// The flat report summary (None on failure).
    pub report: Option<UnitReport>,
    /// FNV-1a digest of [`CureReport::canonical`] (0 on failure).
    pub report_digest: u64,
    /// Per-stage cost of the cure that produced this artifact — measured
    /// live on a miss, recalled from the cache entry on a hit.
    pub cure_timings: StageTimings,
    /// Wall-clock this run actually spent on the unit (on a hit: the cache
    /// probe; on a miss: the full cure).
    pub elapsed: Duration,
    /// Ranked per-site check profile from executing the cured unit. Empty
    /// unless the batch ran with `BatchConfig::profile` (and the unit
    /// cured). Site ids are local to this unit's site table.
    pub site_profile: Vec<SiteReport>,
}

/// Hit/miss/elapsed accounting for one pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageStat {
    /// Times this stage was served from cache.
    pub hits: u64,
    /// Times this stage ran live.
    pub misses: u64,
    /// Wall-clock spent running the stage live this run.
    pub live: Duration,
    /// Wall-clock the cache avoided (the original cure's cost for stages
    /// served from cache).
    pub saved: Duration,
}

/// Aggregate cache statistics for one batch run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Whether the cache was consulted at all (`--no-cache` disables it).
    pub enabled: bool,
    /// Cache probes (one per readable unit).
    pub lookups: u64,
    /// Whole-unit hits.
    pub hits: u64,
    /// Whole-unit misses.
    pub misses: u64,
    /// New entries persisted this run.
    pub entries_written: u64,
    /// Per-stage breakdown, indexed like [`STAGE_NAMES`].
    pub stages: [StageStat; NSTAGES],
}

impl CacheStats {
    /// Fraction of lookups served from cache (0.0 when the cache is off or
    /// no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// The aggregate result of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-unit outcomes, sorted by path (worker completion order never
    /// leaks into the report).
    pub units: Vec<UnitOutcome>,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock for the whole batch.
    pub wall: Duration,
    /// Sum of per-unit elapsed time (the work the pool actually performed;
    /// `cpu / wall` approximates achieved parallelism).
    pub cpu: Duration,
    /// Cache accounting.
    pub cache: CacheStats,
}

impl BatchReport {
    /// Assembles a report: sorts units by path and derives the aggregate
    /// cache statistics from the per-unit outcomes.
    pub fn new(
        mut units: Vec<UnitOutcome>,
        jobs: usize,
        wall: Duration,
        cache_enabled: bool,
    ) -> Self {
        units.sort_by(|a, b| a.path.cmp(&b.path));
        let cpu = units.iter().map(|u| u.elapsed).sum();
        let mut cache = CacheStats {
            enabled: cache_enabled,
            ..CacheStats::default()
        };
        if cache_enabled {
            for u in &units {
                if matches!(u.verdict, Verdict::Unreadable(_)) {
                    continue; // never reached the cache probe
                }
                cache.lookups += 1;
                let ns = u.cure_timings.as_ns();
                if u.from_cache {
                    cache.hits += 1;
                    for (i, n) in ns.iter().enumerate() {
                        cache.stages[i].hits += 1;
                        cache.stages[i].saved += Duration::from_nanos(*n);
                    }
                } else {
                    cache.misses += 1;
                    for (i, n) in ns.iter().enumerate() {
                        cache.stages[i].misses += 1;
                        cache.stages[i].live += Duration::from_nanos(*n);
                    }
                    if u.verdict.is_cured() {
                        cache.entries_written += 1;
                    }
                }
            }
        }
        BatchReport {
            units,
            jobs,
            wall,
            cpu,
            cache,
        }
    }

    /// Units that cured.
    pub fn cured(&self) -> usize {
        self.units.iter().filter(|u| u.verdict.is_cured()).count()
    }

    /// Units that failed (any non-cured verdict).
    pub fn failed(&self) -> usize {
        self.units.len() - self.cured()
    }

    /// Pointer-kind histograms and check counts summed over cured units.
    pub fn totals(&self) -> UnitReport {
        let mut t = UnitReport::default();
        for u in &self.units {
            if let Some(r) = &u.report {
                t.add(r);
            }
        }
        t
    }

    /// Whole-unit cache hit rate for this run.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Whether any unit carries a site profile (the batch ran with
    /// [`BatchConfig::profile`](crate::BatchConfig) on and something cured).
    pub fn profiled(&self) -> bool {
        self.units.iter().any(|u| !u.site_profile.is_empty())
    }

    /// The hottest check sites across every profiled unit, ranked by
    /// attributed cost, then hits, then unit path and site id. The final
    /// two keys make the order total, so the aggregate ranking is
    /// deterministic regardless of `--jobs` or cache state. Site ids are
    /// per-unit, so rows are keyed by (unit path, site); zero-hit sites
    /// are skipped.
    pub fn hot_sites(&self, top: usize) -> Vec<(&str, &SiteReport)> {
        let mut rows: Vec<(&str, &SiteReport)> = self
            .units
            .iter()
            .flat_map(|u| {
                u.site_profile
                    .iter()
                    .filter(|r| r.hits > 0)
                    .map(move |r| (u.path.as_str(), r))
            })
            .collect();
        rows.sort_by(|a, b| {
            b.1.cost
                .total_cmp(&a.1.cost)
                .then(b.1.hits.cmp(&a.1.hits))
                .then(a.0.cmp(b.0))
                .then(a.1.site.id.cmp(&b.1.site.id))
        });
        rows.truncate(top);
        rows
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "== batch report: {} units, {} jobs ==\n",
            self.units.len(),
            self.jobs
        ));
        let wpath = self
            .units
            .iter()
            .map(|u| u.path.len())
            .max()
            .unwrap_or(4)
            .max(4);
        s.push_str(&format!(
            "{:wpath$}  {:15} {:5}  {:>8}  {:>18}  {:>12}\n",
            "unit", "verdict", "cache", "cure-ms", "safe/seq/wild/rtti", "checks(in/el)"
        ));
        for u in &self.units {
            let kinds = match &u.report {
                Some(r) => format!("{}/{}/{}/{}", r.safe, r.seq, r.wild, r.rtti),
                None => "-".to_string(),
            };
            let checks = match &u.report {
                Some(r) => format!("{}/{}", r.checks_inserted, r.checks_elided),
                None => "-".to_string(),
            };
            s.push_str(&format!(
                "{:wpath$}  {:15} {:5}  {:>8.2}  {:>18}  {:>12}\n",
                u.path,
                u.verdict.label(),
                if u.from_cache { "hit" } else { "miss" },
                u.cure_timings.total().as_secs_f64() * 1e3,
                kinds,
                checks
            ));
        }
        let t = self.totals();
        s.push_str(&format!(
            "pointer kinds (summed): {} SAFE, {} SEQ, {} WILD, {} RTTI; checks {} inserted / {} elided\n",
            t.safe, t.seq, t.wild, t.rtti, t.checks_inserted, t.checks_elided
        ));
        if self.profiled() {
            s.push_str("hottest check sites across the batch:\n");
            s.push_str(&format!(
                "  {:>4} {:>10} {:>10} {:>6}  {:<16} {:<5} site\n",
                "rank", "cost", "hits", "fails", "check", "ptr"
            ));
            for (rank, (path, r)) in self.hot_sites(10).iter().enumerate() {
                s.push_str(&format!(
                    "  {:>4} {:>10.1} {:>10} {:>6}  {:<16} {:<5} {path}: {} @{}\n",
                    rank + 1,
                    r.cost,
                    r.hits,
                    r.fails,
                    r.site.check,
                    r.site.ptr_kind,
                    r.site.func,
                    r.site.span.lo
                ));
            }
        }
        if self.cache.enabled {
            s.push_str(&format!(
                "cache: {} lookups, {} hits ({:.1}%), {} misses, {} entries written\n",
                self.cache.lookups,
                self.cache.hits,
                self.cache.hit_rate() * 100.0,
                self.cache.misses,
                self.cache.entries_written
            ));
            s.push_str(&format!(
                "  {:10}  {:>5}  {:>6}  {:>9}  {:>9}\n",
                "stage", "hits", "misses", "live-ms", "saved-ms"
            ));
            for (i, name) in STAGE_NAMES.iter().enumerate() {
                let st = &self.cache.stages[i];
                s.push_str(&format!(
                    "  {:10}  {:>5}  {:>6}  {:>9.2}  {:>9.2}\n",
                    name,
                    st.hits,
                    st.misses,
                    st.live.as_secs_f64() * 1e3,
                    st.saved.as_secs_f64() * 1e3
                ));
            }
        } else {
            s.push_str("cache: disabled\n");
        }
        s.push_str(&format!(
            "wall {:.2} ms, cpu {:.2} ms ({:.2}x)\n",
            self.wall.as_secs_f64() * 1e3,
            self.cpu.as_secs_f64() * 1e3,
            if self.wall.as_nanos() == 0 {
                1.0
            } else {
                self.cpu.as_secs_f64() / self.wall.as_secs_f64()
            }
        ));
        for u in &self.units {
            if !u.verdict.is_cured() {
                s.push_str(&format!(
                    "failed: {}: {}: {}\n",
                    u.path,
                    u.verdict.label(),
                    u.verdict.detail()
                ));
            }
        }
        s
    }

    /// Machine-readable report (the `--json` CLI flag and the CI
    /// `batch-smoke` assertion).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"units\":[");
        for (i, u) in self.units.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":{},\"verdict\":\"{}\",\"detail\":{},\"from_cache\":{},\"elapsed_ns\":{},\"cure_ns\":{},\"report\":",
                json_str(&u.path),
                u.verdict.label(),
                json_str(&u.verdict.detail()),
                u.from_cache,
                u.elapsed.as_nanos(),
                u.cure_timings.total().as_nanos()
            ));
            match &u.report {
                Some(r) => {
                    s.push('{');
                    for (j, (name, v)) in r.as_pairs().iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!("\"{name}\":{v}"));
                    }
                    s.push('}');
                }
                None => s.push_str("null"),
            }
            s.push('}');
        }
        let t = self.totals();
        s.push_str(&format!(
            "],\"jobs\":{},\"cured\":{},\"failed\":{},\"kinds\":{{\"safe\":{},\"seq\":{},\"wild\":{},\"rtti\":{}}}",
            self.jobs,
            self.cured(),
            self.failed(),
            t.safe,
            t.seq,
            t.wild,
            t.rtti
        ));
        s.push_str(",\"hot_sites\":[");
        for (i, (path, r)) in self.hot_sites(50).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let reason = match &r.site.keep_reason {
                Some(why) => json_str(why),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "{{\"path\":{},\"func\":{},\"span_lo\":{},\"check\":\"{}\",\"ptr_kind\":\"{}\",\
                 \"static_count\":{},\"elided\":{},\"hits\":{},\"fails\":{},\"walk_steps\":{},\
                 \"cost\":{:.1},\"keep_reason\":{}}}",
                json_str(path),
                json_str(&r.site.func),
                r.site.span.lo,
                r.site.check,
                r.site.ptr_kind,
                r.site.static_count,
                r.site.elided,
                r.hits,
                r.fails,
                r.walk_steps,
                r.cost,
                reason
            ));
        }
        s.push(']');
        s.push_str(&format!(
            ",\"cache\":{{\"enabled\":{},\"lookups\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\"entries_written\":{},\"stages\":{{",
            self.cache.enabled,
            self.cache.lookups,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.entries_written
        ));
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let st = &self.cache.stages[i];
            s.push_str(&format!(
                "\"{name}\":{{\"hits\":{},\"misses\":{},\"live_ns\":{},\"saved_ns\":{}}}",
                st.hits,
                st.misses,
                st.live.as_nanos(),
                st.saved.as_nanos()
            ));
        }
        s.push_str(&format!(
            "}}}},\"wall_ns\":{},\"cpu_ns\":{}}}",
            self.wall.as_nanos(),
            self.cpu.as_nanos()
        ));
        s
    }
}

/// JSON string literal with the escapes the report can actually produce.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(path: &str, cached: bool, cured: bool) -> UnitOutcome {
        UnitOutcome {
            path: path.to_string(),
            verdict: if cured {
                Verdict::Cured
            } else {
                Verdict::Frontend("boom \"quoted\"".to_string())
            },
            from_cache: cached,
            cured_text: "P".to_string(),
            report: cured.then(UnitReport::default),
            report_digest: 7,
            cure_timings: StageTimings::from_ns([10, 20, 30, 40, 50]),
            elapsed: Duration::from_nanos(100),
            site_profile: Vec::new(),
        }
    }

    fn row(path_site: u32, check: &'static str, hits: u64, cost: f64) -> SiteReport {
        SiteReport {
            site: ccured::instrument::CheckSite {
                id: ccured_cil::ir::SiteId(path_site),
                func: "f".into(),
                span: ccured_ast::Span::DUMMY,
                check,
                ptr_kind: "seq",
                static_count: 1,
                elided: 0,
                keep_reason: None,
                opt_action: None,
            },
            hits,
            fails: 0,
            walk_steps: 0,
            cost,
        }
    }

    #[test]
    fn hot_sites_aggregate_across_units_deterministically() {
        let mut a = unit("a.c", false, true);
        let mut b = unit("b.c", false, true);
        a.site_profile = vec![row(0, "seq_bounds", 4, 16.0), row(1, "null", 0, 0.0)];
        b.site_profile = vec![
            row(0, "seq_bounds", 4, 16.0),
            row(1, "wild_bounds", 3, 27.0),
        ];
        let r = BatchReport::new(vec![b, a], 1, Duration::ZERO, false);
        assert!(r.profiled());
        let hot = r.hot_sites(10);
        // Cost first; the 16.0 tie breaks on unit path; zero-hit rows drop.
        let keyed: Vec<(&str, &str)> = hot.iter().map(|(p, r)| (*p, r.site.check)).collect();
        assert_eq!(
            keyed,
            vec![
                ("b.c", "wild_bounds"),
                ("a.c", "seq_bounds"),
                ("b.c", "seq_bounds"),
            ]
        );
        assert_eq!(r.hot_sites(1).len(), 1, "top truncates");
        let rendered = r.render();
        assert!(
            rendered.contains("hottest check sites across the batch"),
            "{rendered}"
        );
        let j = r.to_json();
        assert!(j.contains("\"hot_sites\":[{\"path\":\"b.c\""), "{j}");
        assert!(j.contains("\"check\":\"wild_bounds\""), "{j}");
    }

    #[test]
    fn unprofiled_report_has_no_hot_site_section_but_keeps_json_field() {
        let r = BatchReport::new(vec![unit("a.c", false, true)], 1, Duration::ZERO, false);
        assert!(!r.profiled());
        assert!(!r.render().contains("hottest check sites"));
        assert!(r.to_json().contains("\"hot_sites\":[]"));
    }

    #[test]
    fn report_sorts_units_and_derives_cache_stats() {
        let r = BatchReport::new(
            vec![unit("b.c", true, true), unit("a.c", false, true)],
            4,
            Duration::from_nanos(150),
            true,
        );
        assert_eq!(r.units[0].path, "a.c");
        assert_eq!(r.cache.lookups, 2);
        assert_eq!(r.cache.hits, 1);
        assert_eq!(r.cache.misses, 1);
        assert_eq!(r.cache.entries_written, 1);
        assert!((r.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(r.cache.stages[0].saved, Duration::from_nanos(10));
        assert_eq!(r.cache.stages[4].live, Duration::from_nanos(50));
        assert_eq!(r.cpu, Duration::from_nanos(200));
    }

    #[test]
    fn failed_units_do_not_write_entries() {
        let r = BatchReport::new(vec![unit("x.c", false, false)], 1, Duration::ZERO, true);
        assert_eq!(r.cured(), 0);
        assert_eq!(r.failed(), 1);
        assert_eq!(r.cache.entries_written, 0);
        assert!(r.render().contains("failed: x.c"));
    }

    #[test]
    fn json_escapes_and_shape() {
        let r = BatchReport::new(
            vec![unit("a.c", false, false)],
            2,
            Duration::from_nanos(9),
            true,
        );
        let j = r.to_json();
        assert!(j.contains("\"boom \\\"quoted\\\"\""), "{j}");
        assert!(j.contains("\"hit_rate\":0.000000"), "{j}");
        assert!(j.contains("\"stages\":{\"parse\""), "{j}");
        assert!(j.ends_with('}'), "{j}");
    }

    #[test]
    fn totals_sum_unit_reports() {
        let mut a = unit("a.c", false, true);
        let mut b = unit("b.c", false, true);
        a.report = Some(UnitReport {
            safe: 3,
            wild: 1,
            ..UnitReport::default()
        });
        b.report = Some(UnitReport {
            safe: 2,
            checks_inserted: 5,
            ..UnitReport::default()
        });
        let r = BatchReport::new(vec![a, b], 1, Duration::ZERO, false);
        let t = r.totals();
        assert_eq!((t.safe, t.wild, t.checks_inserted), (5, 1, 5));
        assert!(!r.cache.enabled);
        assert_eq!(r.cache.lookups, 0);
    }
}
