//! The content-addressed on-disk cache (`.ccured-cache/`).
//!
//! One entry per cured unit, keyed by a stable FNV-1a hash of the unit's
//! source text, the curer's configuration fingerprint, and the crate
//! version — so editing a file, changing a flag, or upgrading the curer all
//! invalidate exactly the affected entries, and nothing else. Entries store
//! the cured program text, the flat report summary, the report digest, and
//! the original cure's per-stage timings (which is how a hit knows how much
//! time it saved per stage).
//!
//! The format is a small versioned text header followed by the cured
//! program bytes, length-prefixed so the text survives byte-exactly.
//! Corrupt or version-skewed entries are treated as misses and rewritten;
//! writers go through a unique temp file + rename so concurrent workers can
//! never expose a torn entry.
//!
//! Entries are sharded into 256 subdirectories named by the first two hex
//! characters of the key (`.ccured-cache/ab/ab….unit`), keeping directory
//! fanout flat on large corpora. Valid entries from the old flat layout
//! are migrated into their shard by the startup sweep, so warm caches
//! survive the layout change.

use crate::hash::{fnv1a, from_hex, hex};
use crate::report::UnitReport;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of cached pipeline stages (parse, lower, infer, instrument,
/// optimize).
pub const NSTAGES: usize = 5;

/// On-disk format version; bump on any layout change.
const FORMAT: u32 = 1;

/// Magic first line of every entry.
const MAGIC: &str = "ccured-batch-cache";

/// A cache entry: everything needed to serve a unit without re-curing it.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedUnit {
    /// Pretty-printed cured program (byte-exact).
    pub cured_text: String,
    /// Flat report summary.
    pub report: UnitReport,
    /// FNV-1a digest of the full `CureReport::canonical()` rendering.
    pub report_digest: u64,
    /// Original cure's per-stage cost in nanoseconds, pipeline order.
    pub timings_ns: [u64; NSTAGES],
}

/// Handle to one cache directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Opens (creating if needed) the cache directory and runs a recovery
    /// sweep: orphaned `.tmp` files (a writer that died between write and
    /// rename) and corrupt or truncated `.unit` entries (a torn write from
    /// a killed process, disk-full, or manual tampering) are deleted. The
    /// sweep makes crash recovery *eager* — reads already treat corrupt
    /// entries as misses, the sweep just stops them accumulating.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory. Sweep failures (an entry that
    /// cannot be read or removed) are ignored: the lazy corrupt-is-a-miss
    /// path still guarantees correctness.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let cache = Cache {
            dir: dir.to_path_buf(),
        };
        cache.sweep();
        Ok(cache)
    }

    /// The startup recovery sweep (see [`Cache::open`]). Walks the shard
    /// subdirectories and the top level; valid entries still sitting flat
    /// at the top level (the pre-sharding layout) are moved into their
    /// shard. Returns how many files were deleted:
    /// `(orphaned_tmp, corrupt_entries)`.
    pub fn sweep(&self) -> (u64, u64) {
        let (mut tmp, mut corrupt) = (0u64, 0u64);
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit()) {
                    sweep_dir(&path, &mut tmp, &mut corrupt);
                }
            } else if name.ends_with(".unit") && from_hex(name.trim_end_matches(".unit")).is_some()
            {
                // A flat entry from the pre-sharding layout: migrate it if
                // it still parses, delete it otherwise.
                let ok = fs::read(&path).is_ok_and(|bytes| parse_entry(&bytes).is_some());
                if ok {
                    let shard = self.dir.join(&name[..2]);
                    if fs::create_dir_all(&shard).is_ok() {
                        let _ = fs::rename(&path, shard.join(&*name));
                    }
                } else if fs::remove_file(&path).is_ok() {
                    corrupt += 1;
                }
            } else if name.starts_with('.')
                && name.ends_with(".tmp")
                && fs::remove_file(&path).is_ok()
            {
                tmp += 1;
            }
        }
        (tmp, corrupt)
    }

    /// The stable cache key for one unit: source text + curer configuration
    /// + crate version, all content-addressed (no paths, no mtimes).
    pub fn unit_key(source: &str, config_fingerprint: &str) -> u64 {
        let composite = format!(
            "{MAGIC} {FORMAT}\nversion {}\nconfig {config_fingerprint}\nsource {}\n{source}",
            env!("CARGO_PKG_VERSION"),
            source.len(),
        );
        fnv1a(composite.as_bytes())
    }

    /// The shard subdirectory for a key: the first two hex characters.
    fn shard(&self, key: u64) -> PathBuf {
        self.dir.join(&hex(key)[..2])
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.shard(key).join(format!("{}.unit", hex(key)))
    }

    /// Looks up an entry; any malformed/mismatched entry reads as a miss.
    pub fn load(&self, key: u64) -> Option<CachedUnit> {
        let bytes = fs::read(self.entry_path(key)).ok()?;
        parse_entry(&bytes)
    }

    /// Persists an entry via temp-file + rename.
    ///
    /// # Errors
    ///
    /// I/O errors writing or renaming.
    pub fn store(&self, key: u64, unit: &CachedUnit) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(key);
        fs::create_dir_all(&shard)?;
        // The temp file lives inside the shard so the rename stays within
        // one directory (atomic on every platform we care about).
        let tmp = shard.join(format!(".{}.{}.{}.tmp", hex(key), std::process::id(), seq));
        fs::write(&tmp, render_entry(unit))?;
        fs::rename(&tmp, self.entry_path(key))?;
        Ok(())
    }
}

/// Sweeps one shard directory: orphaned temp files and corrupt entries.
fn sweep_dir(dir: &Path, tmp: &mut u64, corrupt: &mut u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') && name.ends_with(".tmp") {
            // Writers rename away their temp file on success; anything
            // still here belongs to a writer that died mid-store.
            if fs::remove_file(&path).is_ok() {
                *tmp += 1;
            }
        } else if name.ends_with(".unit") {
            let bad = match fs::read(&path) {
                Ok(bytes) => parse_entry(&bytes).is_none(),
                Err(_) => true,
            };
            if bad && fs::remove_file(&path).is_ok() {
                *corrupt += 1;
            }
        }
    }
}

fn render_entry(u: &CachedUnit) -> Vec<u8> {
    let mut head = format!("{MAGIC} {FORMAT}\ndigest {}\ntimings", hex(u.report_digest));
    for t in u.timings_ns {
        head.push_str(&format!(" {t}"));
    }
    head.push('\n');
    for (name, v) in u.report.as_pairs() {
        head.push_str(&format!("{name} {v}\n"));
    }
    head.push_str(&format!("cured {}\n", u.cured_text.len()));
    let mut out = head.into_bytes();
    out.extend_from_slice(u.cured_text.as_bytes());
    out
}

/// Takes the next `\n`-terminated header line starting at `*pos`.
fn next_line<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a str> {
    let rest = bytes.get(*pos..)?;
    let end = rest.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&rest[..end]).ok()?;
    *pos += end + 1;
    Some(line)
}

fn parse_entry(bytes: &[u8]) -> Option<CachedUnit> {
    // Split header lines until the `cured <len>` marker, then take exactly
    // `len` raw bytes.
    let mut pos = 0usize;

    let magic = next_line(bytes, &mut pos)?;
    if magic != format!("{MAGIC} {FORMAT}") {
        return None;
    }
    let digest = from_hex(next_line(bytes, &mut pos)?.strip_prefix("digest ")?)?;
    let timings_line = next_line(bytes, &mut pos)?;
    let mut timings_ns = [0u64; NSTAGES];
    let mut it = timings_line.strip_prefix("timings ")?.split(' ');
    for t in &mut timings_ns {
        *t = it.next()?.parse().ok()?;
    }
    if it.next().is_some() {
        return None;
    }
    let mut report = UnitReport::default();
    let mut cured_len: Option<usize> = None;
    while let Some(line) = next_line(bytes, &mut pos) {
        let (name, value) = line.split_once(' ')?;
        let value: u64 = value.parse().ok()?;
        if name == "cured" {
            cured_len = Some(value as usize);
            break;
        }
        if !report.set_field(name, value) {
            return None;
        }
    }
    let len = cured_len?;
    let body = bytes.get(pos..pos + len)?;
    if pos + len != bytes.len() {
        return None; // trailing garbage: treat as corrupt
    }
    Some(CachedUnit {
        cured_text: String::from_utf8(body.to_vec()).ok()?,
        report,
        report_digest: digest,
        timings_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CachedUnit {
        CachedUnit {
            cured_text: "func main {\n  // cured\n}\n".to_string(),
            report: UnitReport {
                safe: 4,
                seq: 2,
                checks_inserted: 9,
                ..UnitReport::default()
            },
            report_digest: 0xdead_beef_cafe_f00d,
            timings_ns: [1, 2, 3, 4, 5],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("ccured-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn entry_round_trips_byte_exactly() {
        let u = sample();
        assert_eq!(parse_entry(&render_entry(&u)).as_ref(), Some(&u));
    }

    #[test]
    fn store_and_load() {
        let dir = tmpdir("roundtrip");
        let c = Cache::open(&dir).unwrap();
        let key = Cache::unit_key("int main(void){return 0;}", "cfg");
        assert!(c.load(key).is_none(), "cold cache misses");
        c.store(key, &sample()).unwrap();
        assert_eq!(c.load(key), Some(sample()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let u = sample();
        let mut bytes = render_entry(&u);
        bytes.truncate(bytes.len() - 3);
        assert!(parse_entry(&bytes).is_none(), "truncated body");
        let mut bytes = render_entry(&u);
        bytes[0] = b'X';
        assert!(parse_entry(&bytes).is_none(), "bad magic");
        let mut bytes = render_entry(&u);
        bytes.extend_from_slice(b"extra");
        assert!(parse_entry(&bytes).is_none(), "trailing garbage");
    }

    #[test]
    fn open_sweeps_orphaned_tmp_and_corrupt_entries() {
        let dir = tmpdir("sweep");
        fs::create_dir_all(&dir).unwrap();
        // A healthy entry, an orphaned temp file, a truncated entry, and a
        // zero-byte entry.
        let good_key = Cache::unit_key("good", "cfg");
        {
            let c = Cache { dir: dir.clone() };
            c.store(good_key, &sample()).unwrap();
        }
        fs::write(dir.join(".deadbeef.1234.0.tmp"), b"half-written").unwrap();
        let mut torn = render_entry(&sample());
        torn.truncate(torn.len() / 2);
        fs::write(dir.join("0123456789abcdef.unit"), torn).unwrap();
        fs::write(dir.join("fedcba9876543210.unit"), b"").unwrap();

        let c = Cache::open(&dir).unwrap();
        assert_eq!(c.load(good_key), Some(sample()), "healthy entry survives");
        assert!(!dir.join(".deadbeef.1234.0.tmp").exists(), "tmp swept");
        assert!(!dir.join("0123456789abcdef.unit").exists(), "torn swept");
        assert!(!dir.join("fedcba9876543210.unit").exists(), "empty swept");
        // Idempotent: a second sweep finds nothing.
        assert_eq!(c.sweep(), (0, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_shard_by_key_prefix_and_flat_entries_migrate() {
        let dir = tmpdir("shard");
        let c = Cache::open(&dir).unwrap();
        let key = Cache::unit_key("shard me", "cfg");
        c.store(key, &sample()).unwrap();
        let h = hex(key);
        assert!(
            dir.join(&h[..2]).join(format!("{h}.unit")).is_file(),
            "entry lives under its two-hex shard"
        );

        // A valid entry in the pre-sharding flat layout: the open sweep
        // moves it into its shard and it loads as a hit.
        let legacy = Cache::unit_key("legacy entry", "cfg");
        let lh = hex(legacy);
        fs::write(dir.join(format!("{lh}.unit")), render_entry(&sample())).unwrap();
        let c = Cache::open(&dir).unwrap();
        assert!(!dir.join(format!("{lh}.unit")).exists(), "flat file gone");
        assert!(
            dir.join(&lh[..2]).join(format!("{lh}.unit")).is_file(),
            "migrated into its shard"
        );
        assert_eq!(c.load(legacy), Some(sample()), "warm across the layout");

        // Orphaned temp files and corrupt entries inside a shard are swept.
        let shard = dir.join(&h[..2]);
        fs::write(shard.join(".feedface.77.9.tmp"), b"dead writer").unwrap();
        fs::write(shard.join("00aa00aa00aa00aa.unit"), b"garbage").unwrap();
        assert_eq!(c.sweep(), (1, 1));
        assert_eq!(c.load(key), Some(sample()), "healthy entry survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_source_config_and_version() {
        let a = Cache::unit_key("src", "cfg");
        assert_eq!(a, Cache::unit_key("src", "cfg"), "stable");
        assert_ne!(a, Cache::unit_key("src2", "cfg"), "source-addressed");
        assert_ne!(a, Cache::unit_key("src", "cfg2"), "config-addressed");
    }
}
