//! Property tests for the physical type algebra (paper Section 3.1) and
//! its agreement with the RTTI hierarchy (Section 3.2).

use ccured::Hierarchy;
use ccured_cil::phys::PhysCtx;
use ccured_cil::types::TypeId;
use proptest::prelude::*;

/// A tiny generator of C type declarations: builds a program declaring a
/// family of struct types plus pointers to them, from a recipe of field
/// lists. Each recipe entry is a sequence of field codes:
/// 0=int, 1=long, 2=double, 3=char, 4=ptr-to-int.
fn program_from_recipes(recipes: &[Vec<u8>]) -> String {
    let mut src = String::new();
    for (i, fields) in recipes.iter().enumerate() {
        let mut body = String::new();
        for (j, f) in fields.iter().enumerate() {
            let field = match f % 5 {
                0 => format!("int f{j};"),
                1 => format!("long f{j};"),
                2 => format!("double f{j};"),
                3 => format!("char f{j};"),
                _ => format!("int *f{j};"),
            };
            body.push_str(&field);
            body.push(' ');
        }
        if fields.is_empty() {
            body.push_str("int f0;");
        }
        src.push_str(&format!("struct S{i} {{ {body} }};\n"));
        src.push_str(&format!("struct S{i} *p{i};\n"));
    }
    src
}

fn pointees(src: &str) -> (ccured_cil::Program, Vec<TypeId>) {
    let tu = ccured_ast::parse_translation_unit(src).expect("parse");
    let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
    let ts: Vec<TypeId> = prog
        .globals
        .iter()
        .filter_map(|g| prog.types.ptr_parts(g.ty).map(|(b, _)| b))
        .collect();
    (prog, ts)
}

fn recipe_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..5, 1..6), 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn phys_eq_is_reflexive_and_symmetric(recipes in recipe_strategy()) {
        let src = program_from_recipes(&recipes);
        let (prog, ts) = pointees(&src);
        let mut ctx = PhysCtx::new(&prog.types);
        for &a in &ts {
            prop_assert!(ctx.phys_eq(a, a), "reflexivity");
            for &b in &ts {
                prop_assert_eq!(ctx.phys_eq(a, b), ctx.phys_eq(b, a), "symmetry");
            }
        }
    }

    #[test]
    fn phys_eq_is_transitive(recipes in recipe_strategy()) {
        let src = program_from_recipes(&recipes);
        let (prog, ts) = pointees(&src);
        let mut ctx = PhysCtx::new(&prog.types);
        for &a in &ts {
            for &b in &ts {
                for &c in &ts {
                    if ctx.phys_eq(a, b) && ctx.phys_eq(b, c) {
                        prop_assert!(ctx.phys_eq(a, c), "transitivity");
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_is_reflexive_and_transitive(recipes in recipe_strategy()) {
        let src = program_from_recipes(&recipes);
        let (prog, ts) = pointees(&src);
        let mut ctx = PhysCtx::new(&prog.types);
        for &a in &ts {
            prop_assert!(ctx.is_prefix_of(a, a), "prefix reflexivity");
            for &b in &ts {
                for &c in &ts {
                    if ctx.is_prefix_of(a, b) && ctx.is_prefix_of(b, c) {
                        prop_assert!(ctx.is_prefix_of(a, c), "prefix transitivity");
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_antisymmetry_up_to_phys_eq(recipes in recipe_strategy()) {
        let src = program_from_recipes(&recipes);
        let (prog, ts) = pointees(&src);
        let mut ctx = PhysCtx::new(&prog.types);
        for &a in &ts {
            for &b in &ts {
                if ctx.is_prefix_of(a, b) && ctx.is_prefix_of(b, a) {
                    prop_assert!(ctx.phys_eq(a, b), "mutual prefixes are physically equal");
                }
            }
        }
    }

    #[test]
    fn prefix_implies_size_ordering(recipes in recipe_strategy()) {
        let src = program_from_recipes(&recipes);
        let (prog, ts) = pointees(&src);
        let mut ctx = PhysCtx::new(&prog.types);
        for &a in &ts {
            for &b in &ts {
                if ctx.is_prefix_of(a, b) {
                    let sa = prog.types.size_of(a).unwrap_or(0);
                    let sb = prog.types.size_of(b).unwrap_or(0);
                    prop_assert!(sa <= sb, "a prefix is never larger");
                }
            }
        }
    }

    #[test]
    fn hierarchy_agrees_with_prefix(recipes in recipe_strategy()) {
        let src = program_from_recipes(&recipes);
        let (prog, ts) = pointees(&src);
        let hier = Hierarchy::build(&prog);
        let mut ctx = PhysCtx::new(&prog.types);
        for &a in &ts {
            for &b in &ts {
                let (na, nb) = match (hier.node_of(&prog, a), hier.node_of(&prog, b)) {
                    (Some(x), Some(y)) => (x, y),
                    _ => continue,
                };
                let walk = hier.is_subtype_walk(na, nb).0;
                let interval = hier.is_subtype_interval(na, nb);
                prop_assert_eq!(walk, interval, "the two encodings agree");
                if walk {
                    prop_assert!(
                        ctx.is_prefix_of(b, a),
                        "isSubtype(a, b) implies b is a physical prefix of a"
                    );
                }
                // The converse within the registered node set.
                if ctx.is_prefix_of(b, a) {
                    prop_assert!(
                        walk,
                        "prefix relation must be reflected in the hierarchy"
                    );
                }
            }
        }
    }

    #[test]
    fn seq_cast_ok_is_symmetric_for_equal_tiles(recipes in recipe_strategy()) {
        let src = program_from_recipes(&recipes);
        let (prog, ts) = pointees(&src);
        let mut ctx = PhysCtx::new(&prog.types);
        for &a in &ts {
            prop_assert!(ctx.seq_cast_ok(a, a), "seq tiling is reflexive");
            for &b in &ts {
                prop_assert_eq!(
                    ctx.seq_cast_ok(a, b),
                    ctx.seq_cast_ok(b, a),
                    "seq tiling is symmetric"
                );
            }
        }
    }

    #[test]
    fn classification_is_exhaustive_and_exclusive(recipes in recipe_strategy()) {
        use ccured_cil::phys::CastClass;
        let src = program_from_recipes(&recipes);
        let (prog, ts) = pointees(&src);
        // classify the pointer types, not the pointees.
        let ptrs: Vec<TypeId> = prog
            .globals
            .iter()
            .map(|g| g.ty)
            .collect();
        let mut ctx = PhysCtx::new(&prog.types);
        for &a in &ptrs {
            for &b in &ptrs {
                let class = ctx.classify_cast(a, b);
                let (pa, pb) = (
                    prog.types.ptr_parts(a).unwrap().0,
                    prog.types.ptr_parts(b).unwrap().0,
                );
                match class {
                    CastClass::Identical => prop_assert!(ctx.phys_eq(pa, pb)),
                    CastClass::Upcast => {
                        prop_assert!(ctx.is_prefix_of(pb, pa) && !ctx.phys_eq(pa, pb))
                    }
                    CastClass::Downcast => {
                        prop_assert!(ctx.is_prefix_of(pa, pb) && !ctx.phys_eq(pa, pb))
                    }
                    CastClass::Bad => {
                        prop_assert!(!ctx.is_prefix_of(pa, pb) && !ctx.is_prefix_of(pb, pa))
                    }
                    other => prop_assert!(false, "pointer cast classified {other:?}"),
                }
            }
        }
        let _ = ts;
    }
}
