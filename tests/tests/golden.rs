//! Golden-file snapshots of the pretty-printers: every `examples/c`
//! program is parsed and cured, and the AST printer's and the cured CIL
//! printer's output must match the checked-in `tests/golden/<name>.golden`
//! byte for byte (after trailing-whitespace normalization).
//!
//! To regenerate intentionally after a printer change:
//!
//! ```text
//! make bless            # = BLESS=1 cargo test -p ccured-integration --test golden
//! ```

use std::path::{Path, PathBuf};

fn examples_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../examples/c")
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn blessing() -> bool {
    std::env::var_os("BLESS").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Strips trailing whitespace per line and normalizes to one trailing
/// newline, so editor/platform noise can never fail a snapshot.
fn normalize(s: &str) -> String {
    let mut out: String = s
        .lines()
        .map(|l| l.trim_end())
        .collect::<Vec<_>>()
        .join("\n");
    while out.ends_with('\n') {
        out.pop();
    }
    out.push('\n');
    out
}

/// The snapshot for one example: the parsed AST pretty-printed, then the
/// cured program dumped, under labelled section headers.
fn snapshot(source: &str) -> String {
    let tu = ccured_ast::parse_translation_unit(source)
        .unwrap_or_else(|d| panic!("parse failed: {}", d.msg));
    let curer = ccured::Curer::new();
    let cured = curer.cure_source(source).expect("cure failed");
    format!(
        "== ast ==\n{}\n== cured ==\n{}",
        ccured_ast::pretty::print_unit(&tu),
        ccured_cil::pretty::dump_program(&cured.program)
    )
}

#[test]
fn golden_snapshots_match() {
    let mut examples: Vec<PathBuf> = std::fs::read_dir(examples_dir())
        .expect("examples/c exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    examples.sort();
    assert!(
        examples.len() >= 6,
        "expected at least 6 example programs, found {}",
        examples.len()
    );

    let mut stale = Vec::new();
    for example in &examples {
        let name = example.file_stem().unwrap().to_string_lossy().to_string();
        let source = std::fs::read_to_string(example).expect("read example");
        let got = normalize(&snapshot(&source));
        let golden_path = golden_dir().join(format!("{name}.golden"));
        if blessing() {
            std::fs::create_dir_all(golden_dir()).expect("create golden dir");
            std::fs::write(&golden_path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run `make bless`",
                golden_path.display()
            )
        });
        if normalize(&want) != got {
            // Show the first diverging line to make drift debuggable.
            let want_n = normalize(&want);
            let diverge = want_n
                .lines()
                .zip(got.lines())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| want_n.lines().count().min(got.lines().count()));
            stale.push(format!("{name} (first difference at line {})", diverge + 1));
        }
    }
    assert!(
        stale.is_empty(),
        "pretty-printer output drifted from golden files: {}.\n\
         If the change is intentional, regenerate with `make bless` and review the diff.",
        stale.join(", ")
    );
}

#[test]
fn golden_dir_has_no_orphans() {
    if blessing() {
        return;
    }
    let examples: Vec<String> = std::fs::read_dir(examples_dir())
        .expect("examples/c exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().to_string())
        .collect();
    for entry in std::fs::read_dir(golden_dir()).expect("golden dir exists") {
        let p = entry.expect("dir entry").path();
        if p.extension().is_some_and(|x| x == "golden") {
            let name = p.file_stem().unwrap().to_string_lossy().to_string();
            assert!(
                examples.contains(&name),
                "{} has no matching examples/c program; delete it or add the example",
                p.display()
            );
        }
    }
}
