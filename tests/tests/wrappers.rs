//! Behavioural tests for the stdlib wrapper library (paper Section 4.1):
//! each wrapped function is exercised through a cured program, including
//! the bounds failures the wrappers exist to catch.

use ccured::Curer;
use ccured_rt::{ExecMode, Interp, RtError};

fn run(src: &str) -> Result<i64, RtError> {
    let cured = Curer::new()
        .with_stdlib_wrappers()
        .cure_source(src)
        .expect("cure");
    let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
    i.run()
}

fn run_expect(src: &str, expect: i64) {
    assert_eq!(run(src).expect("run"), expect);
}

fn run_expect_check_failure(src: &str) {
    let e = run(src).expect_err("must be caught");
    assert!(e.is_check_failure(), "expected a check failure, got {e}");
}

#[test]
fn strlen_and_strcpy() {
    run_expect(
        r#"int main(void) {
            char b[32];
            strcpy(b, "twelve chars");
            return (int)strlen(b);
        }"#,
        12,
    );
}

#[test]
fn strchr_and_strrchr() {
    run_expect(
        r#"int main(void) {
            char b[16];
            strcpy(b, "a/b/c");
            char *first = strchr(b, '/');
            char *last = strrchr(b, '/');
            if (first == 0 || last == 0) return 100;
            return (int)(last - first);
        }"#,
        2,
    );
}

#[test]
fn strstr_finds_and_returns_fat_pointer() {
    run_expect(
        r#"int main(void) {
            char b[32];
            strcpy(b, "GET /index.html");
            char *hit = strstr(b, "index");
            if (hit == 0) return 100;
            /* The wrapper rebuilt bounds from the haystack: writing through
               the result within the buffer is legal. */
            hit[0] = 'I';
            return b[5] == 'I' ? 0 : 1;
        }"#,
        0,
    );
}

#[test]
fn strstr_miss_returns_null() {
    run_expect(
        r#"int main(void) {
            char b[16];
            strcpy(b, "abc");
            return strstr(b, "zq") == 0 ? 0 : 1;
        }"#,
        0,
    );
}

#[test]
fn strncat_within_bounds() {
    run_expect(
        r#"int main(void) {
            char b[16];
            strcpy(b, "ab");
            strncat(b, "cdefgh", 3);
            return (int)strlen(b);
        }"#,
        5,
    );
}

#[test]
fn strncat_overflow_caught() {
    run_expect_check_failure(
        r#"int main(void) {
            char b[8];
            strcpy(b, "abcdef");
            strncat(b, "ghijklmn", 8);
            return 0;
        }"#,
    );
}

#[test]
fn memchr_within_explicit_length() {
    run_expect(
        r#"int main(void) {
            char b[8];
            for (int i = 0; i < 8; i++) b[i] = (char)(i + 1);
            char *hit = memchr(b, 5, 8);
            if (hit == 0) return 100;
            return (int)(hit - b);
        }"#,
        4,
    );
}

#[test]
fn memchr_bad_length_caught() {
    run_expect_check_failure(
        r#"int main(void) {
            char b[8];
            b[0] = 1;
            memchr(b, 9, 32);
            return 0;
        }"#,
    );
}

#[test]
fn strdup_result_is_writable_and_bounded() {
    run_expect(
        r#"int main(void) {
            char b[8];
            strcpy(b, "dup");
            char *d = strdup(b);
            d[0] = 'D';
            int ok = strcmp(d, "Dup") == 0 && strcmp(b, "dup") == 0;
            return ok ? 0 : 1;
        }"#,
        0,
    );
}

#[test]
fn strdup_overflow_caught() {
    run_expect_check_failure(
        r#"int main(void) {
            char b[8];
            strcpy(b, "dup");
            char *d = strdup(b);
            /* the duplicate is exactly 4 bytes */
            d[10] = 'x';
            return 0;
        }"#,
    );
}

#[test]
fn ctype_helpers_direct() {
    run_expect(
        r#"extern int isdigit(int c);
        extern int isalpha(int c);
        extern int toupper(int c);
        extern int tolower(int c);
        int main(void) {
            int score = 0;
            if (isdigit('7')) score += 1;
            if (!isdigit('x')) score += 2;
            if (isalpha('x')) score += 4;
            if (toupper('a') == 'A') score += 8;
            if (tolower('Z') == 'z') score += 16;
            return score;
        }"#,
        31,
    );
}

#[test]
fn strcmp_family() {
    run_expect(
        r#"int main(void) {
            char a[8];
            char b[8];
            strcpy(a, "abc");
            strcpy(b, "abd");
            int r = 0;
            if (strcmp(a, b) < 0) r += 1;
            if (strncmp(a, b, 2) == 0) r += 2;
            if (strcmp(a, a) == 0) r += 4;
            return r;
        }"#,
        7,
    );
}

#[test]
fn memcpy_and_memset_roundtrip() {
    run_expect(
        r#"int main(void) {
            char src[8];
            char dst[8];
            memset(src, 7, 8);
            memcpy(dst, src, 8);
            int s = 0;
            for (int i = 0; i < 8; i++) s += dst[i];
            return s;
        }"#,
        56,
    );
}

#[test]
fn memcpy_overflow_caught() {
    run_expect_check_failure(
        r#"int main(void) {
            char src[16];
            char dst[8];
            memset(src, 1, 16);
            memcpy(dst, src, 16);
            return 0;
        }"#,
    );
}

#[test]
fn wrapped_calls_preserve_original_behaviour() {
    // The same program uncured must produce the same result (wrappers are
    // transparent when nothing overflows).
    let src = r#"int main(void) {
        char b[24];
        strcpy(b, "hello");
        strcat(b, " world");
        char *w = strstr(b, "world");
        return w != 0 ? (int)strlen(b) : 100;
    }"#;
    let full = format!("{}\n{src}", ccured::wrappers::stdlib_wrapper_source());
    let tu = ccured_ast::parse_translation_unit(&full).unwrap();
    let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
    let mut orig = Interp::new(&prog, ExecMode::Original);
    assert_eq!(orig.run().unwrap(), 11);
    assert_eq!(run(src).unwrap(), 11);
}
