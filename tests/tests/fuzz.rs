//! Robustness fuzzing: the frontend must never panic on arbitrary input,
//! lowering+execution must agree with an independent Rust oracle on
//! randomly generated arithmetic programs, and the interpreter must honour
//! its sandbox ([`Limits`]) on everything the fuzzer can construct.

use ccured::Curer;
use ccured_rt::{ExecMode, Interp, Limits};
use proptest::prelude::*;

// ---------------------------------------------------------------- frontend

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the lexer/parser may reject, never panic.
    #[test]
    fn parser_never_panics_on_garbage(s in "\\PC*") {
        let _ = ccured_ast::parse_translation_unit(&s);
    }

    /// C-ish token soup: higher densities of real syntax.
    #[test]
    fn parser_never_panics_on_token_soup(
        toks in prop::collection::vec(
            prop::sample::select(vec![
                "int", "char", "struct", "{", "}", "(", ")", ";", "*", "x",
                "y", "=", "+", "return", "if", "else", "while", "for", "[",
                "]", "42", "\"s\"", ",", "->", "&", "void", "typedef", "T",
                "case", "switch", "goto", "...", "__SAFE", "#pragma p",
            ]),
            0..64,
        )
    ) {
        let src = toks.join(" ");
        let _ = ccured_ast::parse_translation_unit(&src);
    }

    /// Anything that parses must also lower-or-reject without panicking,
    /// and anything that lowers must cure without panicking. Whatever
    /// cures must then *run* inside the default sandbox without panicking
    /// and without the heap ever exceeding the configured cap — the
    /// hardened-interpreter guarantee, checked on adversarial inputs.
    #[test]
    fn pipeline_never_panics_on_parsed_soup(
        toks in prop::collection::vec(
            prop::sample::select(vec![
                "int", "f", "g", "(", ")", "{", "}", ";", "*", "p", "q",
                "=", "+", "-", "return", "0", "1", "&", ",", "void", "[", "]",
                "2", "if", "(", ")", "char", "main", "while",
            ]),
            0..48,
        )
    ) {
        let src = toks.join(" ");
        if let Ok(tu) = ccured_ast::parse_translation_unit(&src) {
            if let Ok(prog) = ccured_cil::lower_translation_unit(&tu) {
                if let Ok(cured) = Curer::new().cure_program(prog) {
                    let limits = Limits { fuel: 200_000, ..Limits::default() };
                    let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
                    i.set_limits(limits);
                    // Errors (including limit trips) are fine; panics are
                    // not, and proptest reports them as failures here.
                    let _ = i.run();
                    prop_assert!(
                        i.counters.peak_heap_bytes <= limits.max_heap_bytes,
                        "heap cap exceeded: {} > {} on:\n{}",
                        i.counters.peak_heap_bytes, limits.max_heap_bytes, src
                    );
                    prop_assert!(
                        i.counters.peak_stack_depth <= limits.max_stack_depth as u64,
                        "stack cap exceeded: {} > {} on:\n{}",
                        i.counters.peak_stack_depth, limits.max_stack_depth, src
                    );
                }
            }
        }
    }
}

// ------------------------------------------------------------------ oracle

/// A little expression AST with a Rust-side evaluator (the oracle) and a
/// C renderer. All arithmetic is `i64`-wrapping to match `long` on the
/// target machine.
#[derive(Debug, Clone)]
enum E {
    Num(i8),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Neg(Box<E>),
    Shl(Box<E>, u8),
    And(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Cond(Box<E>, Box<E>, Box<E>),
}

const VARS: [(&str, i64); 4] = [("a", 3), ("b", -7), ("c", 100), ("d", 0)];

impl E {
    fn eval(&self) -> Option<i64> {
        Some(match self {
            E::Num(n) => *n as i64,
            E::Var(i) => VARS[*i % VARS.len()].1,
            E::Add(x, y) => x.eval()?.wrapping_add(y.eval()?),
            E::Sub(x, y) => x.eval()?.wrapping_sub(y.eval()?),
            E::Mul(x, y) => x.eval()?.wrapping_mul(y.eval()?),
            E::Div(x, y) => {
                let d = y.eval()?;
                if d == 0 {
                    return None; // UB: the generator filters these out
                }
                x.eval()?.wrapping_div(d)
            }
            E::Rem(x, y) => {
                let d = y.eval()?;
                if d == 0 {
                    return None;
                }
                x.eval()?.wrapping_rem(d)
            }
            E::Neg(x) => x.eval()?.wrapping_neg(),
            E::Shl(x, s) => x.eval()?.wrapping_shl((*s % 16) as u32),
            E::And(x, y) => x.eval()? & y.eval()?,
            E::Xor(x, y) => x.eval()? ^ y.eval()?,
            E::Lt(x, y) => (x.eval()? < y.eval()?) as i64,
            E::Cond(c, t, f) => {
                if c.eval()? != 0 {
                    t.eval()?
                } else {
                    f.eval()?
                }
            }
        })
    }

    fn render(&self) -> String {
        match self {
            E::Num(n) => format!("{n}"),
            E::Var(i) => VARS[*i % VARS.len()].0.to_string(),
            E::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            E::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            E::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            E::Div(x, y) => format!("({} / {})", x.render(), y.render()),
            E::Rem(x, y) => format!("({} % {})", x.render(), y.render()),
            // NB: a space after the minus, or `-(-5)` would render as the
            // `--` decrement token (a genuine C lexing pitfall).
            E::Neg(x) => format!("(- {})", x.render()),
            E::Shl(x, s) => format!("({} << {})", x.render(), s % 16),
            E::And(x, y) => format!("({} & {})", x.render(), y.render()),
            E::Xor(x, y) => format!("({} ^ {})", x.render(), y.render()),
            E::Lt(x, y) => format!("({} < {})", x.render(), y.render()),
            E::Cond(c, t, f) => {
                format!("({} ? {} : {})", c.render(), t.render(), f.render())
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![any::<i8>().prop_map(E::Num), (0usize..4).prop_map(E::Var),];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Neg(a.into())),
            (inner.clone(), any::<u8>()).prop_map(|(a, s)| E::Shl(a.into(), s)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| E::Cond(
                c.into(),
                t.into(),
                f.into()
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lowering + both execution modes must agree with the Rust oracle on
    /// `long` arithmetic.
    #[test]
    fn expression_oracle_differential(e in expr_strategy()) {
        let expected = match e.eval() {
            Some(v) => v,
            None => return Ok(()), // division by zero somewhere: skip
        };
        let reduced = (expected & 0x3f) as i64;
        let src = format!(
            "long a; long b; long c; long d;\n\
             int main(void) {{\n\
               a = 3; b = -7; c = 100; d = 0;\n\
               long v = {};\n\
               return (int)(v & 0x3f);\n\
             }}",
            e.render()
        );
        // Original mode.
        let tu = ccured_ast::parse_translation_unit(&src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let mut i = Interp::new(&prog, ExecMode::Original);
        prop_assert_eq!(i.run().expect("original run"), reduced, "original vs oracle:\n{}", src);
        // Cured mode.
        let cured = Curer::new().cure_source(&src).expect("cure");
        let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
        prop_assert_eq!(i.run().expect("cured run"), reduced, "cured vs oracle:\n{}", src);
    }
}
