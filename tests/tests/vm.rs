//! Differential testing of the bytecode VM against the tree-walking
//! reference interpreter.
//!
//! The tree engine (`--engine tree`) is the reference semantics; the VM
//! must be *observably identical* on every axis the harnesses and the cost
//! model can see: exit code or error, every byte of program output, and
//! every event counter (instruction steps, loads/stores, per-kind check
//! counts, fuel accounting). The corpus is the full golden workload suite
//! plus 120 seeded fault-injection mutants, so both the happy paths and
//! the check-failure/error paths are pinned.

use ccured::{isolated, Curer};
use ccured_cil::Program;
use ccured_faultinject::{mutate, FaultClass};
use ccured_rt::{Counters, Engine, ExecMode, Interp, Limits, RtError};
use ccured_workloads::prng::SplitMix64;
use ccured_workloads::{batch_corpus, micro, suite_corpus, Workload};

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct Observed {
    result: Result<i64, RtError>,
    output: Vec<u8>,
    counters: Counters,
}

fn observe(
    prog: &Program,
    mode: ExecMode<'_>,
    engine: Engine,
    input: &[u8],
    limits: Limits,
    zero_init: bool,
) -> Observed {
    let mut interp = Interp::new(prog, mode);
    interp.set_engine(engine);
    interp.set_limits(limits);
    interp.set_zero_init(zero_init);
    interp.set_input(input.to_vec());
    let result = interp.run();
    Observed {
        result,
        output: interp.output().to_vec(),
        counters: interp.counters,
    }
}

/// Runs both engines and asserts byte-for-byte agreement.
fn assert_engines_agree(
    what: &str,
    prog: &Program,
    mode: ExecMode<'_>,
    input: &[u8],
    limits: Limits,
    zero_init: bool,
) -> Observed {
    let tree = observe(prog, mode, Engine::Tree, input, limits, zero_init);
    let vm = observe(prog, mode, Engine::Vm, input, limits, zero_init);
    assert_eq!(
        tree.result, vm.result,
        "{what}: engines disagree on the result"
    );
    assert_eq!(
        tree.output, vm.output,
        "{what}: engines disagree on program output"
    );
    assert_eq!(
        tree.counters, vm.counters,
        "{what}: engines disagree on counters"
    );
    vm
}

fn lower(w: &Workload) -> Program {
    let full = if w.with_wrappers {
        format!(
            "{}\n{}",
            ccured::wrappers::stdlib_wrapper_source(),
            w.source
        )
    } else {
        w.source.clone()
    };
    let tu = ccured_ast::parse_translation_unit(&full).expect("parse");
    ccured_cil::lower_translation_unit(&tu).expect("lower")
}

fn cure(w: &Workload) -> ccured::Cured {
    let mut curer = Curer::new();
    if w.with_wrappers {
        curer.with_stdlib_wrappers();
    }
    curer.cure_source(&w.source).expect("cure")
}

fn golden_workloads() -> Vec<Workload> {
    let mut ws = suite_corpus();
    for w in batch_corpus() {
        if !ws.iter().any(|x| x.name == w.name) {
            ws.push(w);
        }
    }
    ws
}

/// The full golden corpus, cured, under both engines: identical exit codes,
/// output and counters — and the expected exit code actually reached.
#[test]
fn golden_corpus_cured_is_identical_across_engines() {
    for w in golden_workloads() {
        let cured = cure(&w);
        let got = assert_engines_agree(
            &w.name,
            &cured.program,
            ExecMode::cured(&cured),
            &w.input,
            Limits::default(),
            false,
        );
        assert_eq!(
            got.result.as_ref().copied().expect("runs clean"),
            w.expect_exit,
            "{}: unexpected exit",
            w.name
        );
        assert!(got.counters.total_checks() > 0, "{}: no checks ran", w.name);
    }
}

/// Original (uncured) semantics under both engines — the engine switch is
/// orthogonal to the instrumentation mode.
#[test]
fn golden_corpus_original_is_identical_across_engines() {
    for w in golden_workloads() {
        let prog = lower(&w);
        assert_engines_agree(
            &w.name,
            &prog,
            ExecMode::Original,
            &w.input,
            Limits::default(),
            false,
        );
    }
}

/// The baseline instrumentation modes carry per-step shadow work (including
/// the Valgrind JIT-dispatch PRNG), which the VM batches; the counters must
/// still match exactly.
#[test]
fn baseline_modes_are_identical_across_engines() {
    let ws = [
        micro::safe_deref(60),
        micro::seq_index(24),
        micro::wild_loop(8),
    ];
    for w in &ws {
        let prog = lower(w);
        for (label, mode) in [
            ("purify", ExecMode::Purify),
            ("valgrind", ExecMode::Valgrind),
            ("joneskelly", ExecMode::JonesKelly),
        ] {
            assert_engines_agree(
                &format!("{} ({label})", w.name),
                &prog,
                mode,
                &w.input,
                Limits::default(),
                false,
            );
        }
    }
}

/// Fuel exhaustion must hit at the exact same step on both engines, for
/// fuel values that cut execution off at arbitrary points — including
/// mid-statement, mid-expression and inside check operands.
#[test]
fn fuel_exhaustion_is_step_exact_across_engines() {
    let w = micro::seq_index(16);
    let cured = cure(&w);
    for fuel in [1u64, 7, 50, 333, 1000, 4096, 20_000] {
        let limits = Limits {
            fuel,
            ..Limits::default()
        };
        let got = assert_engines_agree(
            &format!("{} fuel={fuel}", w.name),
            &cured.program,
            ExecMode::cured(&cured),
            &w.input,
            limits,
            false,
        );
        if got.result == Err(RtError::OutOfFuel) {
            // The failing step is counted (fuel + 1) — unless it fell inside
            // a check operand, whose instruction snapshot is restored on the
            // way out (then the count sits at or below the fuel line).
            assert!(
                got.counters.instrs <= fuel + 1,
                "fuel={fuel}: counted past the failing step ({})",
                got.counters.instrs
            );
        }
    }
}

/// 120 seeded fault-injection mutants (same seeding discipline as the
/// crash-test harness), each cured and run under both engines: identical
/// results, outputs and counters — hence identical Caught/Escaped/Masked
/// verdicts.
#[test]
fn faultinject_mutants_are_identical_across_engines() {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    const MUTANTS: usize = 120;
    let ws = [
        micro::seq_index(8),
        micro::safe_deref(6),
        micro::ptr_store(4),
        micro::rtti_dispatch(6),
    ];
    let bases: Vec<(String, Vec<u8>, Program)> = ws
        .iter()
        .map(|w| (w.name.clone(), w.input.clone(), lower(w)))
        .collect();
    let limits = Limits {
        fuel: 2_000_000,
        max_stack_depth: 96,
        max_heap_bytes: 32 << 20,
        deadline: None,
    };
    let ncls = FaultClass::ALL.len();
    let mut compared = 0usize;
    let mut caught = 0usize;
    for id in 0..MUTANTS {
        let mut rng = SplitMix64::new(0xD1F ^ (id as u64).wrapping_mul(GOLDEN));
        let (name, input, base) = &bases[(id / ncls) % bases.len()];
        let pref = id % ncls;
        let mut seeded = None;
        for k in 0..ncls {
            let class = FaultClass::ALL[(pref + k) % ncls];
            let mut prog = base.clone();
            if let Some(m) = mutate(&mut prog, class, &mut rng) {
                seeded = Some((m, prog));
                break;
            }
        }
        let Some((mutation, prog)) = seeded else {
            continue;
        };
        let Ok(cured) = isolated(|| Curer::new().cure_program(prog)) else {
            continue; // a mutant the curer rejects has nothing to execute
        };
        let what = format!("mutant #{id} ({name}, {})", mutation.class);
        let got = assert_engines_agree(
            &what,
            &cured.program,
            ExecMode::cured(&cured),
            input,
            limits,
            true,
        );
        compared += 1;
        match &got.result {
            Err(RtError::CheckFailed { .. }) => caught += 1,
            Err(e) => assert!(
                !e.is_memory_error(),
                "{what}: fault escaped as a raw memory error on BOTH engines: {e}"
            ),
            Ok(_) => {}
        }
    }
    assert!(
        compared >= 100,
        "need at least 100 executable mutants, got {compared}"
    );
    assert!(caught > 0, "no mutant was caught by a check");
}

/// Deep recursion exercises the VM's explicit frame stack (the tree engine
/// recurses on the host stack); both must agree on counters and on where
/// the stack limit trips.
#[test]
fn recursion_and_stack_limit_are_identical_across_engines() {
    let src = "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
               int main(void) { return fib(17); }";
    let w = Workload::new("fib", src).without_wrappers();
    let cured = cure(&w);
    let got = assert_engines_agree(
        "fib",
        &cured.program,
        ExecMode::cured(&cured),
        &[],
        Limits::default(),
        false,
    );
    assert_eq!(got.result.expect("fib runs"), 1597);

    let deep = "int down(int n) { if (n == 0) return 0; return down(n - 1); }\n\
                int main(void) { return down(100000); }";
    let w = Workload::new("deep", deep).without_wrappers();
    let cured = cure(&w);
    let got = assert_engines_agree(
        "deep",
        &cured.program,
        ExecMode::cured(&cured),
        &[],
        Limits::default(),
        false,
    );
    assert!(
        matches!(&got.result, Err(RtError::LimitExceeded { limit, .. }) if *limit == "stack_limit"),
        "got {:?}",
        got.result
    );
}

/// Goto corner cases: backward/forward jumps, jumps out of nested blocks,
/// and a goto whose label is not visible from the jump site (an
/// `Unsupported` error in the reference engine).
#[test]
fn goto_semantics_are_identical_across_engines() {
    let visible = "int main(void) {\n\
                     int i = 0; int s = 0;\n\
                     again: i++;\n\
                     { if (i < 5) goto again; }\n\
                     while (1) { s += i; if (s > 20) goto out; }\n\
                     out: return s;\n\
                   }";
    let w = Workload::new("goto_ok", visible).without_wrappers();
    let prog = lower(&w);
    let got = assert_engines_agree(
        "goto_ok",
        &prog,
        ExecMode::Original,
        &[],
        Limits::default(),
        false,
    );
    assert_eq!(got.result.expect("runs"), 25);
}
