//! Differential determinism for the batch engine (`ccured-batch`):
//! curing the micro+Olden corpus with `--jobs 1`, `--jobs 8`, and a warm
//! cache must produce byte-identical cured output and identical reports
//! per unit; a warm rerun hits 100% and is ≥5× faster than sequential
//! cold; touching one file re-cures only that unit.

use ccured_batch::{run_batch, BatchConfig, BatchReport, Verdict};
use std::path::PathBuf;

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("ccured-batch-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn corpus_in(dir: &std::path::Path) -> Vec<PathBuf> {
    ccured_workloads::write_units(dir, &ccured_workloads::batch_corpus()).expect("write corpus")
}

fn config(jobs: usize, cache_dir: Option<&std::path::Path>) -> BatchConfig {
    let mut cfg = BatchConfig::new(ccured::Curer::new());
    cfg.jobs = jobs;
    match cache_dir {
        Some(d) => cfg.cache_dir = d.to_path_buf(),
        None => cfg.use_cache = false,
    }
    cfg
}

/// Every unit of `a` and `b` must agree on everything user-visible:
/// verdict, cured text (byte-identical), flat report, and the digest of
/// the full canonical `CureReport`.
fn assert_identical(a: &BatchReport, b: &BatchReport, what: &str) {
    assert_eq!(a.units.len(), b.units.len(), "{what}: unit counts differ");
    for (ua, ub) in a.units.iter().zip(&b.units) {
        assert_eq!(ua.path, ub.path, "{what}: unit order differs");
        assert_eq!(
            ua.verdict, ub.verdict,
            "{what}: {} verdict differs",
            ua.path
        );
        assert_eq!(
            ua.cured_text, ub.cured_text,
            "{what}: {} cured output is not byte-identical",
            ua.path
        );
        assert_eq!(ua.report, ub.report, "{what}: {} report differs", ua.path);
        assert_eq!(
            ua.report_digest, ub.report_digest,
            "{what}: {} CureReport digest differs",
            ua.path
        );
    }
}

#[test]
fn corpus_cures_cleanly() {
    let scratch = Scratch::new("clean");
    let units = corpus_in(&scratch.0.join("src"));
    let report = run_batch(&config(1, None), &units).expect("batch");
    assert_eq!(report.units.len(), units.len());
    for u in &report.units {
        assert_eq!(
            u.verdict,
            Verdict::Cured,
            "{}: {}",
            u.path,
            u.verdict.detail()
        );
        assert!(!u.cured_text.is_empty(), "{}: empty cured text", u.path);
        assert!(u.report_digest != 0, "{}: no report digest", u.path);
    }
    let totals = report.totals();
    assert!(
        totals.safe > 0 && totals.seq > 0,
        "corpus kind histogram is degenerate"
    );
}

#[test]
fn jobs_one_jobs_eight_and_warm_cache_agree() {
    let scratch = Scratch::new("differential");
    let units = corpus_in(&scratch.0.join("src"));
    let cache = scratch.0.join("cache");

    let seq = run_batch(&config(1, None), &units).expect("jobs=1");
    let par = run_batch(&config(8, None), &units).expect("jobs=8");
    let cold = run_batch(&config(8, Some(&cache)), &units).expect("cold cache");
    let warm = run_batch(&config(8, Some(&cache)), &units).expect("warm cache");

    assert_identical(&seq, &par, "jobs=1 vs jobs=8");
    assert_identical(&seq, &cold, "jobs=1 vs cold cache");
    assert_identical(&seq, &warm, "jobs=1 vs warm cache");

    // Cold run populated the cache; warm run is all hits.
    assert_eq!(
        cold.cache.hits, 0,
        "first cached run should miss everywhere"
    );
    assert_eq!(cold.cache.entries_written as usize, units.len());
    assert!(
        (warm.hit_rate() - 1.0).abs() < f64::EPSILON,
        "warm hit rate {}",
        warm.hit_rate()
    );
    assert!(warm.units.iter().all(|u| u.from_cache));
}

#[test]
fn touching_one_file_recures_only_that_unit() {
    let scratch = Scratch::new("invalidate");
    let units = corpus_in(&scratch.0.join("src"));
    let cfg = config(4, Some(&scratch.0.join("cache")));

    run_batch(&cfg, &units).expect("cold run");
    let touched = &units[units.len() / 2];
    let source = std::fs::read_to_string(touched).expect("read unit");
    std::fs::write(touched, format!("/* touched */\n{source}")).expect("rewrite unit");

    let rerun = run_batch(&cfg, &units).expect("rerun");
    assert_eq!(rerun.cache.misses, 1, "exactly the touched unit re-cures");
    assert_eq!(rerun.cache.hits as usize, units.len() - 1);
    for u in &rerun.units {
        let is_touched = touched.to_string_lossy() == u.path;
        assert_eq!(u.from_cache, !is_touched, "{}: wrong cache verdict", u.path);
        assert_eq!(
            u.verdict,
            Verdict::Cured,
            "{}: {}",
            u.path,
            u.verdict.detail()
        );
    }
}

#[test]
fn warm_cache_beats_sequential_and_parallel_scales() {
    let scratch = Scratch::new("speedup");
    let units = corpus_in(&scratch.0.join("src"));
    let cache = scratch.0.join("cache");

    let seq = run_batch(&config(1, None), &units).expect("sequential");
    let par = run_batch(&config(4, None), &units).expect("parallel");
    run_batch(&config(4, Some(&cache)), &units).expect("cold cache");
    let warm = run_batch(&config(4, Some(&cache)), &units).expect("warm cache");

    let (s, p, w) = (
        seq.wall.as_secs_f64(),
        par.wall.as_secs_f64(),
        warm.wall.as_secs_f64(),
    );
    assert!(
        w * 5.0 <= s,
        "warm cache not ≥5× faster: sequential {s:.4}s, warm {w:.4}s"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 {
        // Real parallel hardware: fanning out must beat sequential.
        assert!(
            p < s,
            "parallel ({p:.4}s) did not beat sequential ({s:.4}s) on {cores} cores"
        );
    } else {
        // Single core: the pool cannot win wall-clock, but its overhead
        // must stay modest.
        assert!(
            p <= s * 1.6,
            "thread-pool overhead too high on one core: sequential {s:.4}s, parallel {p:.4}s"
        );
    }
    // The pool performed at least as much work as the wall shows.
    assert!(par.cpu >= par.wall || par.cpu.as_secs_f64() > p * 0.5);
}

#[test]
fn repeated_runs_are_deterministic() {
    let scratch = Scratch::new("repeat");
    let units = corpus_in(&scratch.0.join("src"));
    let cfg = config(8, None);
    let first = run_batch(&cfg, &units).expect("first");
    let second = run_batch(&cfg, &units).expect("second");
    assert_identical(&first, &second, "run 1 vs run 2");
    // Reports come back path-sorted regardless of worker completion order.
    let mut sorted: Vec<_> = first.units.iter().map(|u| u.path.clone()).collect();
    sorted.sort();
    assert_eq!(
        sorted,
        first
            .units
            .iter()
            .map(|u| u.path.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn manifest_and_directory_forms_agree() {
    let scratch = Scratch::new("manifest");
    let src = scratch.0.join("src");
    let units = corpus_in(&src);
    let manifest = scratch.0.join("units.txt");
    let mut listing = String::from("# batch manifest (paths relative to this file)\n");
    for u in &units {
        listing.push_str(&format!(
            "src/{}\n",
            u.file_name().unwrap().to_string_lossy()
        ));
    }
    std::fs::write(&manifest, listing).expect("write manifest");

    let cfg = config(2, None);
    let by_dir = ccured_batch::run_path(&cfg, &src).expect("directory form");
    let by_manifest = ccured_batch::run_path(&cfg, &manifest).expect("manifest form");
    assert_eq!(by_dir.units.len(), by_manifest.units.len());
    for (a, b) in by_dir.units.iter().zip(&by_manifest.units) {
        assert_eq!(a.cured_text, b.cured_text);
        assert_eq!(a.report_digest, b.report_digest);
    }
}
