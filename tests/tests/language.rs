//! C-semantics corpus: tricky-but-legal programs must behave identically in
//! original and cured modes (differential testing of the whole pipeline).

use ccured::Curer;
use ccured_rt::{ExecMode, Interp, RtError};

fn run_original(src: &str) -> (Result<i64, RtError>, Vec<u8>) {
    let tu = ccured_ast::parse_translation_unit(src).expect("parse");
    let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
    let mut i = Interp::new(&prog, ExecMode::Original);
    let r = i.run();
    (r, i.output().to_vec())
}

fn run_cured(src: &str) -> (Result<i64, RtError>, Vec<u8>) {
    let cured = Curer::new().cure_source(src).expect("cure");
    let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
    let r = i.run();
    (r, i.output().to_vec())
}

fn equivalent(src: &str, expect: i64) {
    let (ro, oo) = run_original(src);
    let (rc, oc) = run_cured(src);
    assert_eq!(ro.as_ref().expect("original"), &expect, "original exit");
    assert_eq!(rc.as_ref().expect("cured"), &expect, "cured exit");
    assert_eq!(oo, oc, "outputs differ");
}

#[test]
fn integer_truncation_and_promotion() {
    equivalent(
        r#"int main(void) {
            char c = (char)300;           /* 44 */
            unsigned char u = (unsigned char)-1; /* 255 */
            short s = (short)70000;       /* 4464 */
            return (c == 44) + 2 * (u == 255) + 4 * (s == 4464);
        }"#,
        7,
    );
}

#[test]
fn unsigned_division_and_shifts() {
    equivalent(
        r#"int main(void) {
            unsigned int a = 0xFFFFFFF0u;
            unsigned int b = a / 16;      /* logical, not arithmetic */
            unsigned int c = a >> 4;
            return (b == 0x0FFFFFFFu) + 2 * (c == 0x0FFFFFFFu);
        }"#,
        3,
    );
}

#[test]
fn ternary_chains_and_comma() {
    equivalent(
        r#"int main(void) {
            int x = 5;
            int y = x > 3 ? x > 4 ? 2 : 1 : 0;
            int z = (x++, x--, x + y);
            return z;
        }"#,
        7,
    );
}

#[test]
fn short_circuit_side_effects() {
    equivalent(
        r#"int hits;
        int bump(void) { hits++; return 1; }
        int main(void) {
            hits = 0;
            int a = 0 && bump();
            int b = 1 || bump();
            int c = 1 && bump();
            int d = 0 || bump();
            return hits * 10 + (a + b + c + d);
        }"#,
        23,
    );
}

#[test]
fn do_while_with_continue() {
    equivalent(
        r#"int main(void) {
            int i = 0;
            int s = 0;
            do {
                i++;
                if (i % 2 == 0) continue;
                s += i;
            } while (i < 9);
            return s; /* 1+3+5+7+9 */
        }"#,
        25,
    );
}

#[test]
fn switch_default_first_and_negative() {
    equivalent(
        r#"int classify(int x) {
            switch (x) {
                default: return 9;
                case -1: return 1;
                case 0: return 2;
            }
        }
        int main(void) { return classify(-1) * 100 + classify(0) * 10 + classify(7); }"#,
        129,
    );
}

#[test]
fn nested_breaks_target_innermost() {
    equivalent(
        r#"int main(void) {
            int count = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 10; j++) {
                    if (j == 2) break;
                    count++;
                }
            }
            return count;
        }"#,
        6,
    );
}

#[test]
fn break_inside_switch_inside_loop() {
    equivalent(
        r#"int main(void) {
            int s = 0;
            for (int i = 0; i < 5; i++) {
                switch (i) {
                    case 2: break;     /* exits the switch, not the loop */
                    default: s += i;
                }
            }
            return s; /* 0+1+3+4 */
        }"#,
        8,
    );
}

#[test]
fn multidimensional_array_emulation() {
    equivalent(
        r#"int main(void) {
            int grid[12];
            for (int r = 0; r < 3; r++)
                for (int c = 0; c < 4; c++)
                    grid[r * 4 + c] = r * 10 + c;
            return grid[2 * 4 + 3];
        }"#,
        23,
    );
}

#[test]
fn struct_in_struct_access() {
    equivalent(
        r#"struct Inner { int a; int b; };
        struct Outer { int tag; struct Inner in; };
        int main(void) {
            struct Outer o;
            o.tag = 1;
            o.in.a = 10;
            o.in.b = 20;
            struct Inner copy;
            copy = o.in;
            copy.a = 99;
            return o.in.a + copy.b;
        }"#,
        30,
    );
}

#[test]
fn array_of_structs_walk() {
    equivalent(
        r#"struct P { int x; int y; };
        int main(void) {
            struct P ps[4];
            for (int i = 0; i < 4; i++) { ps[i].x = i; ps[i].y = i * i; }
            struct P *p = ps;
            int s = 0;
            for (int i = 0; i < 4; i++) { s += p->x + p->y; p++; }
            return s;
        }"#,
        20,
    );
}

#[test]
fn pointer_comparisons_and_difference() {
    equivalent(
        r#"int main(void) {
            int a[10];
            for (int i = 0; i < 10; i++) a[i] = i;
            int *lo = &a[2];
            int *hi = &a[7];
            int d = (int)(hi - lo);
            return (lo < hi) * 100 + d;
        }"#,
        105,
    );
}

#[test]
fn recursion_fibonacci() {
    equivalent(
        r#"int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
        int main(void) { return fib(12); }"#,
        144,
    );
}

#[test]
fn mutual_recursion_with_forward_declaration() {
    equivalent(
        r#"int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main(void) { return is_even(10) * 10 + is_odd(7); }"#,
        11,
    );
}

#[test]
fn function_pointer_in_struct_field() {
    equivalent(
        r#"struct Ops { int (*apply)(int); int bias; };
        int twice(int x) { return 2 * x; }
        int main(void) {
            struct Ops ops;
            ops.apply = twice;
            ops.bias = 3;
            return ops.apply(10) + ops.bias;
        }"#,
        23,
    );
}

#[test]
fn enums_as_switch_labels() {
    equivalent(
        r#"enum Op { ADD, SUB = 5, MUL };
        int eval(int op, int a, int b) {
            switch (op) {
                case ADD: return a + b;
                case SUB: return a - b;
                case MUL: return a * b;
                default: return -1;
            }
        }
        int main(void) { return eval(ADD, 3, 4) * 100 + eval(SUB, 9, 2) * 10 + eval(MUL, 2, 3); }"#,
        776,
    );
}

#[test]
fn global_initializer_shapes() {
    equivalent(
        r#"int table[5] = { 2, 4, 6 };
        struct Cfg { int a; int b; } cfg = { 7 };
        char banner[4] = "hi";
        int main(void) {
            return table[1] + table[3] + cfg.a + cfg.b + banner[1] + banner[3];
        }"#,
        4 + 7 + 'i' as i64,
    );
}

#[test]
fn sizeof_arithmetic() {
    equivalent(
        r#"struct S { char c; int i; };
        int main(void) {
            return (int)(sizeof(struct S) + sizeof(int) + sizeof(char) + sizeof(long));
        }"#,
        8 + 4 + 1 + 8,
    );
}

#[test]
fn string_literals_are_interned_readonly_data() {
    equivalent(
        r#"extern int printf(char *fmt, ...);
        int main(void) {
            char *a = "shared";
            char *b = "shared";
            printf("%s %s\n", a, b);
            return a == b ? 1 : 0; /* interning makes them identical */
        }"#,
        1,
    );
}

#[test]
fn goto_out_of_nested_loops() {
    equivalent(
        r#"int main(void) {
            int n = 0;
            for (int i = 0; i < 10; i++) {
                for (int j = 0; j < 10; j++) {
                    n++;
                    if (n == 13) goto done;
                }
            }
            done: return n;
        }"#,
        13,
    );
}

#[test]
fn goto_to_invisible_label_is_reported() {
    // A goto whose label lives in a sibling nested block cannot be resolved
    // by the structured interpreter; it must error, not silently return.
    let src = r#"int main(void) {
        goto inner;
        if (1) { inner: return 1; }
        return 0;
    }"#;
    let (r, _) = run_original(src);
    match r {
        Err(RtError::Unsupported(msg)) => assert!(msg.contains("inner")),
        other => panic!("expected unsupported-goto error, got {other:?}"),
    }
}

#[test]
fn void_pointer_roundtrip_through_container() {
    equivalent(
        r#"extern void *malloc(unsigned long n);
        struct Box { void *item; };
        struct Pay { int amount; int cents; };
        int main(void) {
            struct Pay *p = (struct Pay *)malloc(sizeof(struct Pay));
            p->amount = 40;
            p->cents = 2;
            struct Box b;
            b.item = (void *)p;               /* upcast into the container */
            struct Pay *q = (struct Pay *)b.item; /* checked downcast out */
            return q->amount + q->cents;
        }"#,
        42,
    );
}

#[test]
fn negative_modulo_truncates_toward_zero() {
    equivalent(
        r#"int main(void) {
            int a = -7 % 3;   /* -1 in C */
            int b = 7 % -3;   /* 1 in C */
            return (a == -1) + 2 * (b == 1);
        }"#,
        3,
    );
}

#[test]
fn char_comparisons_are_signed() {
    equivalent(
        r#"int main(void) {
            char c = (char)200; /* negative on this target */
            return c < 0 ? 1 : 0;
        }"#,
        1,
    );
}

#[test]
fn static_locals_persist_across_calls() {
    equivalent(
        r#"int counter(void) {
            static int count = 100;
            count++;
            return count;
        }
        int other(void) {
            static int count = 0; /* independent storage */
            count += 2;
            return count;
        }
        int main(void) {
            counter(); counter();
            other(); other(); other();
            return counter() * 10 + other(); /* 103*10 + 8 */
        }"#,
        1038,
    );
}

#[test]
fn static_local_arrays_are_zeroed_and_persist() {
    equivalent(
        r#"int record(int v) {
            static int seen[4];
            static int n;
            if (n < 4) { seen[n] = v; n++; }
            int s = 0;
            for (int i = 0; i < 4; i++) s += seen[i];
            return s;
        }
        int main(void) {
            record(1); record(2); record(3);
            return record(10); /* 1+2+3+10, later calls capped */
        }"#,
        16,
    );
}

#[test]
fn struct_by_value_arguments_are_copied() {
    equivalent(
        r#"struct P { int x; int y; };
        int consume(struct P p) {
            p.x = 999; /* mutates the copy only */
            return p.x + p.y;
        }
        int main(void) {
            struct P p;
            p.x = 1;
            p.y = 2;
            int r = consume(p);
            return r * 10 + p.x; /* 1001*10 + 1 */
        }"#,
        10011,
    );
}

#[test]
fn struct_return_by_value_is_rejected_cleanly() {
    let src = r#"struct P { int x; };
    struct P make(void) { struct P p; p.x = 1; return p; }
    int main(void) { return 0; }"#;
    let tu = ccured_ast::parse_translation_unit(src).unwrap();
    let e = ccured_cil::lower_translation_unit(&tu).unwrap_err();
    assert!(e.msg.contains("return a pointer"), "{}", e.msg);
}

#[test]
fn two_dimensional_arrays() {
    equivalent(
        r#"int main(void) {
            int grid[3][4];
            for (int r = 0; r < 3; r++)
                for (int c = 0; c < 4; c++)
                    grid[r][c] = r * 10 + c;
            int (*row)[4] = &grid[1];
            return grid[2][3] + (*row)[2];
        }"#,
        23 + 12,
    );
}

#[test]
fn union_type_punning_reads_raw_bits() {
    equivalent(
        r#"union Pun { unsigned int bits; float f; };
        int main(void) {
            union Pun p;
            p.f = 1.0;
            /* IEEE-754 single 1.0 = 0x3F800000 */
            return p.bits == 0x3F800000u ? 0 : 1;
        }"#,
        0,
    );
}

#[test]
fn out_of_bounds_2d_row_caught_when_cured() {
    // grid[1][7] stays inside the allocation (row overflow into the next
    // row): plain C reads the neighbour silently, cured catches it.
    let src = r#"int main(void) {
        int grid[3][4];
        for (int r = 0; r < 3; r++)
            for (int c = 0; c < 4; c++)
                grid[r][c] = r * 100 + c;
        int j = 7;
        return grid[1][j];
    }"#;
    let (ro, _) = run_original(src);
    assert_eq!(ro.unwrap(), 203, "plain C reads into row 2 silently");
    let (rc, _) = run_cured(src);
    assert!(
        rc.unwrap_err().is_check_failure(),
        "cured catches the row overflow"
    );
}

#[test]
fn postincrement_in_index_expression() {
    equivalent(
        r#"int main(void) {
            int a[4];
            int i = 0;
            a[i++] = 10;
            a[i++] = 20;
            a[i] = 30;
            return a[0] + a[1] + a[2] + i;
        }"#,
        62,
    );
}
