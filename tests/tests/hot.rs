//! Differential tests for the profile-guided tiered VM.
//!
//! Tiering is a pure execution-strategy choice: whether a function runs in
//! the cheap baseline compile, gets hot-recompiled with the extended
//! superinstruction set mid-run, or is promoted up front by a `--pgo`
//! plan, every observable — exit code or error, program output, every
//! event counter, the exact step where fuel runs out — must be
//! byte-identical to the tree-walking reference engine and to the
//! untiered VM. These tests pin that invariant across tier schedules,
//! mid-run transitions (including on-stack replacement at loop
//! back-edges), goto-heavy control flow, fault-injected mutants, and the
//! PGO JSON round trip.

use ccured::{isolated, Curer};
use ccured_cil::Program;
use ccured_faultinject::{mutate, FaultClass};
use ccured_rt::{
    tier_plan, Counters, Engine, ExecMode, Interp, Limits, Profile, RtError, TierMode, TierPlan,
    PGO_SCHEMA,
};
use ccured_workloads::prng::SplitMix64;
use ccured_workloads::{batch_corpus, micro, suite_corpus, Workload};

/// Everything observable about one run, plus the tier activity that
/// produced it (which must *not* be observable in the first group).
#[derive(Debug)]
struct Observed {
    result: Result<i64, RtError>,
    output: Vec<u8>,
    counters: Counters,
    promotions: u64,
    osr: u64,
}

/// One run under an explicit tier schedule. `tier` is `None` for the tree
/// engine (where tiering does not exist) and for the VM's default mode.
fn observe(
    prog: &Program,
    mode: ExecMode<'_>,
    engine: Engine,
    tier: Option<TierMode>,
    plan: Option<TierPlan>,
    input: &[u8],
    limits: Limits,
) -> Observed {
    let mut interp = Interp::new(prog, mode);
    interp.set_engine(engine);
    if let Some(t) = tier {
        interp.set_tiering(t);
    }
    if let Some(p) = plan {
        interp.set_tier_plan(p);
    }
    interp.set_limits(limits);
    interp.set_zero_init(true);
    interp.set_input(input.to_vec());
    let result = interp.run();
    let stats = interp.tier_stats();
    Observed {
        result,
        output: interp.output().to_vec(),
        counters: interp.counters,
        promotions: stats.promotions,
        osr: stats.osr,
    }
}

fn assert_same(what: &str, a: &Observed, b: &Observed) {
    assert_eq!(a.result, b.result, "{what}: results differ");
    assert_eq!(a.output, b.output, "{what}: program output differs");
    assert_eq!(a.counters, b.counters, "{what}: counters differ");
}

fn cure(w: &Workload) -> ccured::Cured {
    let mut curer = Curer::new();
    if w.with_wrappers {
        curer.with_stdlib_wrappers();
    }
    curer.cure_source(&w.source).expect("cure")
}

fn lower(w: &Workload) -> Program {
    let full = if w.with_wrappers {
        format!(
            "{}\n{}",
            ccured::wrappers::stdlib_wrapper_source(),
            w.source
        )
    } else {
        w.source.clone()
    };
    let tu = ccured_ast::parse_translation_unit(&full).expect("parse");
    ccured_cil::lower_translation_unit(&tu).expect("lower")
}

fn golden_workloads() -> Vec<Workload> {
    let mut ws = suite_corpus();
    for w in batch_corpus() {
        if !ws.iter().any(|x| x.name == w.name) {
            ws.push(w);
        }
    }
    ws
}

/// The tier schedules worth sweeping: never promote, promote lazily
/// (default), promote aggressively mid-run, promote at first call.
const SCHEDULES: [(&str, TierMode); 4] = [
    ("untiered", TierMode::Off),
    ("default", TierMode::On { threshold: 8 }),
    ("eager", TierMode::On { threshold: 2 }),
    ("first-call", TierMode::On { threshold: 0 }),
];

/// Every tier schedule is observably identical to the tree engine on the
/// full golden corpus — and the sweep must actually exercise hot
/// recompilation somewhere, or it proves nothing.
#[test]
fn tier_schedules_are_invisible_on_the_golden_corpus() {
    let mut promoted = 0u64;
    let mut osr = 0u64;
    for w in golden_workloads() {
        let cured = cure(&w);
        let tree = observe(
            &cured.program,
            ExecMode::cured(&cured),
            Engine::Tree,
            None,
            None,
            &w.input,
            Limits::default(),
        );
        for (label, mode) in SCHEDULES {
            let vm = observe(
                &cured.program,
                ExecMode::cured(&cured),
                Engine::Vm,
                Some(mode),
                None,
                &w.input,
                Limits::default(),
            );
            assert_same(&format!("{} ({label})", w.name), &tree, &vm);
            promoted += vm.promotions;
            osr += vm.osr;
        }
    }
    assert!(promoted > 0, "sweep never hot-recompiled a function");
    assert!(osr > 0, "sweep never replaced a function on stack");
}

/// Fuel exhaustion must land on the exact constituent step even when the
/// budget runs out *inside* a hot-recompiled superinstruction (including
/// the fused check sequences): a fine-grained fuel sweep around the
/// promotion point of a hot loop must agree with the tree engine on every
/// axis at every cutoff.
#[test]
fn fuel_exhaustion_in_hot_code_is_step_exact() {
    let w = micro::seq_index(16);
    let cured = cure(&w);
    // With the default threshold the loop warms up in the baseline tier
    // (accumulating per-site heat) and is OSR-promoted mid-loop with the
    // executed check sites fused — the remaining iterations run through
    // extended superinstructions.
    let full = observe(
        &cured.program,
        ExecMode::cured(&cured),
        Engine::Vm,
        Some(TierMode::On { threshold: 4 }),
        None,
        &w.input,
        Limits::default(),
    );
    assert!(full.promotions > 0, "the loop never got hot");
    let budget = full.counters.instrs;
    let mut exhausted = 0usize;
    let sweep = (1..=160).chain((1..=16).map(|k| k * budget / 16));
    for fuel in sweep {
        let limits = Limits {
            fuel,
            ..Limits::default()
        };
        let tree = observe(
            &cured.program,
            ExecMode::cured(&cured),
            Engine::Tree,
            None,
            None,
            &w.input,
            limits,
        );
        let vm = observe(
            &cured.program,
            ExecMode::cured(&cured),
            Engine::Vm,
            Some(TierMode::On { threshold: 4 }),
            None,
            &w.input,
            limits,
        );
        assert_same(&format!("fuel={fuel}"), &tree, &vm);
        if vm.result == Err(RtError::OutOfFuel) {
            exhausted += 1;
            assert!(
                vm.counters.instrs <= fuel + 1,
                "fuel={fuel}: counted past the failing step ({})",
                vm.counters.instrs
            );
        }
    }
    assert!(exhausted > 0, "the sweep never ran out of fuel");
}

/// A function crossing the hotness threshold mid-run is recompiled and
/// resumed via on-stack replacement without dropping or double-charging a
/// single check: counters match the untiered VM and the tree engine
/// exactly, and the run demonstrably promoted and OSR-ed.
#[test]
fn mid_run_promotion_preserves_every_check() {
    let src = "int sum(int *p, int n) { int i; int s = 0;\n\
               for (i = 0; i < n; i++) s += p[i];\n\
               return s; }\n\
               int main(void) {\n\
                 int a[32]; int i; int t = 0;\n\
                 for (i = 0; i < 32; i++) a[i] = i;\n\
                 for (i = 0; i < 24; i++) t += sum(a, i);\n\
                 return t & 255;\n\
               }";
    let w = Workload::new("tier_transition", src).without_wrappers();
    let cured = cure(&w);
    let tree = observe(
        &cured.program,
        ExecMode::cured(&cured),
        Engine::Tree,
        None,
        None,
        &[],
        Limits::default(),
    );
    let flat = observe(
        &cured.program,
        ExecMode::cured(&cured),
        Engine::Vm,
        Some(TierMode::Off),
        None,
        &[],
        Limits::default(),
    );
    let tiered = observe(
        &cured.program,
        ExecMode::cured(&cured),
        Engine::Vm,
        Some(TierMode::On { threshold: 8 }),
        None,
        &[],
        Limits::default(),
    );
    assert_same("tier_transition (untiered)", &tree, &flat);
    assert_same("tier_transition (tiered)", &tree, &tiered);
    assert!(tree.result.is_ok(), "workload must run clean");
    // `sum` crosses the threshold by call count, `main` by loop
    // back-edges — so the run exercises both entry promotion and OSR.
    assert!(tiered.promotions >= 2, "expected both functions to get hot");
    assert!(tiered.osr >= 1, "expected an on-stack replacement");
}

/// Goto-heavy control flow: backward jumps, jumps out of nested blocks and
/// re-entered loop headers mean many ops are jump targets, which bounds
/// what fusion may do and forces OSR entries at raw label positions. A
/// jump may never land mid-superinstruction — any such bug shows up here
/// as diverging counters or results under aggressive tiering.
#[test]
fn goto_heavy_flow_survives_every_tier_schedule() {
    let src = "int main(void) {\n\
                 int a[8]; int i; int s; int k;\n\
                 for (i = 0; i < 8; i++) a[i] = i + 1;\n\
                 s = 0; k = 0; i = 0;\n\
               top: s += a[i]; i++;\n\
                 if (i < 8) goto top;\n\
                 k++; i = 0;\n\
                 if (k < 9) goto top;\n\
                 while (s > 40) { s -= 7; if (s < 60) goto fin; }\n\
               fin: return s;\n\
               }";
    let w = Workload::new("goto_hot", src).without_wrappers();
    let cured = cure(&w);
    let tree = observe(
        &cured.program,
        ExecMode::cured(&cured),
        Engine::Tree,
        None,
        None,
        &[],
        Limits::default(),
    );
    assert!(tree.result.is_ok(), "goto workload must run clean");
    let mut osr = 0u64;
    for (label, mode) in SCHEDULES {
        let vm = observe(
            &cured.program,
            ExecMode::cured(&cured),
            Engine::Vm,
            Some(mode),
            None,
            &[],
            Limits::default(),
        );
        assert_same(&format!("goto_hot ({label})"), &tree, &vm);
        osr += vm.osr;
    }
    assert!(osr > 0, "the backward gotos never triggered OSR");
}

/// Serializes a profile the way `ccured profile --json` does (schema tag
/// plus per-row site ids and counters) — the fields `--pgo` reads back.
fn pgo_json(profile: &Profile) -> String {
    let mut s = format!("{{\"schema\":\"{PGO_SCHEMA}\",\"rows\":[");
    for (i, c) in profile.sites.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rank\":{},\"site\":{i},\"hits\":{},\"fails\":{},\"walk_steps\":{}}}",
            i + 1,
            c.hits,
            c.fails,
            c.walk_steps
        ));
    }
    s.push_str("]}\n");
    s
}

/// A recorded profile, serialized to the `--pgo` JSON shape and parsed
/// back, must produce the *same* tier plan as the in-memory profile — and
/// seeding a fresh interpreter with that plan promotes the hot functions
/// up front without changing anything observable.
#[test]
fn pgo_plan_round_trips_through_json() {
    let w = micro::seq_index(24);
    let cured = cure(&w);
    let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
    interp.set_engine(Engine::Vm);
    interp.set_input(w.input.clone());
    interp.enable_profile(cured.sites.len());
    interp.run().expect("profiling run");
    let recorded = interp.profile().cloned().expect("profile recorded");

    let direct = tier_plan(&cured.sites, &recorded);
    let parsed = Profile::from_pgo_json(&pgo_json(&recorded)).expect("round trip");
    let via_json = tier_plan(&cured.sites, &parsed);
    assert_eq!(direct, via_json, "JSON round trip changed the tier plan");
    assert!(
        !direct.hot_funcs.is_empty() && !direct.hot_sites.is_empty(),
        "the profiled run must mark something hot"
    );

    // Plan-seeded execution: heat can never trigger (threshold u32::MAX),
    // so any promotion is the plan's doing — and the run stays identical.
    let tree = observe(
        &cured.program,
        ExecMode::cured(&cured),
        Engine::Tree,
        None,
        None,
        &w.input,
        Limits::default(),
    );
    let planned = observe(
        &cured.program,
        ExecMode::cured(&cured),
        Engine::Vm,
        Some(TierMode::On {
            threshold: u32::MAX,
        }),
        Some(via_json),
        &w.input,
        Limits::default(),
    );
    assert_same("pgo-seeded run", &tree, &planned);
    assert!(
        planned.promotions > 0,
        "the plan never promoted a function (heat alone cannot at this threshold)"
    );
}

/// The tier plan is a pure function of (site table, profile), and the
/// profile itself is engine-independent — so plans distilled from a tree
/// run and a VM run are identical.
#[test]
fn either_engine_profiles_to_the_same_tier_plan() {
    for w in [micro::seq_index(12), micro::safe_deref(10)] {
        let cured = cure(&w);
        let mut plans = Vec::new();
        for engine in [Engine::Tree, Engine::Vm] {
            let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
            interp.set_engine(engine);
            interp.set_input(w.input.clone());
            interp.enable_profile(cured.sites.len());
            interp.run().expect("profiling run");
            let prof = interp.profile().cloned().expect("profile recorded");
            plans.push(tier_plan(&cured.sites, &prof));
        }
        assert_eq!(
            plans[0], plans[1],
            "{}: engines disagree on tiering decisions",
            w.name
        );
    }
}

/// Fault-injected mutants under an aggressive tier schedule: the check
/// that catches (or the error that surfaces) must be identical across the
/// tree engine, the untiered VM and the tiered VM — the safety verdict
/// may never depend on which tier the faulty code was executing in.
#[test]
fn faultinject_mutants_are_identical_across_tiers() {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    const MUTANTS: usize = 120;
    let ws = [
        micro::seq_index(8),
        micro::safe_deref(6),
        micro::ptr_store(4),
        micro::rtti_dispatch(6),
    ];
    let bases: Vec<(String, Vec<u8>, Program)> = ws
        .iter()
        .map(|w| (w.name.clone(), w.input.clone(), lower(w)))
        .collect();
    let limits = Limits {
        fuel: 2_000_000,
        max_stack_depth: 96,
        max_heap_bytes: 32 << 20,
        deadline: None,
    };
    let ncls = FaultClass::ALL.len();
    let mut compared = 0usize;
    let mut caught = 0usize;
    for id in 0..MUTANTS {
        let mut rng = SplitMix64::new(0x5107 ^ (id as u64).wrapping_mul(GOLDEN));
        let (name, input, base) = &bases[(id / ncls) % bases.len()];
        let pref = id % ncls;
        let mut seeded = None;
        for k in 0..ncls {
            let class = FaultClass::ALL[(pref + k) % ncls];
            let mut prog = base.clone();
            if let Some(m) = mutate(&mut prog, class, &mut rng) {
                seeded = Some((m, prog));
                break;
            }
        }
        let Some((mutation, prog)) = seeded else {
            continue;
        };
        let Ok(cured) = isolated(|| Curer::new().cure_program(prog)) else {
            continue;
        };
        let what = format!("mutant #{id} ({name}, {})", mutation.class);
        let tree = observe(
            &cured.program,
            ExecMode::cured(&cured),
            Engine::Tree,
            None,
            None,
            input,
            limits,
        );
        let flat = observe(
            &cured.program,
            ExecMode::cured(&cured),
            Engine::Vm,
            Some(TierMode::Off),
            None,
            input,
            limits,
        );
        let tiered = observe(
            &cured.program,
            ExecMode::cured(&cured),
            Engine::Vm,
            Some(TierMode::On { threshold: 2 }),
            None,
            input,
            limits,
        );
        assert_same(&format!("{what} (untiered)"), &tree, &flat);
        assert_same(&format!("{what} (tiered)"), &tree, &tiered);
        compared += 1;
        match &tiered.result {
            Err(RtError::CheckFailed { .. }) => caught += 1,
            Err(e) => assert!(
                !e.is_memory_error(),
                "{what}: fault escaped as a raw memory error on ALL engines: {e}"
            ),
            Ok(_) => {}
        }
    }
    assert!(
        compared >= 100,
        "need at least 100 executable mutants, got {compared}"
    );
    assert!(caught > 0, "no mutant was caught by a check");
}
