//! The paper's core soundness claim, property-tested: a cured program
//! never exhibits an *undetected* memory error. For randomly generated
//! programs with injected faults, the cured run either matches the
//! original's observable behaviour or stops with a CCured check failure —
//! never a raw (undefined-behaviour-class) memory error.

use ccured::Curer;
use ccured_rt::{ExecMode, Interp, RtError};
use proptest::prelude::*;

fn run_original(src: &str) -> (Result<i64, RtError>, Vec<u8>) {
    let tu = ccured_ast::parse_translation_unit(src).expect("parse");
    let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
    let mut i = Interp::new(&prog, ExecMode::Original);
    let r = i.run();
    (r, i.output().to_vec())
}

fn run_cured(src: &str) -> (Result<i64, RtError>, Vec<u8>) {
    let cured = Curer::new().cure_source(src).expect("cure");
    let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
    let r = i.run();
    (r, i.output().to_vec())
}

/// The soundness invariant for one program.
fn check_soundness(src: &str) {
    let (ro, oo) = run_original(src);
    let (rc, oc) = run_cured(src);
    match (&ro, &rc) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "exit codes diverge:\n{src}");
            assert_eq!(oo, oc, "outputs diverge:\n{src}");
        }
        // Whatever the original did (clean or UB), the cured run may stop
        // with a *check* failure — but never an undetected memory error.
        (_, Err(e)) => {
            assert!(
                e.is_check_failure(),
                "cured run died of a raw memory error ({e}) instead of a check:\n{src}"
            );
        }
        (Err(e), Ok(exit)) => {
            // The original faulted but the cured run survived: only possible
            // when the fault was masked by instrumentation, which must not
            // happen for in-bounds-diverging programs.
            panic!("original faulted ({e}) but cured exited {exit}:\n{src}");
        }
    }
}

/// Generates an array-walk program. `len` is the array size; `limit` is the
/// loop bound (faulty when > len); `stride` exercises pointer arithmetic.
fn array_walk(len: u32, limit: u32, stride: u32, via_ptr: bool) -> String {
    let body = if via_ptr {
        format!(
            "int *p = a;\n\
             for (int i = 0; i < {limit}; i++) {{ s += *p; p = p + {stride}; }}"
        )
    } else {
        format!("for (int i = 0; i < {limit}; i++) s += a[i * {stride}];")
    };
    format!(
        "int main(void) {{\n\
           int a[{len}];\n\
           for (int i = 0; i < {len}; i++) a[i] = i;\n\
           int s = 0;\n\
           {body}\n\
           return s & 0x7f;\n\
         }}"
    )
}

/// Generates a struct-field overflow program: writes `writes` bytes into a
/// `buf_len`-byte field adjacent to a sentinel.
fn field_overflow(buf_len: u32, writes: u32) -> String {
    format!(
        "struct S {{ char buf[{buf_len}]; int sentinel; }};\n\
         int main(void) {{\n\
           struct S s;\n\
           s.sentinel = 7;\n\
           for (int i = 0; i < {writes}; i++) s.buf[i] = 65;\n\
           return s.sentinel;\n\
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn array_walks_are_sound(
        len in 1u32..12,
        extra in 0u32..6,
        stride in 1u32..3,
        via_ptr in any::<bool>(),
    ) {
        // limit may exceed len (fault injection) or not (equivalence).
        let limit = len / stride.max(1) + extra;
        let src = array_walk(len, limit, stride, via_ptr);
        check_soundness(&src);
    }

    #[test]
    fn field_overflows_are_sound(buf_len in 1u32..8, writes in 0u32..16) {
        let src = field_overflow(buf_len, writes);
        check_soundness(&src);
        // And specifically: if the write count exceeds the buffer, the cured
        // run must detect it.
        if writes > buf_len {
            let (rc, _) = run_cured(&src);
            prop_assert!(rc.is_err(), "overflow must be caught");
        }
    }

    #[test]
    fn downcast_fuzzing_is_sound(
        mk_kind in 0u32..3,
        ask_kind in 0u32..3,
    ) {
        // Allocate one of three hierarchy members, then downcast to another:
        // legal when ask <= mk, otherwise the RTTI check must fire.
        let src = format!(
            "extern void *malloc(unsigned long n);\n\
             struct T0 {{ long a; }};\n\
             struct T1 {{ long a; long b; }};\n\
             struct T2 {{ long a; long b; long c; }};\n\
             struct T0 *make(int k) {{\n\
               if (k == 0) {{ struct T0 *t = (struct T0 *)malloc(sizeof(struct T0)); t->a = 1; return t; }}\n\
               if (k == 1) {{ struct T1 *t = (struct T1 *)malloc(sizeof(struct T1)); t->a = 1; t->b = 2; return (struct T0 *)t; }}\n\
               struct T2 *t = (struct T2 *)malloc(sizeof(struct T2)); t->a = 1; t->b = 2; t->c = 3; return (struct T0 *)t;\n\
             }}\n\
             int main(void) {{\n\
               struct T0 *p = make({mk_kind});\n\
               long v;\n\
               if ({ask_kind} == 0) v = p->a;\n\
               else if ({ask_kind} == 1) {{ struct T1 *q = (struct T1 *)p; v = q->b; }}\n\
               else {{ struct T2 *q = (struct T2 *)p; v = q->c; }}\n\
               return (int)v;\n\
             }}"
        );
        let (rc, _) = run_cured(&src);
        if ask_kind <= mk_kind {
            prop_assert!(rc.is_ok(), "legal downcast must succeed: {rc:?}");
        } else {
            // Illegal downcast: the RTTI check fires.
            match rc {
                Err(e) => prop_assert!(e.is_check_failure(), "wrong failure: {e}"),
                Ok(_) => prop_assert!(false, "illegal downcast must be caught"),
            }
        }
    }

    #[test]
    fn arithmetic_programs_are_deterministic(
        seed in 0u32..1000,
        iters in 1u32..20,
    ) {
        // Pure arithmetic: original and cured must agree exactly.
        let src = format!(
            "int main(void) {{\n\
               unsigned int x = {seed};\n\
               int acc = 0;\n\
               for (int i = 0; i < {iters}; i++) {{\n\
                 x = x * 1103515245u + 12345u;\n\
                 acc = (acc + (int)(x >> 16)) & 0xff;\n\
               }}\n\
               return acc & 0x3f;\n\
             }}"
        );
        let (ro, _) = run_original(&src);
        let (rc, _) = run_cured(&src);
        prop_assert_eq!(ro.unwrap(), rc.unwrap());
    }

    #[test]
    fn string_ops_are_sound(len in 0usize..40, cap in 1u32..32) {
        // strcpy of a `len`-byte string into a `cap`-byte buffer via the
        // wrappers: fits -> equivalent; overflows -> caught.
        let payload = "x".repeat(len);
        let src = format!(
            "int main(void) {{\n\
               char buf[{cap}];\n\
               strcpy(buf, \"{payload}\");\n\
               return (int)strlen(buf) & 0x7f;\n\
             }}"
        );
        let cured = Curer::new()
            .with_stdlib_wrappers()
            .cure_source(&src)
            .expect("cure");
        let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
        let rc = i.run();
        if (len as u32) < cap {
            prop_assert_eq!(rc.unwrap(), (len as i64) & 0x7f);
        } else {
            let e = rc.unwrap_err();
            prop_assert!(e.is_check_failure(), "overflowing strcpy: {e}");
        }
    }
}
