//! Differential tests for the check-site observability layer.
//!
//! Profiling must be **observation-only**: a profiled run is byte-identical
//! to an unprofiled one — same result, same program output, same event
//! counters — on both execution engines, over the full golden corpus. And
//! because cost is *attributed* (hits × the cost model) rather than
//! measured, the tree engine and the bytecode VM must produce the exact
//! same site ranking, which is what lets `ccured profile` promise
//! engine-independent output.

use ccured::Curer;
use ccured_rt::{profile::rank_sites, CostModel, Engine, ExecMode, Interp, Profile};
use ccured_workloads::{batch_corpus, suite_corpus, Workload};

fn cure(w: &Workload) -> ccured::Cured {
    let mut curer = Curer::new();
    if w.with_wrappers {
        curer.with_stdlib_wrappers();
    }
    curer.cure_source(&w.source).expect("cure")
}

fn golden_workloads() -> Vec<Workload> {
    let mut ws = suite_corpus();
    for w in batch_corpus() {
        if !ws.iter().any(|x| x.name == w.name) {
            ws.push(w);
        }
    }
    ws
}

/// One cured run, optionally profiled.
fn run(
    cured: &ccured::Cured,
    engine: Engine,
    input: &[u8],
    profiled: bool,
) -> (
    Result<i64, ccured_rt::RtError>,
    Vec<u8>,
    ccured_rt::Counters,
    Option<Profile>,
) {
    let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
    interp.set_engine(engine);
    interp.set_input(input.to_vec());
    if profiled {
        interp.enable_profile(cured.sites.len());
    }
    let result = interp.run();
    let profile = interp.profile().cloned();
    (result, interp.output().to_vec(), interp.counters, profile)
}

/// A profiled run must be indistinguishable from an unprofiled one on
/// every observable axis, and the profile's own totals must reconcile with
/// the aggregate check counters it rode along with.
#[test]
fn profiling_is_observation_only_on_the_golden_corpus() {
    for w in golden_workloads() {
        let cured = cure(&w);
        for engine in [Engine::Tree, Engine::Vm] {
            let (r0, out0, c0, _) = run(&cured, engine, &w.input, false);
            let (r1, out1, c1, profile) = run(&cured, engine, &w.input, true);
            let what = format!("{} ({})", w.name, engine.name());
            assert_eq!(r0, r1, "{what}: profiling changed the result");
            assert_eq!(out0, out1, "{what}: profiling changed program output");
            assert_eq!(c0, c1, "{what}: profiling changed the counters");
            let profile = profile.expect("profile recorded");
            assert_eq!(
                profile.total_hits(),
                c1.total_checks(),
                "{what}: per-site hits must sum to the aggregate check count"
            );
        }
    }
}

/// The ranked site report — ids, hits, fails, walk steps and attributed
/// cost, in order — must be bit-identical across engines for every golden
/// workload, so `--engine` never changes what `ccured profile` prints.
#[test]
fn engines_agree_on_the_site_ranking() {
    let model = CostModel::default();
    let mut hot_workloads = 0usize;
    for w in golden_workloads() {
        let cured = cure(&w);
        let (_, _, _, tree) = run(&cured, Engine::Tree, &w.input, true);
        let (_, _, _, vm) = run(&cured, Engine::Vm, &w.input, true);
        let tree = rank_sites(&cured.sites, &tree.unwrap(), &model);
        let vm = rank_sites(&cured.sites, &vm.unwrap(), &model);
        let key = |rows: &[ccured_rt::SiteReport]| {
            rows.iter()
                .map(|r| (r.site.id, r.hits, r.fails, r.walk_steps, r.cost.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            key(&tree),
            key(&vm),
            "{}: engines disagree on the site ranking",
            w.name
        );
        if vm.first().is_some_and(|r| r.hits > 0) {
            hot_workloads += 1;
        }
        // The static site table is dense and consistent with the profile.
        for (i, s) in cured.sites.iter().enumerate() {
            assert_eq!(s.id.index(), Some(i), "{}: sparse site table", w.name);
        }
    }
    assert!(hot_workloads > 0, "corpus never executed a check");
}

/// A check *failure* is attributed to the failing site — and only there —
/// identically on both engines.
#[test]
fn check_failures_are_attributed_to_the_failing_site() {
    let src = "int main(void) { int a[4]; int i; int s; s = 0;\n\
               for (i = 0; i < 4; i++) a[i] = i;\n\
               for (i = 0; i <= 4; i++) s += a[i];\n\
               return s; }";
    let w = Workload::new("oob", src).without_wrappers();
    let cured = cure(&w);
    for engine in [Engine::Tree, Engine::Vm] {
        let (result, _, _, profile) = run(&cured, engine, &w.input, true);
        assert!(
            matches!(&result, Err(e) if e.is_check_failure()),
            "{}: expected a check failure, got {result:?}",
            engine.name()
        );
        let ranked = rank_sites(&cured.sites, &profile.unwrap(), &CostModel::default());
        let failing: Vec<_> = ranked.iter().filter(|r| r.fails > 0).collect();
        assert_eq!(
            failing.len(),
            1,
            "{}: exactly one site fails",
            engine.name()
        );
        assert_eq!(failing[0].fails, 1);
        assert!(
            failing[0].hits >= 1,
            "the failing check also counts as a hit"
        );
    }
}
