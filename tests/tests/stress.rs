//! Large-scale stress runs, excluded from the default test pass
//! (`make stress` / `cargo test --release --test stress -- --ignored`).

use ccured_infer::InferOptions;
use ccured_workloads::{daemons, olden, runner, spec};

#[test]
#[ignore = "large-scale run; use `make stress`"]
fn ijpeg_full_scale() {
    let w = spec::ijpeg_oo(40, 200);
    let r = runner::measure(&w, &InferOptions::default()).expect("measure");
    assert!(r.ccured >= 1.0 && r.ccured < 2.5, "ratio {}", r.ccured);
}

#[test]
#[ignore = "large-scale run; use `make stress`"]
fn bind_full_scale() {
    let w = daemons::bind_like(500, 16);
    let r = runner::measure(&w, &InferOptions::default()).expect("measure");
    assert!(r.ccured >= 1.0 && r.ccured < 2.5, "ratio {}", r.ccured);
}

#[test]
#[ignore = "large-scale run; use `make stress`"]
fn em3d_full_scale() {
    let w = olden::em3d(400, 10, 60);
    let base = runner::run_original(&w).expect("frontend");
    assert!(base.ok(), "{:?}", base.error);
    let split = runner::run_cured(
        &w,
        &InferOptions {
            split_everything: true,
            ..InferOptions::default()
        },
    )
    .expect("cure");
    assert!(split.stats.ok(), "{:?}", split.stats.error);
    assert!(split.stats.counters.meta_ops > 10_000);
}
