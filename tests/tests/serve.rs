//! Failure matrix and soak coverage for the cure daemon (`ccured serve`):
//! injected worker panics are survived and respawned, deadline-exceeded
//! units become terminal errors while the server stays up, quarantined
//! units are retried after `reset`, corrupt cache entries read as misses
//! never errors, a warm server's function-level incremental recure agrees
//! byte-for-byte (by report digest) with a cold `ccured batch` at any
//! `--jobs`, and a multi-client soak gets a terminal reply for every
//! request.

#![cfg(unix)]

use ccured_batch::{request, run_batch, BatchConfig, ServeConfig, Server, Verdict};
use std::path::{Path, PathBuf};

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("ccured-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(dir: &Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(dir.join("cc.sock"));
    cfg.cache_dir = Some(dir.join("cache"));
    cfg.workers = 2;
    cfg
}

fn field_u64(json: &str, name: &str) -> u64 {
    json.split(&format!("\"{name}\":"))
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|d| d.parse().ok())
        })
        .unwrap_or_else(|| panic!("no field `{name}` in {json}"))
}

fn field_str(json: &str, name: &str) -> String {
    json.split(&format!("\"{name}\":\""))
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("no field `{name}` in {json}"))
        .to_string()
}

#[test]
fn injected_worker_panic_is_respawned_and_serving_continues() {
    let scratch = Scratch::new("panic");
    let poisoned = scratch.0.join("poison.c");
    std::fs::write(&poisoned, "/* PANIC_HERE */ int main(void) { return 0; }").unwrap();
    let healthy = scratch.0.join("ok.c");
    std::fs::write(&healthy, "int main(void) { int x; x = 4; return x; }").unwrap();

    let mut cfg = config(&scratch.0);
    cfg.fault_poison = Some("PANIC_HERE".to_string());
    cfg.max_retries = 0;
    let mut srv = Server::start(cfg).expect("start");
    let sock = srv.socket().to_path_buf();

    // The poisoned unit kills its worker — the client still gets a
    // terminal error, never a hang.
    let r = request(&sock, &format!("cure {}", poisoned.display())).unwrap();
    assert!(r.contains("\"status\":\"error\""), "{r}");
    assert!(r.contains("worker died"), "{r}");

    // The supervisor respawns the worker and the pool keeps serving: a
    // healthy batch of requests after the panic all succeed.
    for _ in 0..8 {
        let r = request(&sock, &format!("cure {}", healthy.display())).unwrap();
        assert!(r.contains("\"status\":\"ok\""), "{r}");
    }
    // Respawn is observable in status (give the 20ms supervisor poll a
    // moment to notice the dead thread).
    let mut respawns = 0;
    for _ in 0..100 {
        respawns = field_u64(&request(&sock, "status").unwrap(), "respawns");
        if respawns >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(respawns >= 1, "supervisor never recorded the respawn");
    srv.stop();
}

#[test]
fn deadline_exceeded_cure_is_terminal_and_server_stays_up() {
    let scratch = Scratch::new("deadline");
    let unit = scratch.0.join("u.c");
    std::fs::write(&unit, "int main(void) { return 0; }").unwrap();

    let mut cfg = config(&scratch.0);
    // Zero budget trips at the first stage boundary on any machine; no
    // retries so the reply is immediate.
    cfg.limits = cfg.limits.with_deadline_ms(0);
    cfg.cache_dir = None;
    cfg.max_retries = 0;
    let mut srv = Server::start(cfg).expect("start");
    let sock = srv.socket().to_path_buf();

    let r = request(&sock, &format!("cure {}", unit.display())).unwrap();
    assert!(r.contains("\"kind\":\"resource-exhausted\""), "{r}");
    assert!(r.contains("deadline exceeded"), "{r}");

    // The server is still healthy: status works and reports the error.
    let st = request(&sock, "status").unwrap();
    assert!(st.contains("\"status\":\"ok\""), "{st}");
    assert!(field_u64(&st, "errors") >= 1, "{st}");
    srv.stop();
}

#[test]
fn transient_failures_are_retried_with_backoff() {
    let scratch = Scratch::new("retry");
    let unit = scratch.0.join("u.c");
    std::fs::write(&unit, "int main(void) { return 0; }").unwrap();

    let mut cfg = config(&scratch.0);
    cfg.limits = cfg.limits.with_deadline_ms(0); // every attempt times out
    cfg.cache_dir = None;
    cfg.max_retries = 2;
    cfg.backoff = std::time::Duration::from_millis(1);
    let mut srv = Server::start(cfg).expect("start");
    let sock = srv.socket().to_path_buf();

    let r = request(&sock, &format!("cure {}", unit.display())).unwrap();
    assert!(r.contains("\"retries\":2"), "transient error retried: {r}");
    let st = request(&sock, "status").unwrap();
    assert_eq!(field_u64(&st, "retries"), 2, "{st}");

    // Permanent failures (a frontend error) are NOT retried.
    let broken = scratch.0.join("broken.c");
    std::fs::write(&broken, "int main(void { syntax error").unwrap();
    let r = request(&sock, &format!("cure {}", broken.display())).unwrap();
    assert!(
        r.contains("\"retries\":0"),
        "frontend error not retried: {r}"
    );
    srv.stop();
}

#[test]
fn quarantined_unit_is_refused_until_reset_then_retried() {
    let scratch = Scratch::new("quarantine");
    let broken = scratch.0.join("broken.c");
    std::fs::write(&broken, "int main(void { this does not parse").unwrap();

    let mut cfg = config(&scratch.0);
    cfg.quarantine_threshold = 2;
    let mut srv = Server::start(cfg).expect("start");
    let sock = srv.socket().to_path_buf();
    let line = format!("cure {}", broken.display());

    // Two consecutive failures reach the threshold...
    for _ in 0..2 {
        let r = request(&sock, &line).unwrap();
        assert!(r.contains("\"kind\":\"frontend-error\""), "{r}");
    }
    // ...after which the unit is refused without curing.
    let r = request(&sock, &line).unwrap();
    assert!(r.contains("\"kind\":\"quarantined\""), "{r}");
    let st = request(&sock, "status").unwrap();
    assert_eq!(field_u64(&st, "quarantined"), 1, "{st}");

    // `reset` clears the quarantine; the (fixed) unit cures again.
    let r = request(&sock, "reset").unwrap();
    assert!(r.contains("\"kind\":\"reset\""), "{r}");
    std::fs::write(&broken, "int main(void) { return 0; }").unwrap();
    let r = request(&sock, &line).unwrap();
    assert!(r.contains("\"status\":\"ok\""), "retried after reset: {r}");
    srv.stop();
}

#[test]
fn corrupt_cache_entries_are_misses_never_errors() {
    let scratch = Scratch::new("torture");
    let unit = scratch.0.join("u.c");
    std::fs::write(
        &unit,
        "int f(int *p) { return *p; }\nint main(void) { int x; x = 9; return f(&x); }",
    )
    .unwrap();
    let cache_dir = scratch.0.join("cache");
    std::fs::create_dir_all(&cache_dir).unwrap();
    // Seed the cache directory with garbage before the server opens it:
    // orphaned temp files, truncated entries, binary junk.
    std::fs::write(cache_dir.join(".deadbeef.99.0.tmp"), b"half a write").unwrap();
    std::fs::write(
        cache_dir.join("0123456789abcdef.unit"),
        b"ccured-batch-cache 1\ndigest",
    )
    .unwrap();
    std::fs::write(
        cache_dir.join("f00df00df00df00d.unit"),
        [0u8, 159, 146, 150],
    )
    .unwrap();

    let mut srv = Server::start(config(&scratch.0)).expect("start sweeps the garbage");
    let sock = srv.socket().to_path_buf();
    let r = request(&sock, &format!("cure {}", unit.display())).unwrap();
    assert!(r.contains("\"status\":\"ok\""), "{r}");
    assert!(r.contains("\"from_cache\":false"), "garbage is a miss: {r}");
    // Now corrupt the freshly written entry in place (it lives under a
    // two-hex shard subdirectory): the next cure must still be an `ok` (a
    // miss re-cures and rewrites), never an error.
    let mut corrupted = 0;
    let mut stack = vec![cache_dir.clone()];
    while let Some(d) = stack.pop() {
        for e in std::fs::read_dir(&d).unwrap().flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "unit") {
                std::fs::write(&p, b"torn to bits").unwrap();
                corrupted += 1;
            }
        }
    }
    assert!(corrupted > 0, "found the sharded entry to corrupt");
    let r = request(&sock, &format!("cure {}", unit.display())).unwrap();
    assert!(r.contains("\"status\":\"ok\""), "{r}");
    assert!(
        r.contains("\"from_cache\":false"),
        "corrupt entry is a miss: {r}"
    );
    let r = request(&sock, &format!("cure {}", unit.display())).unwrap();
    assert!(
        r.contains("\"from_cache\":true"),
        "rewritten entry hits: {r}"
    );
    srv.stop();
}

/// The tentpole guarantee: a warm server that re-cures only the touched
/// function produces the same `CureReport` digest as a cold full batch —
/// at `--jobs 1` and `--jobs 4`.
#[test]
fn warm_incremental_recure_matches_cold_batch_at_any_jobs() {
    let scratch = Scratch::new("differential");
    let src = scratch.0.join("src");
    let units = ccured_workloads::write_units(&src, &ccured_workloads::batch_corpus())
        .expect("write corpus");

    // The daemon runs with the disk cache off so every request exercises
    // the function-level incremental path.
    let mut cfg = config(&scratch.0);
    cfg.cache_dir = None;
    let mut srv = Server::start(cfg).expect("start");
    let sock = srv.socket().to_path_buf();

    // Cold pass: populates the function cache.
    for u in &units {
        let r = request(&sock, &format!("cure {}", u.display())).unwrap();
        assert!(r.contains("\"status\":\"ok\""), "{}: {r}", u.display());
    }
    // Touch one unit: append a trailing function and tweak nothing else.
    let touched = &units[units.len() / 2];
    let original = std::fs::read_to_string(touched).unwrap();
    std::fs::write(
        touched,
        format!("{original}\nint ccured_serve_extra(int v) {{ return v + 41; }}\n"),
    )
    .unwrap();

    // Warm pass: mostly function-cache hits, and per-unit digests to
    // compare against the cold batch.
    let mut warm_digests = Vec::new();
    let (mut hits, mut misses) = (0u64, 0u64);
    for u in &units {
        let r = request(&sock, &format!("cure {}", u.display())).unwrap();
        assert!(r.contains("\"status\":\"ok\""), "{}: {r}", u.display());
        warm_digests.push(field_str(&r, "digest"));
        hits += field_u64(&r, "fn_hits");
        misses += field_u64(&r, "fn_misses");
    }
    assert!(hits > 0, "warm pass reused no functions");
    assert!(
        misses >= 1,
        "the appended function must be re-cured somewhere"
    );
    srv.stop();

    // Ground truth: a cold full batch over the *current* tree, sequential
    // and parallel. The daemon's warm digests must match both.
    for jobs in [1usize, 4] {
        let mut bcfg = BatchConfig::new(ccured::Curer::new());
        bcfg.jobs = jobs;
        bcfg.use_cache = false;
        let cold = run_batch(&bcfg, &units).expect("cold batch");
        for (u, digest) in cold.units.iter().zip(&warm_digests) {
            assert_eq!(u.verdict, Verdict::Cured, "{}", u.path);
            assert_eq!(
                &format!("{:016x}", u.report_digest),
                digest,
                "{}: warm incremental cure diverged from cold batch at jobs={jobs}",
                u.path
            );
        }
    }
}

/// Soak: many clients, thousands of mixed requests — healthy, unreadable,
/// malformed, empty — and every single one gets a terminal reply.
#[test]
fn soak_thousands_of_mixed_requests_all_get_terminal_replies() {
    let scratch = Scratch::new("soak");
    let good = scratch.0.join("good.c");
    std::fs::write(
        &good,
        "int main(void) { int a[4]; int i;\nfor (i = 0; i < 4; i++) a[i] = i;\nreturn a[3]; }",
    )
    .unwrap();
    let broken = scratch.0.join("broken.c");
    std::fs::write(&broken, "int main(void { nope").unwrap();
    let empty = scratch.0.join("empty.c");
    std::fs::write(&empty, "").unwrap();

    let mut cfg = config(&scratch.0);
    cfg.workers = 4;
    cfg.quarantine_threshold = u32::MAX; // keep the broken unit failing, not refused
    let mut srv = Server::start(cfg).expect("start");
    let sock = srv.socket().to_path_buf();

    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 250; // 2000 requests total
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let sock = sock.clone();
            let good = good.clone();
            let broken = broken.clone();
            let empty = empty.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(PER_CLIENT);
                for i in 0..PER_CLIENT {
                    let line = match (c + i) % 5 {
                        0 => format!("cure {}", good.display()),
                        1 => format!("cure {}", broken.display()),
                        2 => format!("cure {}", empty.display()),
                        3 => "status".to_string(),
                        _ => format!("explain {}", good.display()),
                    };
                    let t = std::time::Instant::now();
                    let reply = request(&sock, &line).expect("reply");
                    latencies.push(t.elapsed());
                    assert!(
                        reply.contains("\"status\":\"ok\"")
                            || reply.contains("\"status\":\"error\"")
                            || reply.contains("\"status\":\"busy\""),
                        "non-terminal reply to `{line}`: {reply}"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<std::time::Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client"))
        .collect();
    assert_eq!(latencies.len(), CLIENTS * PER_CLIENT);

    // Reply-latency distribution: the soak is the worst traffic the daemon
    // sees in tests, so its percentiles bound the interactive experience.
    // The limits are deliberately loose (debug build, loaded CI boxes) —
    // they exist to catch unbounded-queueing regressions, not to bench.
    latencies.sort_unstable();
    let pct = |p: usize| latencies[(latencies.len() - 1) * p / 100];
    let (p50, p99) = (pct(50), pct(99));
    assert!(p50 <= p99, "percentiles are ordered");
    assert!(
        p50 < std::time::Duration::from_secs(1),
        "p50 reply latency {p50:?} over the soak budget"
    );
    assert!(
        p99 < std::time::Duration::from_secs(10),
        "p99 reply latency {p99:?} over the soak budget"
    );

    let st = request(&sock, "status").unwrap();
    assert!(
        field_u64(&st, "requests") >= (CLIENTS * PER_CLIENT) as u64,
        "{st}"
    );
    // The repeated healthy cure is served from the unit cache once warm.
    assert!(field_u64(&st, "hits") >= 1, "{st}");
    srv.stop();
}

/// Load shedding: with a tiny queue and slow-to-drain workers, a burst of
/// requests gets explicit `busy` replies, not unbounded queueing.
#[test]
fn queue_pressure_sheds_load_with_busy() {
    let scratch = Scratch::new("shed");
    let unit = scratch.0.join("u.c");
    std::fs::write(&unit, "int main(void) { return 0; }").unwrap();

    let mut cfg = config(&scratch.0);
    cfg.cache_dir = None;
    cfg.workers = 1;
    cfg.queue_cap = 1;
    let mut srv = Server::start(cfg).expect("start");
    let sock = srv.socket().to_path_buf();

    let handles: Vec<_> = (0..16)
        .map(|_| {
            let sock = sock.clone();
            let unit = unit.clone();
            std::thread::spawn(move || request(&sock, &format!("cure {}", unit.display())).unwrap())
        })
        .collect();
    let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        replies.iter().all(|r| r.contains("\"status\":")),
        "every reply terminal"
    );
    let ok = replies
        .iter()
        .filter(|r| r.contains("\"status\":\"ok\""))
        .count();
    assert!(ok >= 1, "some requests must get through");
    // Whether any burst request sees `busy` is timing-dependent; the
    // invariant that matters is the queue never exceeded its cap.
    let st = request(&sock, "status").unwrap();
    assert!(field_u64(&st, "queue_depth") <= 1, "{st}");
    srv.stop();
}

/// Regression (unwrap audit): a manifest full of junk paths and a
/// zero-byte unit produce verdicts, never a panic or an `Err`.
#[test]
fn malformed_manifest_and_zero_byte_unit_produce_verdicts() {
    let scratch = Scratch::new("malformed");
    let manifest = scratch.0.join("units.txt");
    std::fs::write(scratch.0.join("empty.c"), "").unwrap();
    std::fs::write(
        &manifest,
        "# junk ahead\n/no/such/dir/missing.c\n   \nempty.c\nnot-even-a-c-file.txt\n",
    )
    .unwrap();
    let mut cfg = BatchConfig::new(ccured::Curer::new());
    cfg.use_cache = false;
    let report = ccured_batch::run_path(&cfg, &manifest).expect("junk inputs are verdicts");
    assert_eq!(report.units.len(), 3, "three non-comment entries");
    let by_path = |needle: &str| {
        report
            .units
            .iter()
            .find(|u| u.path.contains(needle))
            .unwrap_or_else(|| panic!("no unit for {needle}"))
    };
    assert!(
        matches!(by_path("missing.c").verdict, Verdict::Unreadable(_)),
        "{:?}",
        by_path("missing.c").verdict
    );
    // A zero-byte unit cures (to an empty program) or fails the frontend —
    // either is a verdict; what it must never do is wedge the batch.
    let empty = by_path("empty.c");
    assert!(
        matches!(
            empty.verdict,
            Verdict::Cured | Verdict::Frontend(_) | Verdict::Internal(_)
        ),
        "{:?}",
        empty.verdict
    );
    assert!(
        matches!(
            by_path("not-even-a-c-file").verdict,
            Verdict::Unreadable(_) | Verdict::Frontend(_)
        ),
        "{:?}",
        by_path("not-even-a-c-file").verdict
    );
}
