//! E17 acceptance tests for the generative workload synthesizer and the
//! differential soundness campaign (`ccured-synth`).
//!
//! The always-on tier proves the generator is deterministic and that a
//! small campaign is sound with on-target histograms; the release tier
//! (`--ignored`) runs the full acceptance bar — ≥500 generated units,
//! every fault class seeded, zero escapes, zero tree-vs-VM divergences,
//! reproducible from the seed.

use ccured_synth::{generate, profiles, CampaignConfig, Profile, KIND_TOLERANCE_PCT};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ccured-synth-test-{tag}-{}", std::process::id()))
}

fn run(cfg: &CampaignConfig) -> ccured_synth::CampaignReport {
    let rep = ccured_synth::run_campaign(cfg).expect("campaign runs");
    let _ = std::fs::remove_dir_all(&cfg.out_dir);
    rep
}

#[test]
fn corpus_is_deterministic_from_seed() {
    for p in profiles::all() {
        let a = generate(&p, 6, 42);
        let b = generate(&p, 6, 42);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name, "{}", p.name);
            assert_eq!(x.source, y.source, "{}: same seed, same bytes", p.name);
        }
        let c = generate(&p, 6, 43);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.source != y.source),
            "{}: different seed must change the corpus",
            p.name
        );
    }
}

#[test]
fn named_profiles_round_trip_through_the_generator() {
    for name in ["mixed", "openssl", "bind", "openssh"] {
        let p = Profile::named(name).expect(name);
        assert_eq!(p.name, name);
        let units = generate(&p, 2, 7);
        for u in &units {
            assert!(u.name.starts_with(&format!("synth_{name}_")), "{}", u.name);
            assert!(u.source.contains("int main"), "{}", u.name);
        }
    }
    assert!(Profile::named("apache").is_none());
}

/// Small always-on campaign: sound, histograms within the 10-point
/// tolerance, all bookkeeping consistent.
#[test]
fn small_campaign_is_sound_with_on_target_histograms() {
    let mut cfg = CampaignConfig::new(scratch("small"));
    cfg.seed = 5;
    cfg.units = 16;
    cfg.mutants_per_unit = 1;
    let rep = run(&cfg);
    assert!(rep.ok(), "campaign unsound:\n{}", rep.render());
    assert!(
        rep.histograms_within(KIND_TOLERANCE_PCT),
        "profile histograms off target:\n{}",
        rep.render()
    );
    assert_eq!(rep.units, 16);
    assert_eq!(rep.mutants, 16);
    let (caught, escaped, masked, exhausted, invalid) = rep.outcome_totals();
    assert_eq!(escaped, 0);
    assert_eq!(caught + escaped + masked + exhausted + invalid, rep.mutants);
    assert_eq!(rep.profiles.len(), profiles::all().len());
}

/// Per-profile histogram fidelity at a size where the law of large numbers
/// has kicked in: every profile individually lands within tolerance.
#[test]
fn every_profile_lands_within_tolerance_individually() {
    let mut cfg = CampaignConfig::new(scratch("hist"));
    cfg.seed = 9;
    cfg.units = 32;
    cfg.mutants_per_unit = 0;
    let rep = run(&cfg);
    assert!(rep.cure_failures.is_empty(), "{}", rep.render());
    for p in &rep.profiles {
        assert!(
            p.within(KIND_TOLERANCE_PCT),
            "{}: measured {:?} vs target {:?} ({:.1} points off)",
            p.name,
            p.measured,
            p.target,
            p.max_deviation()
        );
    }
}

/// The full E17 acceptance bar: ≥500 units, ≥4 fault classes actually
/// seeded, zero escapes, zero tree-vs-VM divergences, and the whole
/// campaign reproducible from the seed. Release tier (`--ignored`).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "500-unit campaign is only run in release (make stress / CI)"
)]
fn full_campaign_five_hundred_units_zero_escapes_zero_divergences() {
    let build = |tag: &str| {
        let mut cfg = CampaignConfig::new(scratch(tag));
        cfg.seed = 2003;
        cfg.units = 504;
        cfg.mutants_per_unit = 4;
        cfg.use_cache = false;
        cfg
    };
    let rep = run(&build("full-a"));
    assert!(rep.units >= 500);
    assert!(rep.escapes.is_empty(), "escapes:\n{}", rep.render());
    assert!(rep.divergences.is_empty(), "divergences:\n{}", rep.render());
    assert!(rep.cure_failures.is_empty(), "failures:\n{}", rep.render());
    let seeded = rep.classes.iter().filter(|c| c.total > 0).count();
    assert!(seeded >= 4, "only {seeded} fault classes seeded");
    assert!(
        rep.histograms_within(KIND_TOLERANCE_PCT),
        "histograms off target:\n{}",
        rep.render()
    );
    // Reproducibility: a second campaign from the same seed reaches the
    // identical verdicts and histograms.
    let rep2 = run(&build("full-b"));
    assert_eq!(rep.outcome_totals(), rep2.outcome_totals());
    assert_eq!(rep.escapes, rep2.escapes);
    assert_eq!(rep.divergences, rep2.divergences);
    for (a, b) in rep.profiles.iter().zip(&rep2.profiles) {
        assert_eq!(a.measured, b.measured, "{}", a.name);
    }
}
