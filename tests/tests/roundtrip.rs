//! Printer/parser round-trip: for every corpus program and every
//! `examples/c` file, `pretty(parse(src))` must be a *fixpoint* —
//! re-parsing and re-printing it reproduces the same text. Printing is a
//! total function of the AST, so a pretty-print fixpoint is exactly
//! structural equality of `parse(src)` and `parse(pretty(parse(src)))`
//! up to spans (which textual comparison deliberately ignores — spans
//! change when the text is re-laid-out, structure must not).

use ccured_ast::parse_translation_unit;
use ccured_ast::pretty::print_unit;

/// Asserts the round trip for one source, returning the printed form.
fn roundtrip(name: &str, source: &str) -> String {
    let first = parse_translation_unit(source)
        .unwrap_or_else(|d| panic!("{name}: original source fails to parse: {}", d.msg));
    let printed = print_unit(&first);
    let second = parse_translation_unit(&printed)
        .unwrap_or_else(|d| panic!("{name}: pretty-printed output fails to parse: {}", d.msg));
    let reprinted = print_unit(&second);
    if printed != reprinted {
        let diverge = printed
            .lines()
            .zip(reprinted.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        let detail = match diverge {
            Some((i, (a, b))) => format!("line {}:\n  first:  {a}\n  second: {b}", i + 1),
            None => format!(
                "line counts differ: {} vs {}",
                printed.lines().count(),
                reprinted.lines().count()
            ),
        };
        panic!(
            "{name}: parse(pretty(parse(src))) is not structurally equal to parse(src); {detail}"
        );
    }
    printed
}

#[test]
fn batch_corpus_round_trips() {
    for w in ccured_workloads::batch_corpus() {
        roundtrip(&w.name, &w.source);
    }
}

#[test]
fn apache_modules_round_trip() {
    for w in ccured_workloads::apache::all_modules(4) {
        roundtrip(&w.name, &w.source);
    }
}

#[test]
fn figure9_daemons_round_trip() {
    for w in ccured_workloads::daemons::figure9_corpus() {
        roundtrip(&w.name, &w.source);
    }
}

#[test]
fn examples_round_trip() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../examples/c");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("examples/c exists") {
        let p = entry.expect("dir entry").path();
        if p.extension().is_some_and(|x| x == "c") {
            let src = std::fs::read_to_string(&p).expect("read example");
            roundtrip(&p.display().to_string(), &src);
            seen += 1;
        }
    }
    assert!(seen >= 6, "expected at least 6 examples, saw {seen}");
}

#[test]
fn printing_is_idempotent_on_wrapper_prelude() {
    // The stdlib wrapper prelude is itself subset C; it must survive the
    // same round trip the user programs do.
    let w = ccured_workloads::micro::safe_deref(4);
    let printed = roundtrip("micro_safe", &w.source);
    assert!(!printed.is_empty());
}
