//! Differential soundness suite for the second-generation loop optimizer
//! (`ccured-analysis`: invariant-check hoisting + SEQ bounds widening).
//!
//! Three configurations of the same workload are compared:
//!
//! * **no-opt**    — no static optimization at all (`--no-opt`);
//! * **elim-only** — redundant-check elimination, loop passes off
//!   (`--no-loop-opt`, the PR-5 baseline);
//! * **full**      — elimination + hoisting + widening (the default).
//!
//! All three must agree on every observable axis: program output, exit
//! code, error verdict, and the memory/call traffic counters. The loop
//! passes may only change *check* counters, and only downward: total
//! executed checks under `full` is never more than under `elim-only`, and
//! strictly less on the strided microbenchmarks. When a widened whole-trip
//! probe fails, the per-iteration residual must re-run and blame the exact
//! same site, at the exact same iteration, with the exact same error as the
//! unoptimized program.

use ccured::Curer;
use ccured_infer::InferOptions;
use ccured_rt::{Engine, ExecMode, Interp, Profile};
use ccured_workloads::{batch_corpus, daemons, micro, runner, suite_corpus, Workload};

/// The three optimizer configurations, as `(optimize, loop_opt)` pairs.
const CONFIGS: [(&str, bool, bool); 3] = [
    ("no-opt", false, false),
    ("elim-only", true, false),
    ("full", true, true),
];

fn corpus() -> Vec<Workload> {
    let mut ws = suite_corpus();
    for w in batch_corpus() {
        if !ws.iter().any(|x| x.name == w.name) {
            ws.push(w);
        }
    }
    ws.push(daemons::ftpd(2, false));
    ws.push(daemons::sendmail_like(3, false));
    ws
}

/// A while-loop that re-dereferences a loop-invariant SAFE pointer: the
/// eliminator keeps one null check per iteration (nothing dominates the
/// loop header), which is exactly what hoisting converts into a single
/// entry probe.
fn hoist_workload(iters: u32) -> Workload {
    let src = format!(
        "int drain(int *p, int n) {{\n\
           int s = 0;\n\
           int i = 0;\n\
           while (i < n) {{ s = s + *p; i = i + 1; }}\n\
           return s;\n\
         }}\n\
         int main(void) {{\n\
           int c = 7;\n\
           return drain(&c, {iters}) == 7 * {iters} ? 0 : 1;\n\
         }}"
    );
    Workload::new("hoist_invariant", src).without_wrappers()
}

/// A strided SEQ loop that runs off the end of its buffer at iteration 64:
/// the widened whole-trip probe fails at loop entry, so the per-iteration
/// residual must take over and fire at the precise overflowing index.
fn oob_stride_workload() -> Workload {
    let src = "int sum(int *a, int n) {\n\
               int s = 0;\n\
               for (int i = 0; i < n; i++) s = s + a[i];\n\
               return s;\n\
             }\n\
             int main(void) {\n\
               int buf[64];\n\
               for (int i = 0; i < 64; i++) buf[i] = 1;\n\
               return sum(buf, 80);\n\
             }"
    .to_string();
    Workload::new("oob_stride", src).without_wrappers()
}

/// Runs `w` under all three configurations, asserts observable
/// equivalence, and returns total executed checks per configuration in
/// [`CONFIGS`] order.
fn tri_differential(w: &Workload) -> [u64; 3] {
    let opts = InferOptions::default();
    let runs: Vec<_> = CONFIGS
        .iter()
        .map(|(name, optimize, loop_opt)| {
            let r = runner::run_cured_loop_opt(w, &opts, *optimize, *loop_opt)
                .unwrap_or_else(|e| panic!("{}: cure ({name}) failed: {e}", w.name));
            (*name, r)
        })
        .collect();
    let (_, base) = &runs[0];
    for (name, r) in &runs[1..] {
        let what = format!("{} ({name} vs no-opt)", w.name);
        assert_eq!(r.stats.error, base.stats.error, "{what}: verdicts differ");
        assert_eq!(r.stats.exit, base.stats.exit, "{what}: exit codes differ");
        assert_eq!(r.stats.output, base.stats.output, "{what}: outputs differ");
        let (c, b) = (&r.stats.counters, &base.stats.counters);
        assert_eq!(c.loads, b.loads, "{what}: load traffic changed");
        assert_eq!(c.stores, b.stores, "{what}: store traffic changed");
        assert_eq!(c.calls, b.calls, "{what}: call counts changed");
        assert_eq!(
            c.extern_calls, b.extern_calls,
            "{what}: extern calls changed"
        );
        assert_eq!(c.io_ops, b.io_ops, "{what}: I/O changed");
    }
    let totals: Vec<u64> = runs
        .iter()
        .map(|(_, r)| r.stats.counters.total_checks())
        .collect();
    assert!(
        totals[2] <= totals[1],
        "{}: loop passes added checks ({} > {})",
        w.name,
        totals[2],
        totals[1]
    );
    assert!(
        totals[1] <= totals[0],
        "{}: eliminator added checks ({} > {})",
        w.name,
        totals[1],
        totals[0]
    );
    [totals[0], totals[1], totals[2]]
}

#[test]
fn golden_corpus_agrees_across_all_three_configurations() {
    for w in corpus() {
        tri_differential(&w);
    }
}

#[test]
fn strided_micros_execute_strictly_fewer_checks() {
    for w in [micro::seq_index(20), micro::ptr_store(20)] {
        let [_, elim_only, full] = tri_differential(&w);
        assert!(
            full < elim_only,
            "{}: widening must win on strided loops ({full} vs {elim_only})",
            w.name
        );
        let opt = runner::run_cured_loop_opt(&w, &InferOptions::default(), true, true).unwrap();
        assert!(
            opt.cured.report.checks_widened > 0,
            "{}: report must attribute the win to widening",
            w.name
        );
    }
}

#[test]
fn invariant_pointer_checks_hoist_to_one_per_loop_entry() {
    let w = hoist_workload(40);
    let [_, elim_only, full] = tri_differential(&w);
    assert!(
        full < elim_only,
        "hoisting must win ({full} vs {elim_only})"
    );
    let opts = InferOptions::default();
    let opt = runner::run_cured_loop_opt(&w, &opts, true, true).unwrap();
    let noloop = runner::run_cured_loop_opt(&w, &opts, true, false).unwrap();
    assert!(
        opt.cured.report.checks_hoisted > 0,
        "report counts the hoist"
    );
    assert_eq!(noloop.cured.report.checks_hoisted, 0);
    assert_eq!(noloop.cured.report.checks_widened, 0);
    assert!(
        opt.stats.counters.null_checks < noloop.stats.counters.null_checks,
        "per-iteration null checks collapse to the entry probe: {} vs {}",
        opt.stats.counters.null_checks,
        noloop.stats.counters.null_checks
    );
}

/// Down-counting loop: guard `i >= 0`, step `i = i - 1`. The generalized
/// widener canonicalizes the direction and probes the entry index plus the
/// guard's extreme admissible index (here `0`).
fn down_count_workload() -> Workload {
    Workload::new(
        "widen_down",
        "int sum_down(int *a, int n) {\n\
           int s = 0;\n\
           for (int i = n - 1; i >= 0; i = i - 1) s = s + a[i];\n\
           return s;\n\
         }\n\
         int main(void) {\n\
           int buf[16];\n\
           for (int i = 15; i >= 0; i = i - 1) buf[i] = 2;\n\
           return sum_down(buf, 16) == 32 ? 0 : 1;\n\
         }",
    )
    .without_wrappers()
}

/// Non-unit stride: step `i = i + 2`. A stride-2 orbit visits a subset of
/// the stride-1 indices, so the same two-endpoint probe covers it.
fn stride2_workload() -> Workload {
    Workload::new(
        "widen_stride2",
        "int sum_even(int *a, int n) {\n\
           int s = 0;\n\
           for (int i = 0; i < n; i = i + 2) s = s + a[i];\n\
           return s;\n\
         }\n\
         int main(void) {\n\
           int buf[16];\n\
           for (int i = 15; i >= 0; i = i - 1) buf[i] = 3;\n\
           return sum_even(buf, 16) == 24 ? 0 : 1;\n\
         }",
    )
    .without_wrappers()
}

/// Down-counting and non-unit-stride loops are widening positives now that
/// the induction form is canonicalized: the report must attribute the win,
/// the per-iteration SEQ checks must collapse, and every observable must
/// stay identical to the `--no-loop-opt` baseline.
#[test]
fn generalized_widening_covers_down_count_and_strided_loops() {
    let opts = InferOptions::default();
    for w in [down_count_workload(), stride2_workload()] {
        let [_, elim_only, full_checks] = tri_differential(&w);
        assert!(
            full_checks < elim_only,
            "{}: widening must win ({full_checks} vs {elim_only})",
            w.name
        );
        let full = runner::run_cured_loop_opt(&w, &opts, true, true).unwrap();
        let noloop = runner::run_cured_loop_opt(&w, &opts, true, false).unwrap();
        assert!(
            full.cured.report.checks_widened > 0,
            "{}: the generalized widener must fire",
            w.name
        );
        assert_eq!(full.stats.exit, 0, "{}: self-check failed", w.name);
        assert_eq!(full.stats.exit, noloop.stats.exit, "{}", w.name);
        assert_eq!(full.stats.error, noloop.stats.error, "{}", w.name);
        assert_eq!(full.stats.output, noloop.stats.output, "{}", w.name);
        assert!(
            full.stats.counters.seq_bounds_checks < noloop.stats.counters.seq_bounds_checks,
            "{}: per-iteration SEQ checks must collapse ({} vs {})",
            w.name,
            full.stats.counters.seq_bounds_checks,
            noloop.stats.counters.seq_bounds_checks
        );
    }
}

/// Loop shapes the widener must still refuse. The aliased-index case must
/// agree across all three configurations, report zero widened checks, keep
/// its per-iteration SEQ bounds checks byte-for-byte identical to the
/// `--no-loop-opt` baseline, and pass its own self-check.
#[test]
fn widening_negatives_are_left_untouched() {
    // Aliased index: `i`'s address escapes and the step writes through the
    // alias, so nothing about `i`'s trajectory is knowable statically.
    let alias = Workload::new(
        "widen_neg_alias",
        "int sum_alias(int *a, int n) {\n\
           int s = 0;\n\
           int i = 0;\n\
           int *pi = &i;\n\
           while (i < n) { s = s + a[i]; *pi = *pi + 1; }\n\
           return s;\n\
         }\n\
         int main(void) {\n\
           int buf[12];\n\
           for (int i = 11; i >= 0; i = i - 1) buf[i] = 5;\n\
           return sum_alias(buf, 12) == 60 ? 0 : 1;\n\
         }",
    )
    .without_wrappers();

    let opts = InferOptions::default();
    {
        let w = alias;
        tri_differential(&w);
        let full = runner::run_cured_loop_opt(&w, &opts, true, true).unwrap();
        let noloop = runner::run_cured_loop_opt(&w, &opts, true, false).unwrap();
        assert_eq!(
            full.cured.report.checks_widened, 0,
            "{}: the widener must refuse this loop",
            w.name
        );
        assert_eq!(full.stats.exit, 0, "{}: self-check failed", w.name);
        assert_eq!(full.stats.exit, noloop.stats.exit, "{}", w.name);
        assert_eq!(full.stats.error, noloop.stats.error, "{}", w.name);
        assert_eq!(full.stats.output, noloop.stats.output, "{}", w.name);
        assert_eq!(
            full.stats.counters.seq_bounds_checks, noloop.stats.counters.seq_bounds_checks,
            "{}: per-iteration SEQ checks must be untouched",
            w.name
        );
    }
}

/// Widened sites the loop optimizer recorded inside one function.
fn widened_in(cured: &ccured::Cured, func: &str) -> usize {
    cured
        .sites
        .iter()
        .filter(|s| s.func == func && s.opt_action == Some("widened"))
        .count()
}

/// No-wrap proofs at the numeric extremes: an unsigned induction variable
/// whose widened endpoint would wrap past `uN::MAX` (or under `0`) must be
/// refused, while the boundary-exact form stays admitted — so the
/// negatives below are refusals of the *proof*, not a matcher that never
/// fires on unsigned loops.
#[test]
fn unsigned_extreme_bounds_stay_widening_negative() {
    // (a) `i <= n` with a variable unsigned bound: the bound's maximal
    // possible value is u32::MAX, so the endpoint-plus-stride computation
    // `E(B) + 1` exceeds the step type's range — refused.
    let le_var = Workload::new(
        "widen_neg_umax",
        "int sum_le(int *a, unsigned n) {\n\
           int s = 0;\n\
           for (unsigned i = 0; i <= n; i = i + 1) s = s + a[i];\n\
           return s;\n\
         }\n\
         int main(void) {\n\
           int buf[8];\n\
           for (int i = 0; i < 8; i++) buf[i] = 1;\n\
           return sum_le(buf, 7) == 8 ? 0 : 1;\n\
         }",
    )
    .without_wrappers();
    // (b) unsigned down-count through zero: `i >= 0` never exits and the
    // step from 0 wraps to u32::MAX, so `E(B) - 1` underflows — refused.
    // The runtime wrap then faults on `a[u32::MAX]` identically in every
    // configuration (the per-iteration residual is exactly the unoptimized
    // check).
    let ge_zero = Workload::new(
        "widen_neg_uwrap",
        "int drain(int *a) {\n\
           int s = 0;\n\
           for (unsigned i = 3; i >= 0; i = i - 1) s = s + a[i];\n\
           return s;\n\
         }\n\
         int main(void) {\n\
           int buf[4];\n\
           for (int i = 0; i < 4; i++) buf[i] = 1;\n\
           return drain(buf);\n\
         }",
    )
    .without_wrappers();
    let opts = InferOptions::default();
    for (w, func) in [(le_var, "sum_le"), (ge_zero, "drain")] {
        tri_differential(&w);
        let full = runner::run_cured_loop_opt(&w, &opts, true, true).unwrap();
        assert_eq!(
            widened_in(&full.cured, func),
            0,
            "{}: the no-wrap proof must refuse this loop",
            w.name
        );
    }
    // Boundary positive: `i > 0` down to exactly zero satisfies
    // `E(B) - stride >= 0` with no slack at all.
    let gt_zero = Workload::new(
        "widen_pos_uzero",
        "int pos(int *a) {\n\
           int s = 0;\n\
           for (unsigned i = 7; i > 0; i = i - 1) s = s + a[i];\n\
           return s;\n\
         }\n\
         int main(void) {\n\
           int buf[8];\n\
           for (int i = 0; i < 8; i++) buf[i] = 1;\n\
           return pos(buf) == 7 ? 0 : 1;\n\
         }",
    )
    .without_wrappers();
    tri_differential(&gt_zero);
    let full = runner::run_cured_loop_opt(&gt_zero, &InferOptions::default(), true, true).unwrap();
    assert!(
        widened_in(&full.cured, "pos") > 0,
        "the boundary-exact unsigned down-count must still widen"
    );
    assert_eq!(full.stats.exit, 0, "self-check failed");
}

/// Cures with explicit optimizer configuration (the runner helper hides
/// the `Cured` needed for profiled execution).
fn cure_cfg(w: &Workload, optimize: bool, loop_opt: bool) -> ccured::Cured {
    let mut curer = Curer::new();
    curer.optimize(optimize);
    curer.loop_optimize(loop_opt);
    if w.with_wrappers {
        curer.with_stdlib_wrappers();
    }
    curer.cure_source(&w.source).expect("cure")
}

fn run_profiled(
    cured: &ccured::Cured,
    engine: Engine,
    input: &[u8],
) -> (
    Result<i64, ccured_rt::RtError>,
    Vec<u8>,
    ccured_rt::Counters,
    Profile,
) {
    let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
    interp.set_engine(engine);
    interp.set_input(input.to_vec());
    interp.enable_profile(cured.sites.len());
    let result = interp.run();
    let profile = interp.profile().cloned().expect("profile recorded");
    (result, interp.output().to_vec(), interp.counters, profile)
}

/// The failing sites of a profiled run, as `(site_id, fails)` pairs.
fn failing_sites(cured: &ccured::Cured, profile: &Profile) -> Vec<(u32, u64, &'static str)> {
    cured
        .sites
        .iter()
        .filter_map(|s| {
            let i = s.id.index()?;
            let c = profile.sites.get(i)?;
            (c.fails > 0).then_some((s.id.0, c.fails, s.check))
        })
        .collect()
}

/// When the whole-trip probe fails, the residual per-iteration check must
/// re-run and blame the exact site — same error, same failing site id,
/// exactly one recorded failure — as the unoptimized program.
#[test]
fn failed_widened_probe_blames_the_precise_iteration() {
    let w = oob_stride_workload();
    let full = cure_cfg(&w, true, true);
    let noopt = cure_cfg(&w, false, false);
    assert!(full.report.checks_widened > 0, "the OOB loop must widen");

    let (rf, outf, _, pf) = run_profiled(&full, Engine::default(), &w.input);
    let (rn, outn, _, pn) = run_profiled(&noopt, Engine::default(), &w.input);
    let ef = rf.expect_err("the cured run must stop the overrun");
    let en = rn.expect_err("the unoptimized run must stop the overrun");
    assert!(ef.is_check_failure(), "stopped by a check: {ef}");
    assert_eq!(ef, en, "widening changed the failure verdict");
    assert_eq!(outf, outn, "widening changed the output before the fault");

    let ff = failing_sites(&full, &pf);
    let fn_ = failing_sites(&noopt, &pn);
    assert_eq!(ff.len(), 1, "exactly one site fails: {ff:?}");
    assert_eq!(ff, fn_, "the blamed site must be identical to no-opt");
    let (_, fails, check) = ff[0];
    assert_eq!(fails, 1, "the residual fires once, at the precise index");
    assert_eq!(check, "seq_bounds");
}

/// Both execution engines must agree exactly on optimized programs — the
/// VM routes guard machinery through the structural executor, so counters,
/// output, and verdicts are identical by construction.
#[test]
fn engines_agree_on_optimized_programs() {
    for w in [
        micro::seq_index(20),
        micro::ptr_store(10),
        hoist_workload(25),
        oob_stride_workload(),
    ] {
        let cured = cure_cfg(&w, true, true);
        let (rt, outt, ct, pt) = run_profiled(&cured, Engine::Tree, &w.input);
        let (rv, outv, cv, pv) = run_profiled(&cured, Engine::Vm, &w.input);
        assert_eq!(rt, rv, "{}: results differ across engines", w.name);
        assert_eq!(outt, outv, "{}: outputs differ across engines", w.name);
        assert_eq!(ct, cv, "{}: counters differ across engines", w.name);
        assert_eq!(pt, pv, "{}: profiles differ across engines", w.name);
    }
}

/// Cures with the temporal pipeline flag on top of the full optimizer.
fn cure_temporal(w: &Workload, optimize: bool, loop_opt: bool) -> ccured::Cured {
    let mut curer = Curer::new();
    curer.optimize(optimize);
    curer.loop_optimize(loop_opt);
    curer.temporal(true);
    if w.with_wrappers {
        curer.with_stdlib_wrappers();
    }
    curer.cure_source(&w.source).expect("cure")
}

/// Like [`run_profiled`], with the runtime's temporal key table enabled.
fn run_temporal(
    cured: &ccured::Cured,
    engine: Engine,
    input: &[u8],
) -> (
    Result<i64, ccured_rt::RtError>,
    Vec<u8>,
    ccured_rt::Counters,
    Profile,
) {
    let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
    interp.set_engine(engine);
    interp.set_temporal(true);
    interp.set_input(input.to_vec());
    interp.enable_profile(cured.sites.len());
    let result = interp.run();
    let profile = interp.profile().cloned().expect("profile recorded");
    (result, interp.output().to_vec(), interp.counters, profile)
}

/// A key check on a loop-invariant pointer is only a loop invariant when
/// nothing in the loop can `free` — so temporal checks hoist out of
/// call-free loops and stay per-iteration the moment the body calls.
#[test]
fn temporal_checks_hoist_only_out_of_call_free_loops() {
    // Call-free invariant loop: the temporal check hoists alongside the
    // null check, and the hoist is visible in the executed counters.
    let callfree = hoist_workload(30);
    let full = cure_temporal(&callfree, true, true);
    assert!(
        full.sites
            .iter()
            .any(|s| s.check == "temporal" && s.opt_action == Some("hoisted")),
        "call-free loop: the temporal check must hoist"
    );
    let noloop = cure_temporal(&callfree, true, false);
    let (rf, _, cf, _) = run_temporal(&full, Engine::default(), &callfree.input);
    let (rn, _, cn, _) = run_temporal(&noloop, Engine::default(), &callfree.input);
    assert_eq!(rf, rn, "hoisting changed the verdict");
    assert!(
        cf.temporal_checks < cn.temporal_checks,
        "per-iteration key checks collapse to the entry probe: {} vs {}",
        cf.temporal_checks,
        cn.temporal_checks
    );

    // Same loop shape with a call in the body: `id` *could* free the
    // allocation (interprocedurally unknown), so every iteration re-checks.
    let calling = Workload::new(
        "temporal_call_loop",
        "int id(int x) { return x; }\n\
         int drain(int *p, int n) {\n\
           int s = 0;\n\
           int i = 0;\n\
           while (i < n) { s = s + id(*p); i = i + 1; }\n\
           return s;\n\
         }\n\
         int main(void) {\n\
           int c = 5;\n\
           return drain(&c, 6) == 30 ? 0 : 1;\n\
         }",
    )
    .without_wrappers();
    let cured = cure_temporal(&calling, true, true);
    let loop_temporals: Vec<_> = cured
        .sites
        .iter()
        .filter(|s| s.func == "drain" && s.check == "temporal")
        .collect();
    assert!(!loop_temporals.is_empty(), "the deref emits a key check");
    for s in &loop_temporals {
        assert_eq!(
            s.opt_action, None,
            "a calling loop must not hoist temporal checks"
        );
        let why = s.keep_reason.as_deref().unwrap_or("");
        assert!(
            why.contains("free"),
            "keep-reason names the free hazard: {why:?}"
        );
    }
    let (r, _, _, _) = run_temporal(&cured, Engine::default(), &calling.input);
    assert_eq!(r, Ok(0), "self-check failed");
}

/// The acceptance bar on the engine axis: under `--temporal`, tree and
/// tiered VM stay byte-identical in results, output, counters (including
/// the new `temporal_checks`), and per-site profiles.
#[test]
fn engines_agree_on_temporal_programs() {
    let uaf = Workload::new(
        "temporal_uaf",
        "extern void *malloc(unsigned long n);\n\
         extern void free(void *p);\n\
         int main(void) {\n\
           int *p = (int *)malloc(4);\n\
           *p = 9;\n\
           free(p);\n\
           return *p;\n\
         }",
    )
    .without_wrappers();
    for w in [micro::seq_index(16), hoist_workload(20), uaf] {
        let cured = cure_temporal(&w, true, true);
        let (rt, outt, ct, pt) = run_temporal(&cured, Engine::Tree, &w.input);
        let (rv, outv, cv, pv) = run_temporal(&cured, Engine::Vm, &w.input);
        assert_eq!(rt, rv, "{}: results differ across engines", w.name);
        assert_eq!(outt, outv, "{}: outputs differ across engines", w.name);
        assert_eq!(ct, cv, "{}: counters differ across engines", w.name);
        assert_eq!(pt, pv, "{}: profiles differ across engines", w.name);
    }
}
