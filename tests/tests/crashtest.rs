//! Differential fault-injection crash test (tier 2).
//!
//! Seeds a large deterministic batch of memory-safety faults across the
//! micro and Olden workloads, cures every mutant, and verifies the central
//! soundness claim end-to-end: **no seeded fault ever escapes** the cured
//! program as a raw memory error. Every mutant must instead be caught by a
//! CCured check, neutralized by the cured semantics (GC-backed `free`,
//! zeroing allocator), masked, or stopped by a sandbox limit.

use ccured_faultinject::{crash_test, CrashTest, FaultClass, Outcome};
use ccured_workloads::{micro, olden, Workload};

/// Small-parameter corpus: every workload finishes well inside the
/// harness's per-mutant fuel budget, so runaway mutants (not slow
/// workloads) are the only source of `ResourceExhausted`.
fn corpus() -> Vec<Workload> {
    vec![
        micro::seq_index(8),
        micro::ptr_store(4),
        micro::safe_deref(4),
        micro::rtti_dispatch(3),
        olden::treeadd(4),
        olden::em3d(8, 3, 2),
    ]
}

#[test]
fn no_fault_escapes_the_cure_across_the_corpus() {
    let ws = corpus();
    let rep = crash_test(&ws, &CrashTest::new(216, 0xCC)).expect("corpus lowers");
    assert_eq!(rep.runs.len(), 216);

    // The one outcome that must never happen: a ground-truth memory error
    // surviving the cure.
    assert!(
        rep.escaped().is_empty(),
        "soundness bug — seeded fault escaped the cure:\n{}",
        rep.render()
    );

    // Every fault class must actually be exercised by the batch.
    assert_eq!(
        rep.classes_present(),
        FaultClass::ALL.to_vec(),
        "fault class missing from the batch:\n{}",
        rep.render()
    );

    // The harness must be *detecting* faults, not just masking them: the
    // always-triggering synthetic classes have to show real catches.
    for class in [FaultClass::BadDowncast, FaultClass::PtrSmuggle] {
        assert!(
            rep.count(class, Outcome::Caught) > 0,
            "{class} mutants were never caught:\n{}",
            rep.render()
        );
    }

    // And the harness itself must stay healthy: mutants it could not
    // assess (cure errors, panics) would silently shrink coverage.
    let invalid: usize = FaultClass::ALL
        .iter()
        .map(|c| rep.count(*c, Outcome::Invalid))
        .sum();
    assert_eq!(invalid, 0, "unassessable mutants:\n{}", rep.render());
}

#[test]
fn batches_are_deterministic_per_seed() {
    let ws = vec![micro::seq_index(8), olden::treeadd(4)];
    let a = crash_test(&ws, &CrashTest::new(36, 7)).expect("lowers");
    let b = crash_test(&ws, &CrashTest::new(36, 7)).expect("lowers");
    assert_eq!(a.runs.len(), b.runs.len());
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.class, y.class, "mutant #{}", x.id);
        assert_eq!(x.description, y.description, "mutant #{}", x.id);
        assert_eq!(x.outcome, y.outcome, "mutant #{}", x.id);
        assert_eq!(x.ground_truth, y.ground_truth, "mutant #{}", x.id);
        assert_eq!(x.cured, y.cured, "mutant #{}", x.id);
    }
    // A different seed picks different sites somewhere in the batch.
    let c = crash_test(&ws, &CrashTest::new(36, 8)).expect("lowers");
    assert!(
        a.runs
            .iter()
            .zip(&c.runs)
            .any(|(x, y)| x.description != y.description),
        "seed change did not move any mutation site"
    );
}
