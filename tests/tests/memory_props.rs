//! Property tests for the memory model (the ground-truth substrate) and
//! the Figure 10 representation invariants maintained by the interpreter.

use ccured_rt::mem::{AllocKind, Memory, Pointer};
use ccured_rt::value::PtrVal;
use ccured_rt::RtError;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_roundtrip(off in 0u64..56, size in prop::sample::select(vec![1u64, 2, 4, 8]), v in any::<i64>()) {
        let mut m = Memory::new();
        let a = m.alloc(64, AllocKind::Heap).unwrap();
        let p = Pointer { alloc: a, offset: off as i64 };
        m.write_int(p, size, v as i128).unwrap();
        let back = m.read_int(p, size, true).unwrap();
        // The readback is the truncation of v to `size` bytes.
        let bits = size * 8;
        let expect = if bits >= 64 {
            v as i128
        } else {
            let shift = 128 - bits as u32;
            (((v as i128) << shift) ) >> shift
        };
        prop_assert_eq!(back, expect);
    }

    #[test]
    fn oob_never_succeeds(off in 56i64..80, size in prop::sample::select(vec![1u64, 2, 4, 8])) {
        let mut m = Memory::new();
        let a = m.alloc(60, AllocKind::Heap).unwrap();
        let p = Pointer { alloc: a, offset: off };
        let r = m.write_int(p, size, 1);
        if (off as u64) + size <= 60 {
            prop_assert!(r.is_ok());
        } else {
            let oob = matches!(r, Err(RtError::OutOfBounds { .. }));
            prop_assert!(oob);
        }
    }

    #[test]
    fn pointer_tags_track_overwrites(slot in 0u64..7, clobber in 0u64..56) {
        let mut m = Memory::new();
        let a = m.alloc(64, AllocKind::Heap).unwrap();
        let b = m.alloc(8, AllocKind::Heap).unwrap();
        let p = Pointer { alloc: a, offset: (slot * 8) as i64 };
        m.write_ptr(p, PtrVal::Safe(Pointer { alloc: b, offset: 0 }), 8).unwrap();
        prop_assert!(m.has_ptr_tag(p));
        // Clobbering any byte of the slot clears the tag; elsewhere it stays.
        m.write_int(Pointer { alloc: a, offset: clobber as i64 }, 1, 0x5A).unwrap();
        let overlaps = clobber + 1 > slot * 8 && clobber < slot * 8 + 8;
        prop_assert_eq!(!m.has_ptr_tag(p), overlaps);
    }

    #[test]
    fn copy_region_preserves_everything(
        src_off in 0u64..16,
        dst_off in 32u64..48,
        len in 1u64..16,
    ) {
        let mut m = Memory::new();
        let a = m.alloc(64, AllocKind::Heap).unwrap();
        let t = m.alloc(8, AllocKind::Heap).unwrap();
        // Fill the source with a known pattern + one pointer at its start
        // (if it fits on a word boundary).
        for i in 0..16u64 {
            m.write_int(Pointer { alloc: a, offset: (src_off + i).min(63) as i64 }, 1, i as i128).ok();
        }
        let has_ptr = len >= 8 && src_off % 8 == 0;
        if has_ptr {
            m.write_ptr(
                Pointer { alloc: a, offset: src_off as i64 },
                PtrVal::Safe(Pointer { alloc: t, offset: 4 }),
                8,
            ).unwrap();
        }
        m.copy_region(
            Pointer { alloc: a, offset: dst_off as i64 },
            Pointer { alloc: a, offset: src_off as i64 },
            len,
        ).unwrap();
        if has_ptr {
            let v = m.read_ptr(Pointer { alloc: a, offset: dst_off as i64 }, 8).unwrap();
            prop_assert_eq!(v, PtrVal::Safe(Pointer { alloc: t, offset: 4 }));
        } else {
            // Bytes must match.
            let sb = m.read_bytes(Pointer { alloc: a, offset: src_off as i64 }, len).unwrap().to_vec();
            let db = m.read_bytes(Pointer { alloc: a, offset: dst_off as i64 }, len).unwrap().to_vec();
            prop_assert_eq!(sb, db);
        }
    }

    #[test]
    fn freed_memory_never_readable(size in 1u64..64) {
        let mut m = Memory::new();
        let a = m.alloc(size, AllocKind::Heap).unwrap();
        let p = Pointer { alloc: a, offset: 0 };
        m.write_int(p, 1, 1).unwrap();
        m.free(a).unwrap();
        let uaf_r = matches!(m.read_int(p, 1, false), Err(RtError::UseAfterFree));
        prop_assert!(uaf_r);
        let uaf_w = matches!(m.write_int(p, 1, 2), Err(RtError::UseAfterFree));
        prop_assert!(uaf_w);
        let dbl = matches!(m.free(a), Err(RtError::UseAfterFree));
        prop_assert!(dbl);
    }

    #[test]
    fn va_roundtrip_any_offset(off in 0i64..4096) {
        let mut m = Memory::new();
        let a = m.alloc(4096, AllocKind::Global).unwrap();
        let p = Pointer { alloc: a, offset: off };
        let va = m.va_of(&PtrVal::Safe(p));
        prop_assert_eq!(m.ptr_of_va(va), Some(p));
    }

    #[test]
    fn seq_offsets_preserve_bounds(lo in 0i64..8, hi in 16i64..32, moves in prop::collection::vec(-8i64..8, 0..8)) {
        let mut m = Memory::new();
        let a = m.alloc(64, AllocKind::Heap).unwrap();
        let mut v = PtrVal::Seq { p: Pointer { alloc: a, offset: lo }, lo, hi };
        for d in moves {
            v = v.offset_by(d);
            match v {
                PtrVal::Seq { lo: l2, hi: h2, .. } => {
                    prop_assert_eq!(l2, lo, "lower bound is immutable");
                    prop_assert_eq!(h2, hi, "upper bound is immutable");
                }
                other => prop_assert!(false, "representation changed: {other:?}"),
            }
        }
    }
}
