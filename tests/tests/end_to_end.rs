//! End-to-end integration tests spanning every crate: parse → lower →
//! infer → wrap → instrument → execute, checking observable equivalence
//! between original and cured runs and the safety outcomes the paper
//! promises.

use ccured::Curer;
use ccured_infer::InferOptions;
use ccured_rt::{ExecMode, Interp, RtError};
use ccured_workloads::{apache, daemons, micro, olden, ptrdist, runner, spec};

fn run_original(src: &str) -> (Result<i64, RtError>, Vec<u8>) {
    let tu = ccured_ast::parse_translation_unit(src).expect("parse");
    let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
    let mut i = Interp::new(&prog, ExecMode::Original);
    let r = i.run();
    (r, i.output().to_vec())
}

fn run_cured(src: &str) -> (Result<i64, RtError>, Vec<u8>) {
    let cured = Curer::new().cure_source(src).expect("cure");
    let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
    let r = i.run();
    (r, i.output().to_vec())
}

/// A correct program behaves identically original vs cured.
fn assert_equivalent(src: &str) {
    let (ro, oo) = run_original(src);
    let (rc, oc) = run_cured(src);
    assert_eq!(ro.as_ref().ok(), rc.as_ref().ok(), "exit codes differ");
    assert!(ro.is_ok(), "original failed: {ro:?}");
    assert_eq!(oo, oc, "outputs differ");
}

#[test]
fn quicksort_equivalence() {
    assert_equivalent(
        r#"
extern int printf(char *fmt, ...);
void sort(int *a, int lo, int hi) {
    if (lo >= hi) return;
    int pivot = a[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j++) {
        if (a[j] < pivot) {
            i++;
            int t = a[i]; a[i] = a[j]; a[j] = t;
        }
    }
    int t = a[i + 1]; a[i + 1] = a[hi]; a[hi] = t;
    sort(a, lo, i);
    sort(a, i + 2, hi);
}
int main(void) {
    int v[10];
    for (int i = 0; i < 10; i++) v[i] = (i * 7 + 3) % 10;
    sort(v, 0, 9);
    for (int i = 0; i < 10; i++) printf("%d ", v[i]);
    printf("\n");
    for (int i = 0; i < 10; i++) if (v[i] != i) return 1;
    return 0;
}
"#,
    );
}

#[test]
fn linked_list_equivalence() {
    assert_equivalent(
        r#"
extern void *malloc(unsigned long n);
extern int printf(char *fmt, ...);
struct Node { int v; struct Node *next; };
int main(void) {
    struct Node *head = 0;
    for (int i = 0; i < 10; i++) {
        struct Node *n = (struct Node *)malloc(sizeof(struct Node));
        n->v = i;
        n->next = head;
        head = n;
    }
    int s = 0;
    for (struct Node *p = head; p != 0; p = p->next) s += p->v;
    printf("sum=%d\n", s);
    return s == 45 ? 0 : 1;
}
"#,
    );
}

#[test]
fn string_processing_equivalence() {
    let src = r#"
extern int printf(char *fmt, ...);
int main(void) {
    char buf[64];
    strcpy(buf, "the quick brown fox");
    int words = 1;
    for (unsigned long i = 0; i < strlen(buf); i++)
        if (buf[i] == ' ') words++;
    printf("%d words, %d chars\n", words, (int)strlen(buf));
    return words == 4 ? 0 : 1;
}
"#;
    // Wrapped version must also be equivalent.
    let cured = Curer::new()
        .with_stdlib_wrappers()
        .cure_source(src)
        .expect("cure");
    let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
    assert_eq!(i.run().unwrap(), 0);
    assert_eq!(String::from_utf8_lossy(i.output()), "4 words, 19 chars\n");
}

#[test]
fn function_pointer_table_equivalence() {
    assert_equivalent(
        r#"
extern int printf(char *fmt, ...);
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
int main(void) {
    int (*ops[3])(int, int);
    ops[0] = add; ops[1] = sub; ops[2] = mul;
    int r = 0;
    for (int i = 0; i < 3; i++) r += ops[i](10, 3);
    printf("%d\n", r);
    return r == 13 + 7 + 30 ? 0 : 1;
}
"#,
    );
}

#[test]
fn whole_corpus_runs_equivalently() {
    let mut corpus = ccured_workloads::suite_corpus();
    corpus.extend(apache::all_modules(2));
    corpus.push(daemons::ftpd(2, false));
    corpus.push(daemons::sendmail_like(3, false));
    corpus.push(daemons::bind_like(3, 8));
    corpus.push(daemons::openssl_cast(4));
    corpus.push(daemons::openssl_bn(3));
    corpus.push(daemons::openssh_like(3, true));
    corpus.push(daemons::pcnet32(3));
    corpus.push(daemons::sbull(4));
    corpus.push(micro::safe_deref(10));
    corpus.push(micro::seq_index(5));
    corpus.push(micro::rtti_dispatch(5));
    for w in corpus {
        let o = runner::run_original(&w).expect("frontend");
        assert!(o.ok(), "{}: original failed: {:?}", w.name, o.error);
        let c = runner::run_cured(&w, &InferOptions::default())
            .unwrap_or_else(|e| panic!("{}: cure failed: {e}", w.name));
        assert!(
            c.stats.ok(),
            "{}: cured failed: {:?}",
            w.name,
            c.stats.error
        );
        assert_eq!(o.exit, c.stats.exit, "{}: exit codes differ", w.name);
        assert_eq!(o.output, c.stats.output, "{}: outputs differ", w.name);
    }
}

#[test]
fn corpus_runs_under_all_baselines() {
    for w in [spec::compress_like(1, 1), olden::treeadd(5), ptrdist::ks(8)] {
        for mode in [ExecMode::Purify, ExecMode::Valgrind, ExecMode::JonesKelly] {
            let r = runner::run_baseline(&w, mode).expect("frontend");
            assert!(r.ok(), "{}: baseline failed: {:?}", w.name, r.error);
            assert_eq!(r.exit, w.expect_exit, "{}", w.name);
        }
    }
}

#[test]
fn cured_overhead_is_bounded() {
    // CPU-bound workloads stay within the paper's overall envelope (< 2x).
    for w in ccured_workloads::suite_corpus() {
        let r = runner::measure(&w, &InferOptions::default()).expect("measure");
        assert!(
            r.ccured < 2.2,
            "{}: cured ratio {} exceeds the paper envelope",
            w.name,
            r.ccured
        );
        assert!(r.ccured >= 1.0, "{}: cured cannot be faster", w.name);
    }
}

#[test]
fn baselines_cost_an_order_of_magnitude_more() {
    for w in [spec::compress_like(2, 1), olden::em3d(16, 3, 4)] {
        let r = runner::measure(&w, &InferOptions::default()).expect("measure");
        assert!(
            r.purify > 4.0 * r.ccured,
            "{}: purify {} vs ccured {}",
            w.name,
            r.purify,
            r.ccured
        );
        assert!(
            r.valgrind > 4.0 * r.ccured,
            "{}: valgrind {} vs ccured {}",
            w.name,
            r.valgrind,
            r.ccured
        );
    }
}

#[test]
fn exploit_scenarios_are_prevented() {
    for w in [daemons::ftpd(3, true), daemons::sendmail_like(4, true)] {
        let c = runner::run_cured(&w, &InferOptions::default()).expect("cure");
        let e = c.stats.error.expect("cured must stop the exploit");
        assert!(e.is_check_failure(), "{}: {e}", w.name);
    }
}

#[test]
fn use_after_free_semantics_follow_the_collector() {
    let src = r#"
extern void *malloc(unsigned long n);
extern void free(void *p);
int main(void) {
    int *p = (int *)malloc(sizeof(int));
    *p = 1;
    free(p);
    return *p;
}
"#;
    let (ro, _) = run_original(src);
    assert_eq!(ro.unwrap_err(), RtError::UseAfterFree);
    // Cured programs run under CCured's conservative collector: `free` is a
    // no-op, so the dangling access is *defined* and reads the old value —
    // use-after-free is eliminated by construction.
    let (rc, _) = run_cured(src);
    assert_eq!(rc.unwrap(), 1, "GC keeps the object alive");
    // Opting out of the collector reintroduces the hole (which is exactly
    // why CCured ships with one).
    let cured = Curer::new().cure_source(src).expect("cure");
    let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
    i.set_gc_mode(false);
    assert!(i.run().is_err());
}

#[test]
fn annotations_survive_the_whole_pipeline() {
    let cured = Curer::new()
        .cure_source("int f(int * __SEQ p, int n) { return p[n]; } int main(void) { int a[3]; a[0]=1;a[1]=2;a[2]=3; return f(a, 2) == 3 ? 0 : 1; }")
        .expect("cure");
    assert!(cured.report.annotation_violations.is_empty());
    let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
    assert_eq!(i.run().unwrap(), 0);
}

#[test]
fn trusted_interface_functions_skip_checks_end_to_end() {
    // The interior overflow is caught when the code is cured normally...
    let body = r#"
struct S { char buf[4]; int sentinel; };
int poke(struct S *s, int i) {
    s->buf[i] = 42;
    return s->sentinel;
}
int main(void) {
    struct S s;
    s.sentinel = 7;
    return poke(&s, 5);
}
"#;
    let (r, _) = run_cured(body);
    assert!(r.unwrap_err().is_check_failure());
    // ...but a trusted-interface function is exempt (the paper's kernel
    // macros): the overflow proceeds exactly as in plain C.
    let trusted = format!(
        "#pragma ccured_trusted(poke)
{body}"
    );
    let (r, _) = run_cured(&trusted);
    let v = r.expect("trusted function runs unchecked");
    assert_ne!(v, 7, "the overflow silently corrupted the sentinel");
}

#[test]
fn custom_allocator_with_trusted_cast_runs_cured() {
    // The paper's canonical trusted-cast use: a custom allocator carving
    // typed objects out of a character arena.
    assert_equivalent(
        r#"char arena[128];
        int arena_used;
        char *arena_alloc(int n) {
            char *p = arena + arena_used;
            arena_used += n;
            return p;
        }
        struct Pair { int a; int b; };
        int main(void) {
            arena_used = 0;
            struct Pair *x = (struct Pair * __TRUSTED)arena_alloc(8);
            struct Pair *y = (struct Pair * __TRUSTED)arena_alloc(8);
            x->a = 1; x->b = 2;
            y->a = 10; y->b = 20;
            return x->a + x->b + y->a + y->b;
        }"#,
    );
}

#[test]
fn review_surface_lists_trusted_and_bad_casts() {
    let src = r#"struct Obj { int a; long b; };
    char arena[64];
    int main(void) {
        struct Obj *o = (struct Obj * __TRUSTED)arena;
        o->a = 1;
        double *bad = (double *)&o->a;
        return o->a + (bad != 0);
    }"#;
    let cured = Curer::new().cure_source(src).expect("cure");
    let map = ccured_ast::SourceMap::new("t.c", src);
    let surface = cured.review_surface(&map);
    assert_eq!(surface.len(), 2, "{surface:?}");
    assert!(surface.iter().any(|l| l.contains("trusted cast")));
    assert!(surface.iter().any(|l| l.contains("BAD cast")));
    // Every line carries a position.
    assert!(surface.iter().all(|l| l.starts_with("t.c:")));
}

#[test]
fn original_ccured_mode_still_runs_correctly() {
    // WILD pointers are slower but must preserve behaviour.
    let w = spec::ijpeg_oo(10, 2);
    let old = runner::run_cured(&w, &InferOptions::original_ccured()).expect("cure");
    assert!(old.stats.ok(), "{:?}", old.stats.error);
    assert_eq!(old.stats.exit, 0);
    assert!(old.stats.counters.wild_bounds_checks > 0);
}
