//! Soundness and effectiveness of the redundant-check eliminator
//! (`ccured-analysis`), tested differentially: every workload is cured and
//! run twice — optimizer on vs `--no-opt` — and the two runs must agree on
//! everything observable (output, exit code, check-failure verdicts) while
//! the optimized run executes no more, and in aggregate strictly fewer,
//! `CHECK_NULL`/`CHECK_BOUNDS` events.

use ccured_infer::InferOptions;
use ccured_workloads::{daemons, micro, olden, runner, Workload};

/// Runs `w` with and without the optimizer and asserts observable
/// equivalence; returns `(optimized, unoptimized)` dynamic null+bounds
/// check event counts.
fn differential(w: &Workload) -> (u64, u64) {
    let opts = InferOptions::default();
    let opt = runner::run_cured_opt(w, &opts, true)
        .unwrap_or_else(|e| panic!("{}: cure (opt) failed: {e}", w.name));
    let noopt = runner::run_cured_opt(w, &opts, false)
        .unwrap_or_else(|e| panic!("{}: cure (no-opt) failed: {e}", w.name));
    assert_eq!(
        opt.stats.error, noopt.stats.error,
        "{}: verdicts differ — an elided check would have fired",
        w.name
    );
    assert_eq!(
        opt.stats.exit, noopt.stats.exit,
        "{}: exit codes differ",
        w.name
    );
    assert_eq!(
        opt.stats.output, noopt.stats.output,
        "{}: outputs differ",
        w.name
    );
    let a = opt.stats.counters.null_bounds_checks();
    let b = noopt.stats.counters.null_bounds_checks();
    assert!(a <= b, "{}: optimizer added checks ({a} > {b})", w.name);
    (a, b)
}

#[test]
fn micro_suite_executes_fewer_checks_with_identical_output() {
    let suite = [
        micro::safe_deref(50),
        micro::seq_index(20),
        micro::wild_loop(10),
        micro::rtti_dispatch(20),
        micro::ptr_store(20),
    ];
    let mut opt_total = 0;
    let mut noopt_total = 0;
    let mut elided_static = 0u64;
    for w in &suite {
        let (a, b) = differential(w);
        opt_total += a;
        noopt_total += b;
        let cured = runner::run_cured(w, &InferOptions::default()).unwrap();
        elided_static += cured.cured.report.checks_elided.total();
    }
    assert!(
        opt_total < noopt_total,
        "micro suite: optimizer must win in aggregate ({opt_total} vs {noopt_total})"
    );
    assert!(
        elided_static > 0,
        "micro suite: some checks statically elided"
    );
}

#[test]
fn olden_suite_executes_fewer_checks_with_identical_output() {
    let suite = [olden::treeadd(6), olden::em3d(12, 3, 3)];
    let mut opt_total = 0;
    let mut noopt_total = 0;
    for w in &suite {
        let (a, b) = differential(w);
        opt_total += a;
        noopt_total += b;
    }
    assert!(
        opt_total < noopt_total,
        "olden suite: optimizer must win in aggregate ({opt_total} vs {noopt_total})"
    );
}

/// The E8 exploit scenarios (paper Section 5): the ftpd `replydirname`
/// off-by-one and the sendmail-style overrun. Cured runs must stop both
/// with a check failure, and the verdict must be identical with and
/// without check elimination — the differential heart of satellite #3.
#[test]
fn exploit_verdicts_survive_elimination() {
    for w in [daemons::ftpd(3, true), daemons::sendmail_like(4, true)] {
        let opts = InferOptions::default();
        let opt = runner::run_cured_opt(&w, &opts, true).expect("cure");
        let noopt = runner::run_cured_opt(&w, &opts, false).expect("cure");
        let eo =
            opt.stats.error.as_ref().unwrap_or_else(|| {
                panic!("{}: optimized cure must still stop the exploit", w.name)
            });
        let en = noopt
            .stats
            .error
            .as_ref()
            .expect("unoptimized cure stops the exploit");
        assert!(eo.is_check_failure(), "{}: {eo}", w.name);
        assert_eq!(eo, en, "{}: elimination changed the verdict", w.name);
        assert_eq!(
            opt.stats.output, noopt.stats.output,
            "{}: outputs differ",
            w.name
        );
    }
}

/// Benign (non-exploit) daemon runs also agree under elimination.
#[test]
fn benign_daemon_runs_agree_under_elimination() {
    for w in [daemons::ftpd(2, false), daemons::sendmail_like(3, false)] {
        let (a, b) = differential(&w);
        assert!(a <= b);
    }
}

/// The optimizer's static report matches what the runtime observes: elided
/// checks translate into fewer executed checks on a workload built to have
/// redundant derefs (treeadd re-derefs the node pointer three times per
/// call).
#[test]
fn treeadd_null_checks_drop_measurably() {
    let w = olden::treeadd(6);
    let opts = InferOptions::default();
    let opt = runner::run_cured_opt(&w, &opts, true).expect("cure");
    let noopt = runner::run_cured_opt(&w, &opts, false).expect("cure");
    assert!(
        opt.cured.report.checks_elided.total() > 0,
        "treeadd has redundancy"
    );
    assert!(
        opt.stats.counters.null_checks < noopt.stats.counters.null_checks,
        "dominated null checks gone at run time: {} vs {}",
        opt.stats.counters.null_checks,
        noopt.stats.counters.null_checks
    );
}
